#!/bin/sh
# Link-check the repo's markdown docs without touching the network:
# every relative link target `](path)` in the given files (default:
# ARCHITECTURE.md and README.md) must exist on disk. http(s) links and
# pure in-page anchors are skipped; `path#anchor` is checked as `path`.
#
# Usage: tools/check_doc_links.sh [FILE.md ...]
set -eu

cd "$(dirname "$0")/.."

files="${*:-ARCHITECTURE.md README.md}"
status=0

for file in $files; do
    if [ ! -f "$file" ]; then
        echo "check_doc_links: no such file: $file" >&2
        status=1
        continue
    fi
    dir=$(dirname "$file")
    # One target per line: everything between `](` and the closing `)`.
    targets=$(grep -o '](\([^)]*\))' "$file" | sed 's/^](//; s/)$//') || true
    for target in $targets; do
        case "$target" in
            http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "check_doc_links: $file links to missing target: $target" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "check_doc_links: all local links resolve"
fi
exit "$status"

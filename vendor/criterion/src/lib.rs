//! Offline stand-in for the slice of `criterion` the bench targets use.
//!
//! The container has no crates.io access, so this crate re-implements the
//! bench-facing surface (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box`) over a plain median-of-samples
//! timer. It produces readable per-benchmark timings on stdout rather than
//! criterion's statistical reports; swapping the real criterion back in is a
//! manifest-only change.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("mechanism", size)`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure `sample_size` times, recording each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stub has no separate measurement phase.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(id, bencher.median());
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.median());
        self
    }

    /// End the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, median: Duration) {
        println!(
            "bench {:<48} median {:>12.3} ms ({} samples)",
            format!("{}/{}", self.name, id),
            median.as_secs_f64() * 1e3,
            self.sample_size
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility with generated `criterion_group!` code.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the declared groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}

//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so this crate provides the
//! property-testing surface the integration tests rely on — integer-range
//! strategies, tuple strategies, `collection::btree_set`, `prop_map`, the
//! `proptest!` macro, `ProptestConfig::with_cases` and the `prop_assert*`
//! macros — backed by a deterministic SplitMix64 generator instead of
//! proptest's shrinking runner. Failures therefore report the failing case
//! index rather than a shrunken minimal input; the deterministic seed makes
//! every failure reproducible by construction.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given test case index (deterministic per case).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            // Fixed base seed; one disjoint stream per case.
            state: 0x5EED_0000_0000_0000u64.wrapping_add(case.wrapping_mul(0x9E37_79B9)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "cannot sample an empty range");
        (self.next_u64() as u128) % bound
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// Run each property over `cases` generated inputs.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Collection strategies.
pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    /// Strategy for `BTreeSet`s with sizes drawn from `sizes`.
    pub struct BTreeSetStrategy<E> {
        element: E,
        sizes: Range<usize>,
    }

    /// Generate `BTreeSet`s of `element` values with a size in `sizes`.
    pub fn btree_set<E: Strategy>(element: E, sizes: Range<usize>) -> BTreeSetStrategy<E>
    where
        E::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    impl<E: Strategy> Strategy for BTreeSetStrategy<E>
    where
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let target = self.sizes.clone().generate(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set; a bounded number of extra draws keeps
            // generation total even when the element space is tiny.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 10 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property (plain `assert!` with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(case);
                    $(
                        let $arg = $crate::Strategy::generate(
                            &($strategy),
                            &mut proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..64 {
            let v = (0u8..4).generate(&mut rng);
            assert!(v < 4);
        }
        let doubled = (1usize..5).prop_map(|v| v * 2);
        for _ in 0..32 {
            let v = doubled.generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&v));
        }
    }

    #[test]
    fn btree_sets_respect_size_bounds() {
        let strat = crate::collection::btree_set((0u8..4, 0u8..4), 0..6);
        let mut rng = TestRng::for_case(3);
        for _ in 0..32 {
            let set = strat.generate(&mut rng);
            assert!(set.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: generated values satisfy their range bounds.
        #[test]
        fn macro_generates_within_bounds(a in 0u64..10, b in 2usize..5) {
            prop_assert!(a < 10);
            prop_assert!((2..5).contains(&b));
            prop_assert_ne!(b, 0);
            prop_assert_eq!(b.clamp(2, 4), b);
        }
    }
}

//! Offline stand-in for the small slice of `rand` this workspace uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable and plenty for
//! synthetic workload generation. The bit streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12), which only matters if a workload seed is
//! expected to reproduce byte-for-byte across the two implementations;
//! within this workspace every consumer only relies on determinism for a
//! fixed seed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of the `Rng` trait the workspace consumes.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniformly sample from a half-open integer range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<G: Rng>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Standard generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            let v = rng.gen_range(0..100u8);
            assert!(v < 100);
            let w = rng.gen_range(3usize..9);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! Offline stand-in for the `serde` derive macros.
//!
//! The container this workspace builds in has no network access and no
//! vendored crates.io registry, so the real `serde` cannot be fetched. The
//! workspace only ever uses `#[derive(Serialize, Deserialize)]` as inert
//! annotations (nothing calls a serializer), so this proc-macro crate
//! provides the two derives as no-ops. Swapping the real `serde` back in is
//! a one-line change in each crate manifest.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

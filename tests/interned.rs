//! Interned-data-plane equivalence: an engine running the columnar id
//! kernels must be byte-identical to the legacy string evaluator — for all
//! four strategies, over the in-process store and the sharded store at
//! shard counts 1/2, pool sizes 1/4, and across live commits — and the
//! store's symbol table must be a bijection on everything it has interned
//! (`intern(resolve(id)) == id`).
//!
//! Like the sharding suite, the grids narrow through `PDES_SHARDS` /
//! `PDES_POOLS` so a CI matrix leg can exercise one cell.

use p2p_data_exchange::{
    vars, ExecConfig, Formula, P2PSystem, PeerId, PeerStore, QueryEngine, ShardedStore, Strategy,
    Tuple,
};
use relalg::database::GroundAtom;
use relalg::{Delta, Symbol, SymbolTable};
use std::collections::BTreeSet;
use std::sync::Arc;
use workload::generator::GeneratedWorkload;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

fn shard_counts() -> Vec<usize> {
    matrix_from_env("PDES_SHARDS", &[1, 2])
}

fn pool_sizes() -> Vec<usize> {
    matrix_from_env("PDES_POOLS", &[1, 4])
}

fn matrix_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(list) => list
            .split(',')
            .map(|n| n.trim().parse().expect("matrix entries are integers"))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// The generated workloads the equivalence runs over: a two-peer chain with
/// conflicts and a four-peer star (different topologies exercise different
/// DEC shapes in the specification programs).
fn workloads() -> Vec<GeneratedWorkload> {
    vec![
        generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: 8,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        })
        .expect("valid chain spec"),
        generate(&WorkloadSpec {
            peers: 4,
            tuples_per_relation: 5,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        })
        .expect("valid star spec"),
    ]
}

/// Every peer's canonical `R(X, Y)` query over its first relation.
fn peer_queries(system: &P2PSystem) -> Vec<(PeerId, Formula)> {
    system
        .peers()
        .map(|p| {
            let relation = p
                .schema
                .relation_names()
                .next()
                .expect("every peer owns one relation");
            (p.id.clone(), Formula::atom(relation, vec!["X", "Y"]))
        })
        .collect()
}

/// Answers for every peer query, with unsupported combinations recorded as
/// `None` so both data planes must fail alike.
fn all_answers(
    engine: &QueryEngine,
    strategy: Strategy,
    queries: &[(PeerId, Formula)],
) -> Vec<Option<BTreeSet<Tuple>>> {
    let fv = vars(&["X", "Y"]);
    queries
        .iter()
        .map(|(peer, query)| {
            engine
                .answer_with(strategy, peer, query, &fv)
                .ok()
                .map(|a| a.tuples)
        })
        .collect()
}

/// An engine pair over the same system: interned data plane on vs. off.
fn engine_pair(system: &P2PSystem, strategy: Strategy) -> (QueryEngine, QueryEngine) {
    let interned = QueryEngine::builder(system.clone())
        .strategy(strategy)
        .interned_data_plane(true)
        .build();
    let legacy = QueryEngine::builder(system.clone())
        .strategy(strategy)
        .interned_data_plane(false)
        .build();
    (interned, legacy)
}

#[test]
fn interned_answers_match_the_legacy_string_path() {
    for w in workloads() {
        let queries = peer_queries(&w.system);
        for strategy in ALL_STRATEGIES {
            let (interned, legacy) = engine_pair(&w.system, strategy);
            assert_eq!(
                all_answers(&interned, strategy, &queries),
                all_answers(&legacy, strategy, &queries),
                "{strategy:?} interned answers diverged from the legacy path"
            );
        }
    }
}

#[test]
fn interned_answers_match_legacy_across_live_commits() {
    for w in workloads() {
        let queries = peer_queries(&w.system);
        for strategy in ALL_STRATEGIES {
            let (interned, legacy) = engine_pair(&w.system, strategy);
            // Warm both planes, then interleave commits and warm reads so
            // the interned plane's patched/repaired artifacts are compared
            // too, with constants the store has never seen before.
            let _ = all_answers(&interned, strategy, &queries);
            let _ = all_answers(&legacy, strategy, &queries);
            let peers: Vec<PeerId> = w.system.peer_ids().cloned().collect();
            for round in 0..4 {
                let peer = peers[round % peers.len()].clone();
                let relation = w
                    .system
                    .peer(&peer)
                    .expect("peer exists")
                    .schema
                    .relation_names()
                    .next()
                    .expect("one relation per peer")
                    .to_string();
                let delta = Delta::from_changes(
                    [GroundAtom::new(
                        relation,
                        Tuple::strs([format!("fresh_k_{round}").as_str(), "fresh_v"]),
                    )],
                    [],
                );
                interned.commit_delta(&peer, &delta).expect("commit");
                legacy.commit_delta(&peer, &delta).expect("commit");
                assert_eq!(
                    all_answers(&interned, strategy, &queries),
                    all_answers(&legacy, strategy, &queries),
                    "{strategy:?} diverged after commit {round}"
                );
            }
        }
    }
}

#[test]
fn interned_answers_match_legacy_over_the_sharded_store() {
    for w in workloads() {
        let queries = peer_queries(&w.system);
        for shards in shard_counts() {
            for pool in pool_sizes() {
                for strategy in ALL_STRATEGIES {
                    let store = Arc::new(
                        ShardedStore::builder(w.system.clone())
                            .shards(shards)
                            .exec(ExecConfig::with_workers(pool))
                            .build(),
                    );
                    let interned = QueryEngine::builder(w.system.clone())
                        .store(store.clone() as Arc<dyn PeerStore>)
                        .strategy(strategy)
                        .interned_data_plane(true)
                        .build();
                    let legacy = QueryEngine::builder(w.system.clone())
                        .strategy(strategy)
                        .interned_data_plane(false)
                        .build();
                    assert_eq!(
                        all_answers(&interned, strategy, &queries),
                        all_answers(&legacy, strategy, &queries),
                        "{strategy:?} interned/sharded diverged from legacy \
                         at shards={shards} pool={pool}"
                    );
                }
            }
        }
    }
}

#[test]
fn symbol_tables_round_trip_over_generated_workloads() {
    for w in workloads() {
        // The store's table covers the system: peer names, relation and
        // attribute names, every constant.
        let engine = QueryEngine::builder(w.system.clone()).build();
        let symbols = engine.store().symbols();
        assert!(!symbols.is_empty(), "the store interned the workload");
        for id in 0..symbols.len() as u32 {
            let symbol = Symbol::from_id(id);
            let value = symbols.resolve(symbol);
            assert_eq!(
                symbols.intern(&value),
                symbol,
                "intern(resolve({id})) must return the same symbol"
            );
            // Rendered text is memoized per symbol: two resolutions alias
            // one allocation.
            assert!(Arc::ptr_eq(
                &symbols.resolve_text(symbol),
                &symbols.resolve_text(symbol)
            ));
        }
        // Commits extend the bijection without disturbing existing ids.
        let before = symbols.len();
        let peer = w.queried_peer.clone();
        let relation = w
            .system
            .peer(&peer)
            .expect("peer exists")
            .schema
            .relation_names()
            .next()
            .expect("one relation per peer")
            .to_string();
        let delta = Delta::from_changes(
            [GroundAtom::new(
                relation,
                Tuple::strs(["roundtrip_key", "roundtrip_value"]),
            )],
            [],
        );
        engine.commit_delta(&peer, &delta).expect("commit");
        assert!(symbols.len() > before, "the commit interned new constants");
        for id in 0..symbols.len() as u32 {
            let symbol = Symbol::from_id(id);
            assert_eq!(symbols.intern(&symbols.resolve(symbol)), symbol);
        }
    }
    // A fresh table round-trips arbitrary values, independent of any store.
    let table = SymbolTable::new();
    for value in [
        relalg::Value::str("plain"),
        relalg::Value::str(""),
        relalg::Value::int(0),
        relalg::Value::int(-42),
        relalg::Value::Bool(true),
        relalg::Value::Null,
    ] {
        let symbol = table.intern(&value);
        assert_eq!(table.resolve(symbol), value);
        assert_eq!(table.intern(&table.resolve(symbol)), symbol);
    }
}

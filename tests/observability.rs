//! End-to-end tests of the observability subsystem through the public API:
//! the Chrome trace-event export round-trips with correctly nested phase
//! spans, `EngineStats` timings are exactly the recorded span durations
//! (one clock, one truth), and traces stay well-formed — with exact
//! counters — while `answer_batch` hammers the recorder from worker pools
//! of every size.

use p2p_data_exchange::obs::parse_chrome_trace;
use p2p_data_exchange::{vars, Formula, PeerId, Query, QueryEngine, Strategy, TraceRecorder};
use proptest::prelude::*;
use std::sync::Arc;
use workload::{generate, TrustMix, WorkloadSpec};

fn traced_example1_engine() -> (QueryEngine, Arc<TraceRecorder>) {
    let recorder = Arc::new(TraceRecorder::new());
    let engine = QueryEngine::builder(p2p_data_exchange::example1_system())
        .strategy(Strategy::Asp)
        .recorder(recorder.clone())
        .build();
    (engine, recorder)
}

/// The acceptance test of the PR: export a trace of a cold ASP query as
/// Chrome trace-event JSON, parse it back, and check that every phase span
/// (`relevance`, `ground`, `solve`, `eval`, …) nests inside the enclosing
/// `query` interval and that phase durations sum to within the recorded
/// query wall time.
#[test]
fn chrome_trace_round_trips_with_nested_phase_spans() {
    let (engine, recorder) = traced_example1_engine();
    let p1 = PeerId::new("P1");
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let answers = engine.answer(&p1, &query, &vars(&["X", "Y"])).unwrap();
    assert!(!answers.tuples.is_empty());

    let trace = recorder.trace();
    assert_eq!(trace.malformed(), 0);
    let events = parse_chrome_trace(&trace.chrome_json()).unwrap();
    assert_eq!(events.len(), trace.span_count());

    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no `{name}` event in the exported trace"))
    };
    let query_ev = find("query");
    assert_eq!(query_ev.ph, "X");
    assert!(query_ev.args.iter().any(|(k, v)| k == "peer" && v == "P1"));
    assert!(query_ev
        .args
        .iter()
        .any(|(k, v)| k == "strategy" && v == "asp"));

    // Every phase lies inside the query interval.
    for phase in ["prepare", "relevance", "ground", "solve", "decode", "eval"] {
        let ev = find(phase);
        assert!(
            ev.ts_nanos >= query_ev.ts_nanos && ev.end_nanos() <= query_ev.end_nanos(),
            "`{phase}` [{}, {}] escapes `query` [{}, {}]",
            ev.ts_nanos,
            ev.end_nanos(),
            query_ev.ts_nanos,
            query_ev.end_nanos()
        );
    }
    // The inner phases additionally nest inside `prepare`, and durations
    // sum to within the enclosing span at both levels.
    let prepare = find("prepare");
    let inner: u64 = ["relevance", "ground", "solve", "decode"]
        .iter()
        .map(|phase| {
            let ev = find(phase);
            assert!(
                ev.ts_nanos >= prepare.ts_nanos && ev.end_nanos() <= prepare.end_nanos(),
                "`{phase}` escapes `prepare`"
            );
            ev.dur_nanos
        })
        .sum();
    assert!(inner <= prepare.dur_nanos);
    assert!(prepare.dur_nanos + find("eval").dur_nanos <= query_ev.dur_nanos);
}

/// `EngineStats` phase timings are rebuilt *from* the recorded spans — the
/// recorder reports the same `Duration` the span returns — so the stats and
/// the trace agree bit-for-bit, not approximately.
#[test]
fn engine_stats_equal_recorded_span_durations() {
    let (engine, recorder) = traced_example1_engine();
    let p1 = PeerId::new("P1");
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let cold = engine.answer(&p1, &query, &vars(&["X", "Y"])).unwrap();

    let trace = recorder.trace();
    let span_nanos = |label: &str| {
        let spans = trace.spans_labelled(label);
        assert_eq!(spans.len(), 1, "expected exactly one `{label}` span");
        spans[0].dur_nanos
    };
    assert!(!cold.stats.cache_hit);
    assert_eq!(
        cold.stats.prepare_time().as_nanos() as u64,
        span_nanos("prepare")
    );
    assert_eq!(
        cold.stats.ground_time().as_nanos() as u64,
        span_nanos("ground")
    );
    assert_eq!(
        cold.stats.solve_time().as_nanos() as u64,
        span_nanos("solve")
    );
    assert_eq!(cold.stats.eval_time().as_nanos() as u64, span_nanos("eval"));
    assert_eq!(recorder.registry().counter_value("cache.miss"), 1);

    // A warm repeat hits the cache: no new prepare/ground/solve spans, and
    // the hit's `cached_prepare_time` carries the cold run's exact cost.
    let warm = engine.answer(&p1, &query, &vars(&["X", "Y"])).unwrap();
    assert!(warm.stats.cache_hit);
    assert_eq!(
        warm.stats.cached_prepare_time(),
        Some(cold.stats.prepare_time())
    );
    let trace = recorder.trace();
    assert_eq!(trace.spans_labelled("prepare").len(), 1);
    assert_eq!(trace.spans_labelled("query").len(), 2);
    assert_eq!(recorder.registry().counter_value("cache.hit"), 1);
}

/// Check one replayed trace for structural well-formedness: no malformed
/// events, every span closed, and every child interval contained in its
/// parent's.
fn assert_well_formed(trace: &p2p_data_exchange::obs::Trace) {
    assert_eq!(trace.malformed(), 0);
    for (i, span) in trace.spans.iter().enumerate() {
        assert!(span.closed, "span {i} (`{}`) never exited", span.label);
        if let Some(p) = span.parent {
            let parent = &trace.spans[p];
            assert_eq!(parent.tid, span.tid);
            assert!(parent.depth < span.depth);
            assert!(
                span.start_nanos >= parent.start_nanos && span.end_nanos() <= parent.end_nanos(),
                "span {i} (`{}`) escapes its parent `{}`",
                span.label,
                parent.label
            );
        } else {
            assert_eq!(span.depth, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hammer one traced engine with `answer_batch` from pools of size 1, 2
    /// and 8: every per-thread buffer must replay to a well-formed span
    /// tree, and the batch/query counters must be exact — concurrency may
    /// interleave spans across threads but can never lose or corrupt one.
    #[test]
    fn batch_traces_stay_well_formed_under_every_pool_size(
        tuples in 1usize..6,
        violations in 0usize..2,
        seed in 0u64..1000
    ) {
        let w = generate(&WorkloadSpec {
            peers: 3,
            tuples_per_relation: tuples,
            violations_per_dec: violations,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        })
        .unwrap();
        let batch: Vec<Query> = (0..6)
            .map(|_| Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone()))
            .collect();
        for workers in [1usize, 2, 8] {
            let recorder = Arc::new(TraceRecorder::new());
            let engine = QueryEngine::builder(w.system.clone())
                .strategy(Strategy::Asp)
                .workers(workers)
                .recorder(recorder.clone())
                .build();
            for result in engine.answer_batch(&batch) {
                prop_assert!(result.is_ok());
            }
            let trace = recorder.trace();
            assert_well_formed(&trace);
            prop_assert_eq!(trace.spans_labelled("batch").len(), 1);
            prop_assert_eq!(trace.spans_labelled("query").len(), batch.len());
            let registry = recorder.registry();
            prop_assert_eq!(registry.counter_value("batch.queries"), batch.len() as u64);
            // Exactly one histogram sample per query span, whatever the
            // interleaving.
            let (_, summary) = registry
                .histograms()
                .into_iter()
                .find(|(label, _)| *label == "query")
                .unwrap();
            prop_assert_eq!(summary.count, batch.len() as u64);
        }
    }
}

//! The textual format: parsing Example 1 from text, answering its named
//! query through the [`QueryEngine`] facade, and round-tripping through the
//! printer.

use p2p_data_exchange::{QueryEngine, Strategy, Tuple};
use std::collections::BTreeSet;

const EXAMPLE1_PDS: &str = r#"
# Example 1 of Bertossi & Bravo (EDBT 2004 workshops)
peer P1
peer P2
peer P3
relation P1 R1(x, y)
relation P2 R2(x, y)
relation P3 R3(x, y)
fact R1(a, b)
fact R1(s, t)
fact R2(c, d)
fact R2(a, e)
fact R3(a, f)
fact R3(s, u)
trust P1 less P2
trust P1 same P3
dec sigma12 P1 P2: R2(X, Y) -> R1(X, Y)
dec sigma13 P1 P3: R1(X, Y), R3(X, Z) -> Y = Z
query all_of_r1 P1 (X, Y): R1(X, Y)
"#;

#[test]
fn parsed_example1_answers_match_the_paper() {
    let parsed = dsl::parse(EXAMPLE1_PDS).unwrap();
    let query = parsed.queries["all_of_r1"].clone();
    let engine = QueryEngine::builder(parsed.system)
        .strategy(Strategy::Asp)
        .build();
    let result = engine
        .answer(&query.peer, &query.formula, &query.free_vars)
        .unwrap();
    assert_eq!(
        result.tuples,
        BTreeSet::from([
            Tuple::strs(["a", "b"]),
            Tuple::strs(["c", "d"]),
            Tuple::strs(["a", "e"]),
        ])
    );
}

#[test]
fn parsed_example1_is_auto_rewritable() {
    // The parsed system is exactly the Example 2 class, so Auto picks the
    // rewriting and agrees with the ASP route.
    let parsed = dsl::parse(EXAMPLE1_PDS).unwrap();
    let query = parsed.queries["all_of_r1"].clone();
    let engine = QueryEngine::new(parsed.system);
    let auto = engine
        .answer(&query.peer, &query.formula, &query.free_vars)
        .unwrap();
    assert_eq!(auto.stats.strategy.label(), "rewriting");
    let asp = engine
        .answer_with(Strategy::Asp, &query.peer, &query.formula, &query.free_vars)
        .unwrap();
    assert_eq!(auto.tuples, asp.tuples);
}

#[test]
fn printer_round_trip_preserves_answers() {
    let parsed = dsl::parse(EXAMPLE1_PDS).unwrap();
    let rendered = dsl::render_system(&parsed.system);
    let reparsed = dsl::parse(&rendered).unwrap();
    assert_eq!(
        reparsed.system.global_instance().unwrap(),
        parsed.system.global_instance().unwrap()
    );
    assert_eq!(reparsed.system.decs().len(), 2);
}

//! Incremental-commit equivalence: after any commit, answers served through
//! the engine's stale-artifact repair (delta-driven incremental
//! re-grounding, `datalog::incremental`) must be byte-identical to a fresh
//! engine built over the mutated system — for all four strategies, at pool
//! sizes 1/2/8, across insert-only, delete-only and mixed deltas — and
//! answers must stay correct under cache-eviction thrash (tiny
//! `cache_capacity`).

use p2p_data_exchange::{vars, Formula, PeerId, QueryEngine, Session, Strategy, Tuple, Update};
use relalg::database::GroundAtom;
use relalg::Delta;
use std::collections::BTreeSet;
use workload::generator::GeneratedWorkload;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

const POOLS: [usize; 3] = [1, 2, 8];

/// The kinds of update deltas the equivalence is checked across.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaKind {
    InsertOnly,
    DeleteOnly,
    Mixed,
}

fn star_workload() -> GeneratedWorkload {
    generate(&WorkloadSpec {
        peers: 3,
        tuples_per_relation: 4,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Star,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec")
}

/// Every peer's canonical `T<i>(X, Y)` query.
fn peer_queries(w: &GeneratedWorkload) -> Vec<(PeerId, Formula)> {
    w.system
        .peers()
        .map(|p| {
            let relation = p
                .schema
                .relation_names()
                .next()
                .expect("generated peers own one relation");
            (p.id.clone(), Formula::atom(relation, vec!["X", "Y"]))
        })
        .collect()
}

/// An existing tuple of a peer's relation (deterministic: the first in
/// iteration order).
fn existing_atom(w: &GeneratedWorkload, peer: &PeerId) -> GroundAtom {
    let data = w.system.peer(peer).expect("peer exists");
    let relation = data
        .schema
        .relation_names()
        .next()
        .expect("one relation per peer");
    let tuple = data
        .instance
        .relations()
        .find(|r| r.name() == relation)
        .and_then(|r| r.iter().next().cloned())
        .expect("generated relations are non-empty");
    GroundAtom::new(relation, tuple)
}

/// The update batch of one round: round-robins the mutated peer and the
/// delta shape so successive commits hit different slices.
fn round_updates(w: &GeneratedWorkload, kind: DeltaKind, round: usize) -> Vec<Update> {
    let peers: Vec<PeerId> = w.system.peer_ids().cloned().collect();
    let peer = peers[round % peers.len()].clone();
    let relation = w
        .system
        .peer(&peer)
        .expect("peer exists")
        .schema
        .relation_names()
        .next()
        .expect("one relation per peer")
        .to_string();
    let fresh = GroundAtom::new(
        relation,
        Tuple::strs([format!("inc_k_{round}").as_str(), "inc_v"]),
    );
    let delta = match kind {
        DeltaKind::InsertOnly => Delta::from_changes([fresh], []),
        DeltaKind::DeleteOnly => Delta::from_changes([], [existing_atom(w, &peer)]),
        DeltaKind::Mixed => Delta::from_changes([fresh], [existing_atom(w, &peer)]),
    };
    vec![Update::new(peer, delta)]
}

/// Answers of `engine` for every peer query, with unsupported combinations
/// recorded as `None` so both sides must fail alike.
fn all_answers(
    engine: &QueryEngine,
    strategy: Strategy,
    queries: &[(PeerId, Formula)],
) -> Vec<Option<BTreeSet<Tuple>>> {
    let fv = vars(&["X", "Y"]);
    queries
        .iter()
        .map(|(peer, query)| {
            engine
                .answer_with(strategy, peer, query, &fv)
                .ok()
                .map(|a| a.tuples)
        })
        .collect()
}

#[test]
fn incremental_after_commit_matches_a_fresh_engine() {
    let w = star_workload();
    let queries = peer_queries(&w);
    for kind in [
        DeltaKind::InsertOnly,
        DeltaKind::DeleteOnly,
        DeltaKind::Mixed,
    ] {
        for workers in POOLS {
            for strategy in ALL_STRATEGIES {
                let session = Session::with_engine(
                    QueryEngine::builder(w.system.clone())
                        .strategy(strategy)
                        .workers(workers)
                        .build(),
                );
                // Warm every peer's artifact before the commits.
                let _ = all_answers(session.engine(), strategy, &queries);
                let mut writer = session.writer().expect("writer claim");
                for round in 0..2 {
                    let _ = writer
                        .apply(&round_updates(&w, kind, round))
                        .expect("commit applies");
                    let live = all_answers(session.engine(), strategy, &queries);
                    let fresh_engine = QueryEngine::builder(session.current_system().unwrap())
                        .strategy(strategy)
                        .workers(workers)
                        .build();
                    let fresh = all_answers(&fresh_engine, strategy, &queries);
                    assert_eq!(
                        live, fresh,
                        "{kind:?} round {round}: {strategy:?} workers={workers} \
                         diverged from a fresh engine"
                    );
                }
            }
        }
    }
}

#[test]
fn repeated_commits_keep_patching_the_same_slice() {
    // Many consecutive commits against one peer: every repair must still
    // agree with a fresh engine, and the engine must actually be patching
    // (not silently falling back to full re-grounds).
    let w = star_workload();
    let queries = peer_queries(&w);
    let session = Session::with_engine(
        QueryEngine::builder(w.system.clone())
            .strategy(Strategy::Asp)
            .build(),
    );
    let _ = all_answers(session.engine(), Strategy::Asp, &queries);
    let mut writer = session.writer().expect("writer claim");
    for round in 0..4 {
        let _ = writer
            .apply(&round_updates(&w, DeltaKind::InsertOnly, round))
            .expect("commit applies");
        let live = all_answers(session.engine(), Strategy::Asp, &queries);
        let fresh_engine = QueryEngine::builder(session.current_system().unwrap())
            .strategy(Strategy::Asp)
            .build();
        assert_eq!(live, all_answers(&fresh_engine, Strategy::Asp, &queries));
    }
    let metrics = session.metrics();
    assert!(
        metrics.patched >= 4,
        "expected at least one patch per commit, got {}",
        metrics.patched
    );
}

#[test]
fn disabling_incremental_reground_still_matches_fresh_answers() {
    // The drop-and-re-ground escape hatch must agree with both the fresh
    // engine and the incremental path.
    let w = star_workload();
    let queries = peer_queries(&w);
    let session = Session::with_engine(
        QueryEngine::builder(w.system.clone())
            .strategy(Strategy::Asp)
            .incremental_reground(false)
            .build(),
    );
    let _ = all_answers(session.engine(), Strategy::Asp, &queries);
    let _ = session
        .writer()
        .expect("writer claim")
        .apply(&round_updates(&w, DeltaKind::Mixed, 0))
        .expect("commit applies");
    let live = all_answers(session.engine(), Strategy::Asp, &queries);
    let fresh_engine = QueryEngine::builder(session.current_system().unwrap())
        .strategy(Strategy::Asp)
        .build();
    assert_eq!(live, all_answers(&fresh_engine, Strategy::Asp, &queries));
    assert_eq!(session.metrics().patched, 0);
}

#[test]
fn eviction_pressure_keeps_answers_correct() {
    // A deliberately tiny byte budget forces constant eviction; every
    // answer must still match an unbounded engine, before and after a
    // commit, and evictions must actually have happened.
    let w = star_workload();
    let queries = peer_queries(&w);
    let bounded = QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .cache_capacity(6_000)
        .build();
    let unbounded = QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .build();
    for _ in 0..3 {
        assert_eq!(
            all_answers(&bounded, Strategy::Asp, &queries),
            all_answers(&unbounded, Strategy::Asp, &queries),
            "thrashing cache changed answers"
        );
    }
    // Mutate through both engines and keep comparing.
    let update = &round_updates(&w, DeltaKind::InsertOnly, 0)[0];
    bounded.commit_delta(&update.peer, &update.delta).unwrap();
    unbounded.commit_delta(&update.peer, &update.delta).unwrap();
    for _ in 0..2 {
        assert_eq!(
            all_answers(&bounded, Strategy::Asp, &queries),
            all_answers(&unbounded, Strategy::Asp, &queries),
            "thrashing cache changed answers after a commit"
        );
    }
    assert!(
        bounded.metrics().evictions > 0,
        "the tiny budget must evict"
    );
    assert_eq!(unbounded.metrics().evictions, 0);
}

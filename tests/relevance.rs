//! Pruned-vs-full grounding equivalence: relevance-driven grounding
//! (`datalog::relevance`, engine default) must yield byte-identical certain
//! answers to the legacy full grounding — for all four strategies, at pool
//! sizes 1/2/8, on generated workloads and the paper's Example 1, including
//! queries with bound constants and queries whose relevant slice is empty.

use p2p_data_exchange::{
    example1_system, vars, Formula, P2PSystem, PeerId, QueryEngine, Strategy, Tuple,
};
use relalg::query::Term;
use relalg::{RelationSchema, Value};
use std::collections::BTreeSet;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

const POOLS: [usize; 3] = [1, 2, 8];

/// Build a pruned and an unpruned engine over the same system/pool and
/// assert every strategy produces identical answers for every query.
fn assert_pruned_matches_full(
    system: &P2PSystem,
    peer: &PeerId,
    queries: &[(Formula, Vec<String>)],
    context: &str,
) {
    // Cross-check: the analyzer's rewritability verdict is the Auto
    // decision on every system this suite exercises.
    let rewritable = matches!(
        p2p_data_exchange::analysis::classify_rewritability(system, peer).unwrap(),
        p2p_data_exchange::analysis::RewriteVerdict::Rewritable
    );
    for workers in POOLS {
        let pruned = QueryEngine::builder(system.clone())
            .workers(workers)
            .build();
        let full = QueryEngine::builder(system.clone())
            .workers(workers)
            .relevance_pruning(false)
            .build();
        for (query, fv) in queries {
            if rewritable && p2p_data_exchange::core::rewriting::supports_query(query) {
                assert_eq!(
                    pruned.resolve(Strategy::Auto, peer, query),
                    p2p_data_exchange::StrategyKind::Rewriting,
                    "{context}: Auto disagrees with the analyzer verdict"
                );
            } else {
                assert_eq!(
                    pruned.resolve(Strategy::Auto, peer, query),
                    p2p_data_exchange::StrategyKind::Asp,
                    "{context}: Auto disagrees with the analyzer verdict"
                );
            }
            for strategy in ALL_STRATEGIES {
                let a = pruned.answer_with(strategy, peer, query, fv);
                let b = full.answer_with(strategy, peer, query, fv);
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.tuples, b.tuples,
                            "{context}: {strategy:?} workers={workers} query {query}"
                        );
                        // The ASP strategies must also never ground *more*
                        // than the full program.
                        assert!(
                            a.stats.grounded_rules <= b.stats.grounded_rules,
                            "{context}: pruned grounded {} > full {}",
                            a.stats.grounded_rules,
                            b.stats.grounded_rules
                        );
                    }
                    (Err(_), Err(_)) => {} // unsupported on both paths alike
                    (a, b) => panic!(
                        "{context}: {strategy:?} workers={workers} query {query}: \
                         pruned and full disagree on success: {:?} vs {:?}",
                        a.map(|x| x.tuples),
                        b.map(|x| x.tuples)
                    ),
                }
            }
        }
    }
}

#[test]
fn example1_queries_agree_including_bound_constants() {
    let system = example1_system();
    let p1 = PeerId::new("P1");
    let queries = vec![
        (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"])),
        (
            Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
            vars(&["X"]),
        ),
        // Bound first argument: R1(a, Y).
        (
            Formula::atom_terms("R1", vec![Term::cnst(Value::str("a")), Term::var("Y")]),
            vars(&["Y"]),
        ),
        // Fully bound (boolean-style with one answer variable repeated).
        (
            Formula::atom_terms(
                "R1",
                vec![Term::cnst(Value::str("c")), Term::cnst(Value::str("d"))],
            ),
            vars(&[]),
        ),
        // Join with one bound side: ∃y (R1(a, y) ∧ R1(z, y)).
        (
            Formula::exists(
                vec!["Y"],
                Formula::and(vec![
                    Formula::atom_terms("R1", vec![Term::cnst(Value::str("a")), Term::var("Y")]),
                    Formula::atom("R1", vec!["Z", "Y"]),
                ]),
            ),
            vars(&["Z"]),
        ),
    ];
    assert_pruned_matches_full(&system, &p1, &queries, "example1");
}

#[test]
fn generated_workloads_agree_across_strategies_and_pools() {
    let specs = [
        WorkloadSpec {
            peers: 2,
            tuples_per_relation: 8,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        },
        WorkloadSpec {
            peers: 2,
            tuples_per_relation: 8,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            ..WorkloadSpec::default()
        },
        WorkloadSpec {
            peers: 4,
            tuples_per_relation: 6,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        },
        WorkloadSpec {
            peers: 3,
            tuples_per_relation: 6,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Chain,
            ..WorkloadSpec::default()
        },
    ];
    for spec in specs {
        let w = generate(&spec).expect("valid workload spec");
        let mut queries = vec![
            (w.query.clone(), w.free_vars.clone()),
            (Formula::exists(vec!["Y"], w.query.clone()), vars(&["X"])),
        ];
        // A query with a bound constant drawn from the actual answers.
        let probe = QueryEngine::new(w.system.clone());
        let unbound = probe
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .expect("asp answers the canonical query");
        if let Some(first) = unbound.iter().next() {
            let constant = first.get(0).unwrap().clone();
            let relation = w.query.relations().into_iter().next().unwrap();
            queries.push((
                Formula::atom_terms(relation, vec![Term::cnst(constant), Term::var("Y")]),
                vars(&["Y"]),
            ));
        }
        assert_pruned_matches_full(&w.system, &w.queried_peer, &queries, &format!("{spec}"));
    }
}

#[test]
fn star_workload_prunes_strictly_on_the_asp_path() {
    // The acceptance check of the PR: on a multi-peer workload the pruned
    // grounding instantiates strictly fewer rules than the full grounding,
    // with identical answers (the byte-for-byte case is covered above).
    let w = generate(&WorkloadSpec {
        peers: 6,
        tuples_per_relation: 8,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Star,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec");
    let pruned = QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .build();
    let full = QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .relevance_pruning(false)
        .build();
    let a = pruned
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .unwrap();
    let b = full
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .unwrap();
    assert_eq!(a.tuples, b.tuples);
    assert!(
        a.stats.grounded_rules < b.stats.grounded_rules,
        "pruned {} !< full {}",
        a.stats.grounded_rules,
        b.stats.grounded_rules
    );
    assert!(a.stats.grounded_atoms < b.stats.grounded_atoms);
}

#[test]
fn empty_relevant_slice_grounds_nothing_and_agrees() {
    // Peer A owns a populated relation and an *empty, unconstrained* one;
    // bystander B only bloats the full grounding. A query on the empty
    // relation has an (essentially) empty relevant slice: nothing is
    // derivable for it, and pruning grounds nothing at all.
    let mut system = P2PSystem::new();
    system.add_peer("A").unwrap();
    system.add_peer("B").unwrap();
    let a = PeerId::new("A");
    let b = PeerId::new("B");
    system
        .add_relation(&a, RelationSchema::new("RA", &["x", "y"]))
        .unwrap();
    system
        .add_relation(&a, RelationSchema::new("REmpty", &["x", "y"]))
        .unwrap();
    system
        .add_relation(&b, RelationSchema::new("RB", &["x", "y"]))
        .unwrap();
    for i in 0..5 {
        system
            .insert(&a, "RA", Tuple::strs([&format!("k{i}"), "v"]))
            .unwrap();
        system
            .insert(&b, "RB", Tuple::strs([&format!("k{i}"), "w"]))
            .unwrap();
    }
    let queries = vec![(Formula::atom("REmpty", vec!["X", "Y"]), vars(&["X", "Y"]))];
    assert_pruned_matches_full(&system, &a, &queries, "empty slice");

    let pruned = QueryEngine::builder(system.clone()).build();
    let answers = pruned
        .answer_with(Strategy::Asp, &a, &queries[0].0, &queries[0].1)
        .unwrap();
    assert!(answers.is_empty());
    assert_eq!(
        answers.stats.grounded_rules, 0,
        "an empty relevant slice must ground nothing"
    );
    let full = QueryEngine::builder(system)
        .relevance_pruning(false)
        .build();
    let full_answers = full
        .answer_with(Strategy::Asp, &a, &queries[0].0, &queries[0].1)
        .unwrap();
    assert!(full_answers.stats.grounded_rules > 0);
    assert_eq!(answers.tuples, full_answers.tuples);
}

#[test]
fn bound_constant_answers_are_the_restriction_of_unbound_answers() {
    let system = example1_system();
    let p1 = PeerId::new("P1");
    for strategy in ALL_STRATEGIES {
        let engine = QueryEngine::builder(system.clone())
            .strategy(strategy)
            .build();
        let all = engine
            .answer(
                &p1,
                &Formula::atom("R1", vec!["X", "Y"]),
                &vars(&["X", "Y"]),
            )
            .unwrap();
        let bound = engine
            .answer(
                &p1,
                &Formula::atom_terms("R1", vec![Term::cnst(Value::str("a")), Term::var("Y")]),
                &vars(&["Y"]),
            )
            .unwrap();
        let expected: BTreeSet<Tuple> = all
            .iter()
            .filter(|t| t.get(0).unwrap() == &Value::str("a"))
            .map(|t| Tuple::new(vec![t.get(1).unwrap().clone()]))
            .collect();
        assert_eq!(bound.tuples, expected, "strategy {strategy:?}");
    }
}

//! Snapshot-isolation (MVCC) integration tests — the tentpole guarantees:
//!
//! * property: under a sustained writer, an engine pointed at any reader's
//!   pinned epoch answers exactly like a fresh engine built on that epoch's
//!   hydrated system — for all four strategies, shards 1/2, pools 1/4;
//! * `Writer::commit` completes while a [`Snapshot`] is held, and the held
//!   snapshot stays frozen at its pre-commit epoch;
//! * timing — readers pinned to an epoch never block on a concurrent
//!   commit, demonstrated against a store whose `apply_delta` is
//!   artificially slowed;
//! * the `CacheMetrics` conflation regression: 8 readers hammering an
//!   artifact that the committing thread is repairing account for exactly
//!   one hit-or-miss per query — a read racing the patch never counts as a
//!   miss *and* a patch.

use p2p_data_exchange::{
    example1_system, ExecConfig, Formula, InProcessStore, P2PSystem, PeerId, PeerStore, Query,
    QueryEngine, Session, ShardedStore, Strategy, Tuple, Update, Version,
};
use proptest::prelude::*;
use relalg::database::Database;
use relalg::Delta;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{generate, generate_updates, TrustMix, UpdateSpec, WorkloadSpec};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A sustained writer commits a random update stream; after every commit
    /// the reader pins the just-published epoch. Each pinned epoch — served
    /// through the store's MVCC path by an engine whose store *is* the
    /// snapshot — answers exactly like a fresh engine built on the epoch's
    /// hydrated system, for every strategy, shard count and pool size, even
    /// though the live system has long since moved past the pin.
    #[test]
    fn pinned_epochs_answer_like_fresh_engines(seed in 0u64..10, batches in 1usize..3) {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: 3,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        }).unwrap();
        let stream = generate_updates(&w, &UpdateSpec {
            batches,
            batch_size: 1,
            insert_percent: 70,
            hot_peer_percent: 100,
            seed,
        }).unwrap();
        let hot_q = Query::named("P1", Formula::atom("T1", vec!["X", "Y"]), &["X", "Y"]);
        let live_q = Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone());

        for shards in [1usize, 2] {
            for pool in [1usize, 4] {
                let store = Arc::new(
                    ShardedStore::builder(w.system.clone())
                        .shards(shards)
                        .exec(ExecConfig::with_workers(pool))
                        .build(),
                );
                let session = Session::with_engine(
                    QueryEngine::builder(w.system.clone())
                        .store(store as Arc<dyn PeerStore>)
                        .strategy(Strategy::Asp)
                        .build(),
                );
                let mut writer = session.writer().unwrap();
                let mut pins = vec![session.pin().unwrap()];
                for batch in &stream {
                    let _ = writer
                        .apply(&[Update::new(batch.peer.clone(), batch.delta.clone())])
                        .unwrap();
                    pins.push(session.pin().unwrap());
                }
                for (i, pin) in pins.iter().enumerate() {
                    let hydrated = pin.system().unwrap();
                    // An engine whose store is the pinned snapshot itself…
                    let frozen = QueryEngine::builder(pin.topology().clone())
                        .store(Arc::new(pin.clone()) as Arc<dyn PeerStore>)
                        .build();
                    // …versus a fresh engine over the hydrated system.
                    let fresh = QueryEngine::builder(hydrated).build();
                    for strategy in ALL_STRATEGIES {
                        for q in [&live_q, &hot_q] {
                            let got = frozen
                                .answer_with(strategy, &q.peer, &q.query, &q.free_vars)
                                .unwrap();
                            let want = fresh
                                .answer_with(strategy, &q.peer, &q.query, &q.free_vars)
                                .unwrap();
                            prop_assert_eq!(
                                &got.tuples, &want.tuples,
                                "pin {} diverged: {:?} shards={} pool={}",
                                i, strategy, shards, pool
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn commits_complete_while_snapshots_are_held() {
    let session = Session::new(example1_system());
    let p2 = PeerId::new("P2");
    let pinned = session.pin().unwrap();
    let epoch_before = pinned.epoch();

    // The commit must neither block on nor invalidate the live pin.
    let mut writer = session.writer().unwrap();
    let mut tx = writer.begin();
    tx.insert(&p2, "R2", Tuple::strs(["held", "pin"])).unwrap();
    let receipt = tx
        .commit()
        .expect("commit completes while a Snapshot is held");
    assert_eq!(receipt.versions[&p2], Version(1));

    // The held snapshot is frozen at its pre-commit epoch and contents…
    assert_eq!(pinned.epoch(), epoch_before);
    assert_eq!(pinned.version_of(&p2).unwrap(), 0);
    assert_eq!(pinned.system().unwrap(), example1_system());
    // …while a fresh pin observes the published epoch.
    let fresh = session.pin().unwrap();
    assert!(fresh.epoch() > epoch_before);
    assert_eq!(fresh.version_of(&p2).unwrap(), 1);
}

/// An [`InProcessStore`] whose `apply_delta` sleeps with a flag raised —
/// the artificially slowed commit of the no-blocking acceptance test.
struct SlowCommitStore {
    inner: InProcessStore,
    committing: AtomicBool,
    delay: Duration,
}

impl SlowCommitStore {
    fn new(system: P2PSystem, delay: Duration) -> Self {
        SlowCommitStore {
            inner: InProcessStore::new(system),
            committing: AtomicBool::new(false),
            delay,
        }
    }
}

impl PeerStore for SlowCommitStore {
    fn topology(&self) -> &P2PSystem {
        self.inner.topology()
    }

    fn instance_of(&self, peer: &PeerId) -> p2p_data_exchange::core::Result<Database> {
        self.inner.instance_of(peer)
    }

    fn instances(
        &self,
        peers: &BTreeSet<PeerId>,
    ) -> p2p_data_exchange::core::Result<BTreeMap<PeerId, Database>> {
        self.inner.instances(peers)
    }

    fn snapshot(&self) -> p2p_data_exchange::core::Result<P2PSystem> {
        self.inner.snapshot()
    }

    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> p2p_data_exchange::core::Result<u64> {
        self.committing.store(true, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        let result = self.inner.apply_delta(peer, delta);
        self.committing.store(false, Ordering::SeqCst);
        result
    }

    fn insert(
        &self,
        peer: &PeerId,
        relation: &str,
        tuple: Tuple,
    ) -> p2p_data_exchange::core::Result<u64> {
        self.inner.insert(peer, relation, tuple)
    }

    fn delete(
        &self,
        peer: &PeerId,
        relation: &str,
        tuple: &Tuple,
    ) -> p2p_data_exchange::core::Result<bool> {
        self.inner.delete(peer, relation, tuple)
    }

    fn version_of(&self, peer: &PeerId) -> p2p_data_exchange::core::Result<u64> {
        self.inner.version_of(peer)
    }

    fn versions(&self) -> p2p_data_exchange::core::Result<p2p_data_exchange::VersionMap> {
        self.inner.versions()
    }

    fn pin(&self) -> p2p_data_exchange::core::Result<p2p_data_exchange::Snapshot> {
        self.inner.pin()
    }

    fn mvcc_stats(&self) -> p2p_data_exchange::MvccStats {
        self.inner.mvcc_stats()
    }

    fn symbols(&self) -> Arc<relalg::SymbolTable> {
        self.inner.symbols()
    }
}

/// The ISSUE acceptance criterion, verbatim: readers pinned to an epoch
/// never block on a concurrent `Writer::commit`. The store's `apply_delta`
/// is slowed to 400 ms; a warm read and a fresh pin taken *while the commit
/// is provably in flight* must complete in a fraction of that.
#[test]
fn pinned_readers_never_block_on_a_slow_commit() {
    let store = Arc::new(SlowCommitStore::new(
        example1_system(),
        Duration::from_millis(400),
    ));
    let session = Session::with_engine(
        QueryEngine::builder(example1_system())
            .store(store.clone() as Arc<dyn PeerStore>)
            .strategy(Strategy::Asp)
            .build(),
    );
    let p2 = PeerId::new("P2");
    let q3 = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);

    // Warm P3 (outside P2's closure) and pin the pre-commit epoch.
    let cold = session.query(&q3).unwrap();
    let pinned = session.pin().unwrap();

    let mut writer = session.writer().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut tx = writer.begin();
            tx.insert(&p2, "R2", Tuple::strs(["slow", "commit"]))
                .unwrap();
            let _ = tx.commit().expect("slowed commit");
        });
        // Wait until the commit is inside the slowed apply_delta.
        while !store.committing.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let start = Instant::now();
        let warm = session.query(&q3).expect("read during commit");
        let mid_commit_pin = session.pin().expect("pin during commit");
        let elapsed = start.elapsed();
        assert!(warm.stats.cache_hit, "P3 stays warm during the commit");
        assert_eq!(warm.tuples, cold.tuples);
        // The commit has not published yet, so the pin is the old epoch…
        assert_eq!(mid_commit_pin.epoch(), pinned.epoch());
        // …and neither read waited out the 400 ms apply.
        assert!(
            elapsed < Duration::from_millis(200),
            "reader blocked on the in-flight commit: {elapsed:?}"
        );
    });

    // After the writer thread joins, the epoch advanced.
    assert!(session.pin().unwrap().epoch() > pinned.epoch());
}

/// The `CacheMetrics` conflation regression: 8 readers hammer the one
/// artifact the committing thread keeps repairing. Every read must count
/// exactly once — a reader landing on a stale entry mid-patch waits for the
/// committing thread and books a single hit (hit-after-patch), never a miss
/// plus a patch.
#[test]
fn racing_readers_count_once_per_query_during_patches() {
    const READERS: usize = 8;
    const QUERIES_PER_READER: usize = 30;
    const COMMITS: usize = 6;

    let session = Session::with_engine(
        QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .build(),
    );
    let p2 = PeerId::new("P2");
    // P1's closure contains P2, so every commit invalidates + repairs the
    // artifact all readers are hammering.
    let q1 = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
    let cold = session.query(&q1).unwrap();
    assert!(!cold.stats.cache_hit);
    let answered = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let handle = session.reader();
            let q1 = &q1;
            let answered = &answered;
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_READER {
                    let _ = handle.query(q1).expect("read during patching");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut writer = session.writer().unwrap();
        scope.spawn(move || {
            for round in 0..COMMITS {
                let mut tx = writer.begin();
                tx.insert(
                    &p2,
                    "R2",
                    Tuple::strs([format!("patch{round}"), "v".to_string()]),
                )
                .unwrap();
                let _ = tx.commit().expect("commit during reader storm");
            }
        });
    });

    assert_eq!(
        answered.load(Ordering::Relaxed),
        READERS * QUERIES_PER_READER
    );
    let metrics = session.metrics();
    // One cold miss up front, then exactly one hit-or-miss per racing read.
    assert_eq!(
        metrics.hits + metrics.misses,
        (1 + READERS * QUERIES_PER_READER) as u64,
        "a read racing a patch was double-counted: {metrics:?}"
    );
    assert_eq!(metrics.commits, COMMITS as u64);
    assert!(
        metrics.invalidated >= 1,
        "commits must invalidate P1's artifact"
    );
    assert!(metrics.patched >= 1, "commit-thread repair must be counted");
}

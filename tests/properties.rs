//! Property-based tests (proptest) over the core invariants:
//!
//! * Δ (Definition 1) is an exact, symmetric description of the change
//!   between two instances;
//! * repairs satisfy their constraints, never touch protected relations and
//!   are ⊆-minimal;
//! * solutions satisfy the trusted DECs and never change more-trusted data;
//! * peer consistent answers are contained in the answers of every solution;
//! * stable models returned by the ASP engine really are stable (they
//!   survive an independent Gelfond–Lifschitz check via the generic
//!   disjunctive solver path).

use constraints::builders::{full_inclusion, key_agreement};
use constraints::ConstraintChecker;
use proptest::prelude::*;
use relalg::delta::Delta;
use relalg::query::{Formula, QueryEvaluator};
use relalg::{Database, Relation, RelationSchema, Tuple};
use repair::RepairEngine;
use workload::{generate, TrustMix, WorkloadSpec};

/// Strategy: a small binary relation instance over a tiny value pool.
fn small_instance(relation: &'static str) -> impl Strategy<Value = Database> {
    proptest::collection::btree_set((0u8..4, 0u8..4), 0..6).prop_map(move |pairs| {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(relation, &["x", "y"])));
        for (a, b) in pairs {
            db.insert(relation, Tuple::strs([format!("c{a}"), format!("c{b}")]))
                .unwrap();
        }
        db
    })
}

/// Strategy: a small delta over binary `R` atoms, with disjoint insertion
/// and deletion sets (the invariant `Delta::between` guarantees).
fn small_delta() -> impl Strategy<Value = Delta> {
    (
        proptest::collection::btree_set((0u8..3, 0u8..3), 0..4),
        proptest::collection::btree_set((0u8..3, 0u8..3), 0..4),
    )
        .prop_map(|(ins, del)| {
            let atom = |(a, b): (u8, u8)| {
                relalg::database::GroundAtom::new(
                    "R",
                    Tuple::strs([format!("c{a}"), format!("c{b}")]),
                )
            };
            Delta::from_changes(
                ins.iter().copied().map(atom),
                del.difference(&ins).copied().map(atom),
            )
        })
}

/// Strategy: a two-relation database (R and S) for repair tests.
fn two_relation_instance() -> impl Strategy<Value = Database> {
    (
        proptest::collection::btree_set((0u8..3, 0u8..3), 0..5),
        proptest::collection::btree_set((0u8..3, 0u8..3), 0..5),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.add_relation(Relation::new(RelationSchema::new("R", &["x", "y"])));
            db.add_relation(Relation::new(RelationSchema::new("S", &["x", "y"])));
            for (a, b) in rs {
                db.insert("R", Tuple::strs([format!("c{a}"), format!("c{b}")]))
                    .unwrap();
            }
            for (a, b) in ss {
                db.insert("S", Tuple::strs([format!("c{a}"), format!("c{b}")]))
                    .unwrap();
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying Δ(base, candidate) to the base reconstructs the candidate,
    /// and Δ is empty iff the instances coincide.
    #[test]
    fn delta_reconstructs_the_candidate(base in small_instance("R"), cand in small_instance("R")) {
        let delta = Delta::between(&base, &cand);
        prop_assert_eq!(delta.apply(&base).unwrap(), cand.clone());
        prop_assert_eq!(delta.is_empty(), base == cand);
        // Symmetry of the flat atom set.
        let back = Delta::between(&cand, &base);
        prop_assert_eq!(delta.atoms(), back.atoms());
    }

    /// `DeltaOrdering` under change-set inclusion is a partial order:
    /// comparisons are mutually consistent (antisymmetry — `a ≤ b` and
    /// `b ≤ a` only when `a = b`), incomparability is symmetric, `≤` is
    /// transitive, and `partial_cmp` mirrors `compare` (returning `None`
    /// exactly on the incomparable cases).
    #[test]
    fn delta_ordering_is_a_partial_order(a in small_delta(), b in small_delta(), c in small_delta()) {
        use relalg::delta::DeltaOrdering;
        use std::cmp::Ordering;
        let ab = a.compare(&b);
        let ba = b.compare(&a);
        match ab {
            DeltaOrdering::Equal => {
                prop_assert_eq!(ba, DeltaOrdering::Equal);
                prop_assert_eq!(&a, &b); // antisymmetry
            }
            DeltaOrdering::Less => prop_assert_eq!(ba, DeltaOrdering::Greater),
            DeltaOrdering::Greater => prop_assert_eq!(ba, DeltaOrdering::Less),
            DeltaOrdering::Incomparable => prop_assert_eq!(ba, DeltaOrdering::Incomparable),
        }
        // Transitivity of ⊆.
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            prop_assert!(a.is_subset_of(&c));
        }
        // partial_cmp mirrors compare.
        let expected = match ab {
            DeltaOrdering::Equal => Some(Ordering::Equal),
            DeltaOrdering::Less => Some(Ordering::Less),
            DeltaOrdering::Greater => Some(Ordering::Greater),
            DeltaOrdering::Incomparable => None,
        };
        prop_assert_eq!(a.partial_cmp(&b), expected);
    }

    /// Applying a delta and then its inverse round-trips the base instance
    /// (the delta is exact for the base by `Delta::between`'s construction).
    #[test]
    fn delta_inverse_round_trips(base in small_instance("R"), cand in small_instance("R")) {
        let delta = Delta::between(&base, &cand);
        let forward = delta.apply(&base).unwrap();
        prop_assert_eq!(delta.inverse().apply(&forward).unwrap(), base.clone());
        // Inverting twice is the identity.
        prop_assert_eq!(delta.inverse().inverse(), delta);
    }

    /// Every repair satisfies the constraints, leaves protected relations
    /// untouched, and no repair's delta is strictly contained in another's.
    #[test]
    fn repairs_are_consistent_protected_and_minimal(db in two_relation_instance()) {
        let constraints = vec![
            full_inclusion("inc", "S", "R", 2).unwrap(),
            key_agreement("key", "R", "S").unwrap(),
        ];
        let engine = RepairEngine::new(constraints.clone()).with_protected(["S"]);
        let outcome = engine.repairs(&db).unwrap();
        for repair in &outcome.repairs {
            let checker = ConstraintChecker::new(&repair.database);
            prop_assert!(checker.all_satisfied(constraints.iter()).unwrap());
            prop_assert_eq!(
                repair.database.relation("S").unwrap().tuples(),
                db.relation("S").unwrap().tuples()
            );
        }
        for (i, a) in outcome.repairs.iter().enumerate() {
            for (j, b) in outcome.repairs.iter().enumerate() {
                if i != j {
                    prop_assert!(!(a.delta.is_subset_of(&b.delta) && a.delta != b.delta));
                }
            }
        }
    }

    /// On generated inclusion workloads: every solution satisfies the trusted
    /// DECs, never changes the more-trusted peer's relation, and the peer
    /// consistent answers are contained in every solution's answers.
    #[test]
    fn solutions_and_pcas_respect_trust(seed in 0u64..40, tuples in 2usize..7) {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: tuples,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        };
        let w = generate(&spec).expect("valid workload spec");
        let solutions = p2p_data_exchange::core::solution::solutions_for(
            &w.system,
            &w.queried_peer,
            Default::default(),
        )
        .unwrap();
        prop_assert!(!solutions.is_empty());
        let original = w.system.global_instance().unwrap();
        for s in &solutions {
            let checker = ConstraintChecker::new(&s.database);
            for dec in w.system.decs() {
                prop_assert!(checker.satisfied(&dec.constraint).unwrap());
            }
            // The more-trusted peer's relation (T1) never changes.
            prop_assert_eq!(
                s.database.relation("T1").unwrap().tuples(),
                original.relation("T1").unwrap().tuples()
            );
        }
        let engine = p2p_data_exchange::QueryEngine::new(w.system.clone());
        let pca = engine
            .answer_with(
                p2p_data_exchange::Strategy::Naive,
                &w.queried_peer,
                &w.query,
                &w.free_vars,
            )
            .unwrap();
        for s in &solutions {
            let restricted = w.system.restrict_to_peer(&s.database, &w.queried_peer).unwrap();
            let eval = QueryEvaluator::new(&restricted);
            let answers = eval.answers(&w.query, &w.free_vars).unwrap();
            prop_assert!(pca.tuples.is_subset(&answers));
        }
    }

    /// Rewriting and the ASP route agree with the semantic reference on
    /// random inclusion workloads (the fragment all three support).
    #[test]
    fn mechanisms_agree_on_random_inclusion_workloads(seed in 0u64..25) {
        use p2p_data_exchange::{QueryEngine, Strategy};
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: 5,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        };
        let w = generate(&spec).expect("valid workload spec");
        let engine = QueryEngine::new(w.system);
        let semantic = engine
            .answer_with(Strategy::Naive, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let rewriting = engine
            .answer_with(Strategy::Rewriting, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let asp = engine
            .answer_with(Strategy::Asp, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        prop_assert_eq!(&semantic.tuples, &rewriting.tuples);
        prop_assert_eq!(&semantic.tuples, &asp.tuples);
    }

    /// Every answer set reported for a small non-disjunctive program is a
    /// model of the program and stable under an independent reduct check.
    #[test]
    fn answer_sets_are_stable_models(
        facts in proptest::collection::btree_set(0u8..4, 1..4),
        blocked in proptest::collection::btree_set(0u8..4, 0..3),
    ) {
        use datalog::{Atom, BodyItem, Program, Rule};
        // p(x) for facts; q(x) :- p(x), not r(x); r(x) :- p(x), not q(x);
        // plus blocking facts r(x) for x in `blocked`.
        let mut program = Program::new();
        for f in &facts {
            program.add_fact(Atom::new("p", &[format!("c{f}")]));
        }
        for b in &blocked {
            program.add_fact(Atom::new("r", &[format!("c{b}")]));
        }
        program.add_rule(Rule::new(
            vec![Atom::new("q", &["X"])],
            vec![BodyItem::Pos(Atom::new("p", &["X"])), BodyItem::Naf(Atom::new("r", &["X"]))],
        ));
        program.add_rule(Rule::new(
            vec![Atom::new("r", &["X"])],
            vec![BodyItem::Pos(Atom::new("p", &["X"])), BodyItem::Naf(Atom::new("q", &["X"]))],
        ));
        let result = datalog::solve(&program, datalog::SolverConfig::default()).unwrap();
        // Expected number of answer sets: 2^(free atoms), where an atom is
        // free when it is a fact of p and not blocked by an r fact.
        let free = facts.iter().filter(|f| !blocked.contains(f)).count();
        prop_assert_eq!(result.answer_sets.len(), 1usize << free);
        // Each answer set satisfies every ground rule (model check).
        for set in &result.answer_sets {
            for rule in result.ground.rules() {
                let body = rule.pos.iter().all(|p| set.contains(p))
                    && rule.neg.iter().all(|n| !set.contains(n));
                if body {
                    prop_assert!(rule.heads.iter().any(|h| set.contains(h)));
                }
            }
        }
    }

    /// The safe-range evaluator agrees with direct membership checking on
    /// atomic queries.
    #[test]
    fn evaluator_matches_membership(db in small_instance("R")) {
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("R", vec!["X", "Y"]);
        let answers = eval.answers(&q, &["X".to_string(), "Y".to_string()]).unwrap();
        let expected: std::collections::BTreeSet<Tuple> =
            db.relation("R").unwrap().iter().cloned().collect();
        prop_assert_eq!(answers, expected);
    }
}

//! Live-session integration tests:
//!
//! * the ISSUE acceptance criterion — after a commit touching peer `P`, a
//!   repeat query on a peer outside `P`'s relevant-peer closure is served
//!   from the memoized artifacts (observable via `EngineStats.cache_hit`),
//!   while a query inside the closure is repaired on the committing thread
//!   and agrees with a fresh engine built on the mutated snapshot;
//! * equivalence under mutation — after N random committed update batches,
//!   every strategy's answers equal those of a fresh engine built on the
//!   final snapshot (live invalidation never changes semantics, only work).

use p2p_data_exchange::{
    example1_system, Formula, PeerId, Query, QueryEngine, Session, Strategy, Tuple, Update, Version,
};
use proptest::prelude::*;
use workload::{generate, generate_updates, TrustMix, UpdateSpec, WorkloadSpec};

#[test]
fn commits_invalidate_the_closure_and_nothing_else() {
    let engine = QueryEngine::builder(example1_system())
        .strategy(Strategy::Asp)
        .build();
    let session = Session::with_engine(engine);
    let p2 = PeerId::new("P2");
    let q1 = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
    let q3 = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);

    // Warm the artifacts of P1 (closure {P1, P2, P3}) and P3 (closure {P3}).
    let cold1 = session.query(&q1).unwrap();
    let cold3 = session.query(&q3).unwrap();
    assert!(!cold1.stats.cache_hit && !cold3.stats.cache_hit);
    let warm3 = session.query(&q3).unwrap();
    assert!(warm3.stats.cache_hit);

    // Commit a change to P2. P3 is outside P2's relevant-peer closure.
    let mut writer = session.writer().unwrap();
    let mut tx = writer.begin();
    tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
    tx.delete(&p2, "R2", &Tuple::strs(["c", "d"])).unwrap();
    let receipt = tx.commit().unwrap();
    assert_eq!(receipt.versions[&p2], Version(1));

    // Outside the closure: still served from the cache, same answers.
    let still_warm = session.query(&q3).unwrap();
    assert!(still_warm.stats.cache_hit, "P3 must stay warm");
    assert_eq!(still_warm.tuples, cold3.tuples);

    // Inside the closure: the artifact was repaired on the committing
    // thread, so the next read is warm AND identical to a fresh engine
    // over the mutated snapshot.
    let repaired = session.query(&q1).unwrap();
    assert!(repaired.stats.cache_hit, "P1 must be repaired on commit");
    let fresh = QueryEngine::builder(session.current_system().unwrap())
        .strategy(Strategy::Asp)
        .build();
    let reference = fresh.answer(&q1.peer, &q1.query, &q1.free_vars).unwrap();
    assert_eq!(repaired.tuples, reference.tuples);
    assert!(repaired.contains(&Tuple::strs(["x", "y"])));
    assert!(!repaired.contains(&Tuple::strs(["c", "d"])));

    // And the cumulative metrics saw the invalidation and the repair.
    let metrics = session.metrics();
    assert!(metrics.commits == 1 && metrics.invalidated >= 1);
    assert!(metrics.patched >= 1, "commit-thread repair must be counted");
}

#[test]
fn rewriting_queries_survive_commits_via_incremental_global_maintenance() {
    let engine = QueryEngine::builder(example1_system())
        .strategy(Strategy::Rewriting)
        .build();
    let session = Session::with_engine(engine);
    let p2 = PeerId::new("P2");
    let q1 = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
    let _ = session.query(&q1).unwrap();
    let mut writer = session.writer().unwrap();
    let mut tx = writer.begin();
    tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
    let _ = tx.commit().unwrap();
    // The materialized global instance is maintained in place: warm AND
    // already reflecting the commit.
    let warm = session.query(&q1).unwrap();
    assert!(warm.stats.cache_hit);
    assert!(warm.contains(&Tuple::strs(["x", "y"])));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// After N random committed update batches, each strategy's live answers
    /// equal a fresh engine's answers on the final snapshot — for the
    /// queried peer (inside every mutation's closure) and the hot peer
    /// (whose artifacts the mutations repeatedly invalidate).
    #[test]
    fn live_answers_equal_fresh_engine_on_final_snapshot(
        seed in 0u64..20,
        batches in 1usize..4,
        insert_percent in 0u8..101,
    ) {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: 4,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        }).unwrap();
        let stream = generate_updates(&w, &UpdateSpec {
            batches,
            batch_size: 1,
            insert_percent,
            hot_peer_percent: 100,
            seed,
        }).unwrap();

        let session = Session::new(w.system.clone());
        let mut writer = session.writer().unwrap();
        for batch in &stream {
            let receipt = writer
                .apply(&[Update::new(batch.peer.clone(), batch.delta.clone())])
                .unwrap();
            prop_assert!(!receipt.touched.is_empty());
        }
        prop_assert_eq!(session.current_seq(), stream.len() as u64);

        // Replaying the log reproduces the live system.
        let replayed = session.snapshot_at(session.current_seq()).unwrap();
        prop_assert_eq!(replayed.epoch(), session.current_seq());
        let replayed_system = replayed.system().unwrap();
        prop_assert_eq!(&replayed_system, &session.current_system().unwrap());

        let fresh = QueryEngine::new(replayed_system);
        let live_q = Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone());
        let hot_q = Query::named("P1", Formula::atom("T1", vec!["X", "Y"]), &["X", "Y"]);
        for strategy in [
            Strategy::Naive,
            Strategy::Rewriting,
            Strategy::Asp,
            Strategy::TransitiveAsp,
        ] {
            let live = session.query_with(strategy, &live_q).unwrap();
            let reference = fresh
                .answer_with(strategy, &w.queried_peer, &w.query, &w.free_vars)
                .unwrap();
            prop_assert_eq!(&live.tuples, &reference.tuples, "strategy {:?}", strategy);
            // The mutated (hot) peer itself.
            let live_hot = session.query_with(strategy, &hot_q).unwrap();
            let reference_hot = fresh
                .answer_with(strategy, &hot_q.peer, &hot_q.query, &hot_q.free_vars)
                .unwrap();
            prop_assert_eq!(&live_hot.tuples, &reference_hot.tuples, "strategy {:?}", strategy);
        }
    }
}

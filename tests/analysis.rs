//! Property tests for the static analyzer: analyzer-clean generated
//! workloads never hit solver-side safety or stratification failures in
//! any of the four answering mechanisms, and the analyzer's rewritability
//! verdict always agrees with the engine's `Strategy::Auto` resolution.

use p2p_data_exchange::analysis::{classify_rewritability, codes, RewriteVerdict};
use p2p_data_exchange::core::pca::vars;
use p2p_data_exchange::{PeerId, QueryEngine, Strategy as EngineStrategy, StrategyKind};
use proptest::prelude::*;
use relalg::query::Formula;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

/// Strategy: a small workload spec across every generator dimension
/// (topology, trust mix and key-constraint share decoded from drawn
/// indices — the vendored proptest stub has no `prop_oneof`).
fn small_spec() -> impl proptest::Strategy<Value = WorkloadSpec> {
    (
        (2usize..4, 1usize..8, 0usize..3),
        (0u8..2, 0u8..3, 0u8..101, 0u64..1000),
    )
        .prop_map(
            |((peers, tuples, violations), (topo, trust, key_percent, seed))| WorkloadSpec {
                peers,
                tuples_per_relation: tuples,
                violations_per_dec: violations,
                topology: if topo == 0 {
                    Topology::Star
                } else {
                    Topology::Chain
                },
                trust_mix: match trust {
                    0 => TrustMix::AllLess,
                    1 => TrustMix::AllSame,
                    _ => TrustMix::Mixed,
                },
                key_constraint_percent: key_percent,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An analyzer-clean system answers under every mechanism: no strategy
    /// ever reports a safety or stratification failure downstream of a
    /// clean report (the analyzer is a sound pre-flight).
    #[test]
    fn clean_workloads_answer_under_every_strategy(spec in small_spec()) {
        let generated = generate(&spec).unwrap();
        let report = generated.system.analyze();
        prop_assert!(
            report.is_clean(),
            "generator produced a defective system for {spec}:\n{}",
            report.render()
        );
        let engine = QueryEngine::builder(generated.system.clone())
            .strict_analysis(true)
            .try_build()
            .unwrap_or_else(|e| panic!("strict build refused {spec}: {e}"));
        let free = vars(&["X", "Y"]);
        for strategy in [
            EngineStrategy::Naive,
            EngineStrategy::Rewriting,
            EngineStrategy::Asp,
            EngineStrategy::TransitiveAsp,
        ] {
            // Rewriting legitimately refuses non-rewritable peers; every
            // other error (unsafe rules, unstratified programs, grounding
            // failures) would be an analyzer miss.
            let result = engine.answer_with(
                strategy,
                &generated.queried_peer,
                &generated.query,
                &free,
            );
            if let Err(e) = &result {
                let rewritable = matches!(
                    classify_rewritability(&generated.system, &generated.queried_peer).unwrap(),
                    RewriteVerdict::Rewritable
                );
                prop_assert!(
                    matches!(strategy, EngineStrategy::Rewriting) && !rewritable,
                    "strategy {strategy:?} failed on analyzer-clean {spec}: {e}"
                );
            }
        }
    }

    /// The analyzer's verdict is the `Strategy::Auto` decision, for every
    /// peer of every generated workload.
    #[test]
    fn verdict_matches_auto_resolution(spec in small_spec()) {
        let generated = generate(&spec).unwrap();
        let engine = QueryEngine::builder(generated.system.clone()).build();
        for (i, peer) in generated.system.peer_ids().enumerate() {
            let query = Formula::atom(format!("T{i}"), vec!["X", "Y"]);
            let verdict = classify_rewritability(&generated.system, peer).unwrap();
            let (kind, reason) = engine.resolve_explained(EngineStrategy::Auto, peer, &query);
            match verdict {
                RewriteVerdict::Rewritable => {
                    prop_assert_eq!(kind, StrategyKind::Rewriting);
                    prop_assert_eq!(reason, None);
                }
                RewriteVerdict::NotRewritable { code, .. } => {
                    prop_assert_eq!(kind, StrategyKind::Asp);
                    prop_assert_eq!(reason, Some(code));
                }
            }
        }
    }
}

#[test]
fn paper_example_reports_no_rewrite_obstruction() {
    let system = p2p_data_exchange::example1_system();
    let report = system.analyze();
    assert!(report.is_clean());
    for code in [
        codes::REWRITE_LOCAL_ICS,
        codes::REWRITE_NOT_INCLUSION,
        codes::REWRITE_NOT_KEY_AGREEMENT,
    ] {
        assert!(!report.has_code(code), "{}", report.render());
    }
    let verdict = classify_rewritability(&system, &PeerId::new("P1")).unwrap();
    assert_eq!(verdict, RewriteVerdict::Rewritable);
}

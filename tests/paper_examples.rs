//! End-to-end reproduction of every worked example of the paper
//! (experiments E1–E6 of DESIGN.md), exercised through the public API of the
//! umbrella crate.

use datalog::{AnswerSets, SolverConfig};
use p2p_data_exchange::core::asp::paper::{
    appendix_lav_program, example4_program, section31_program,
};
use p2p_data_exchange::core::solution::{solutions_for, SolutionOptions};
use p2p_data_exchange::{vars, Formula, PeerId, QueryEngine, Strategy, Tuple};
use std::collections::BTreeSet;

/// E1 — Example 1: peer P1 has exactly the two solutions r′ and r′′.
#[test]
fn e1_example1_solutions() {
    let system = p2p_data_exchange::example1_system();
    let p1 = PeerId::new("P1");
    let solutions = solutions_for(&system, &p1, SolutionOptions::default()).unwrap();
    assert_eq!(solutions.len(), 2);
    for s in &solutions {
        // r' and r'' both drop R3(a, f), keep R2 untouched and import P2's
        // tuples into R1.
        assert!(!s.database.holds("R3", &Tuple::strs(["a", "f"])));
        assert_eq!(s.database.relation("R2").unwrap().len(), 2);
        assert!(s.database.holds("R1", &Tuple::strs(["c", "d"])));
        assert!(s.database.holds("R1", &Tuple::strs(["a", "e"])));
    }
}

/// E2 — Example 2: the PCAs of R1(x, y) at P1 are (a,b), (c,d), (a,e), and
/// every engine strategy produces them.
#[test]
fn e2_example2_peer_consistent_answers() {
    let engine = QueryEngine::new(p2p_data_exchange::example1_system());
    let p1 = PeerId::new("P1");
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let expected = BTreeSet::from([
        Tuple::strs(["a", "b"]),
        Tuple::strs(["c", "d"]),
        Tuple::strs(["a", "e"]),
    ]);

    for strategy in [
        Strategy::Naive,
        Strategy::Rewriting,
        Strategy::Asp,
        Strategy::TransitiveAsp,
        Strategy::Auto,
    ] {
        let answers = engine
            .answer_with(strategy, &p1, &query, &vars(&["X", "Y"]))
            .unwrap();
        assert_eq!(answers.tuples, expected, "strategy {strategy:?}");
    }
}

/// E3 — Section 3.1: the GAV choice program has the expected stable models
/// (three distinct solutions over four models).
#[test]
fn e3_section31_choice_program() {
    let program = section31_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[Tuple::strs(["c", "b"])],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
    );
    let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
    assert_eq!(sets.len(), 4);
}

/// E4 — Appendix: the LAV program has exactly the four stable models M1–M4.
#[test]
fn e4_appendix_lav_models() {
    let program = appendix_lav_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[Tuple::strs(["c", "b"])],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
    );
    let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
    assert_eq!(sets.len(), 4);
}

/// E5 — Example 3: shifting the disjunctive rule (9) produces the paper's
/// two normal rules, and shifting preserves the answer sets of the (HCF)
/// Section 3.1 program.
#[test]
fn e5_hcf_shifting() {
    use datalog::graph::is_head_cycle_free;
    use datalog::shift::shift_program;
    use datalog::Grounder;

    let program = section31_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[Tuple::strs(["c", "b"])],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
    );
    let ground = Grounder::new(&program).ground().unwrap();
    assert!(is_head_cycle_free(&ground));

    let shifted = shift_program(Grounder::new(&program).program());
    assert!(!shifted.is_disjunctive());
    let original_sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
    let shifted_sets = AnswerSets::compute(&shifted, SolverConfig::default()).unwrap();
    assert_eq!(original_sets.len(), shifted_sets.len());
    let a: BTreeSet<_> = original_sets.sets.into_iter().collect();
    let b: BTreeSet<_> = shifted_sets.sets.into_iter().collect();
    assert_eq!(a, b);
}

/// E6 — Example 4: the combined program of the transitive case has exactly
/// the three solutions the paper lists.
#[test]
fn e6_example4_transitive() {
    let program = example4_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
        &[Tuple::strs(["c", "b"])],
    );
    let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
    // Distinct solutions over (r1p, r2p):
    let mut shapes = BTreeSet::new();
    for i in 0..sets.len() {
        shapes.insert((sets.tuples_in(i, "r1p"), sets.tuples_in(i, "r2p")));
    }
    assert_eq!(shapes.len(), 3);
    // Every model imports U's tuple into S1's virtual version.
    for i in 0..sets.len() {
        assert_eq!(sets.tuples_in(i, "s1p").len(), 1);
    }
}

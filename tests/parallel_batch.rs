//! Parallel-execution equivalence and stress tests:
//!
//! * property: `answer_batch` over any workload equals a sequential loop of
//!   single `answer` calls — same certain answers, same world counts, same
//!   error/success shape — for all four strategies and pool sizes 1/2/8;
//! * stress: a shared engine hammered from 8 reader threads while a writer
//!   commits `Session` transactions, checking the atomic cache counters
//!   account for every query (the counters under-counted when they were
//!   plain fields behind the cache lock).

use p2p_data_exchange::core::engine::Query;
use p2p_data_exchange::{PeerId, QueryEngine, Session, Strategy, Tuple};
use pdes_bench::parallel::{cluster_batch, cluster_system};
use proptest::prelude::*;
use relalg::query::Formula;
use workload::{generate, TrustMix, WorkloadSpec};

/// Answer the batch as a plain loop on a fresh sequential engine — the
/// reference the parallel paths must reproduce.
fn reference_answers(
    system: &p2p_data_exchange::P2PSystem,
    strategy: Strategy,
    batch: &[Query],
) -> Vec<Result<(std::collections::BTreeSet<Tuple>, usize), String>> {
    let engine = QueryEngine::builder(system.clone())
        .strategy(strategy)
        .build();
    batch
        .iter()
        .map(|q| {
            engine
                .answer(&q.peer, &q.query, &q.free_vars)
                .map(|a| (a.tuples, a.stats.worlds))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Assert batch results equal the reference elementwise (answers and world
/// counts on success; both failing on error).
fn assert_batch_matches(
    system: &p2p_data_exchange::P2PSystem,
    strategy: Strategy,
    batch: &[Query],
    workers: usize,
) {
    let reference = reference_answers(system, strategy, batch);
    let engine = QueryEngine::builder(system.clone())
        .strategy(strategy)
        .workers(workers)
        .build();
    let results = engine.answer_batch(batch);
    assert_eq!(results.len(), reference.len());
    for (i, (got, want)) in results.into_iter().zip(reference).enumerate() {
        match (got, want) {
            (Ok(a), Ok((tuples, worlds))) => {
                assert_eq!(
                    a.tuples, tuples,
                    "strategy {strategy:?} workers {workers} query {i}"
                );
                assert_eq!(a.stats.worlds, worlds);
            }
            (Err(_), Err(_)) => {}
            (got, want) => panic!(
                "strategy {strategy:?} workers {workers} query {i}: \
                 batch/loop success shape diverged: {got:?} vs {want:?}"
            ),
        }
    }
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated single-cluster workloads: the batch repeats the canonical
    /// query and a projected variant against the queried peer, so every
    /// query shares one partition and must warm the cache exactly like a
    /// loop.
    #[test]
    fn batch_equals_loop_on_generated_workloads(seed in 0u64..40, tuples in 3usize..6) {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: tuples,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            seed,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        let projected = Formula::exists(vec!["Y"], w.query.clone());
        let batch = vec![
            Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone()),
            Query::new(w.queried_peer.clone(), projected, vec!["X".to_string()]),
            Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone()),
        ];
        for strategy in ALL_STRATEGIES {
            for workers in [1usize, 2, 8] {
                assert_batch_matches(&w.system, strategy, &batch, workers);
            }
        }
    }

    /// Independent key-agreement clusters: disjoint closures, so the batch
    /// genuinely partitions and runs concurrently at ≥2 workers.
    #[test]
    fn batch_equals_loop_on_disjoint_clusters(
        clusters in 2usize..4,
        tuples in 3usize..6,
        conflicts in 1usize..3,
    ) {
        let system = cluster_system(clusters, tuples, conflicts);
        let batch = cluster_batch(clusters, 2);
        for strategy in ALL_STRATEGIES {
            for workers in [1usize, 2, 8] {
                assert_batch_matches(&system, strategy, &batch, workers);
            }
        }
    }
}

/// 8 reader threads hammer a shared session through cloned [`ReadHandle`]s
/// while the single [`Writer`] commits transactions — no lock around the
/// session at all, the point of the MVCC read/write split. Checks liveness
/// (no deadlock between the commit path and the engine's cache lock),
/// answer sanity across invalidations, and that the atomic hit/miss
/// counters account for every single query.
#[test]
fn stress_shared_engine_during_session_commits() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    const CLUSTERS: usize = 4;
    const READERS: usize = 8;
    const QUERIES_PER_READER: usize = 25;
    const COMMITS: usize = 10;

    let system = cluster_system(CLUSTERS, 6, 2);
    let session = Session::with_engine(
        QueryEngine::builder(system)
            .strategy(Strategy::Asp)
            .workers(2)
            .build(),
    );
    let answered = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let handle = session.reader();
            let answered = &answered;
            scope.spawn(move || {
                for round in 0..QUERIES_PER_READER {
                    let i = (reader + round) % CLUSTERS;
                    let query = Query::named(
                        PeerId::new(format!("A{i}")),
                        Formula::atom(format!("RA{i}"), vec!["X", "Y"]),
                        &["X", "Y"],
                    );
                    let answers = handle
                        .query(&query)
                        .expect("query must survive concurrent commits");
                    // Two planted conflicts per cluster: always 4 worlds,
                    // and the non-conflicting tuples are always certain.
                    assert_eq!(answers.stats.worlds, 4);
                    assert!(answers.len() >= 4);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut writer = session.writer().unwrap();
        scope.spawn(move || {
            for round in 0..COMMITS {
                let i = round % CLUSTERS;
                let peer = PeerId::new(format!("B{i}"));
                let relation = format!("RB{i}");
                let mut tx = writer.begin();
                tx.insert(
                    &peer,
                    &relation,
                    Tuple::strs([format!("extra{round}"), "v".to_string()]),
                )
                .unwrap();
                let receipt = tx.commit().unwrap();
                assert_eq!(receipt.touched.len(), 1);
            }
        });
    });

    let total = answered.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(total, READERS * QUERIES_PER_READER);
    let metrics = session.metrics();
    // Every query() performs exactly one preparation lookup; with atomic
    // counters none may be lost, even under contention.
    assert_eq!(
        metrics.hits + metrics.misses,
        total as u64,
        "cache counters must account for every query: {metrics:?}"
    );
    assert_eq!(metrics.commits, COMMITS as u64);
    assert!(
        metrics.invalidated >= 1,
        "commits must invalidate artifacts"
    );
}

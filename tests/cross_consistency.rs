//! Cross-mechanism consistency: on generated workloads inside the fragment
//! every mechanism supports, the semantic reference (solution enumeration),
//! the first-order rewriting and the ASP specification must return the same
//! peer consistent answers.

use datalog::SolverConfig;
use p2p_data_exchange::core::answer::{answers_via_asp, answers_via_transitive_asp};
use p2p_data_exchange::core::pca::peer_consistent_answers;
use p2p_data_exchange::core::rewriting::answers_by_rewriting;
use p2p_data_exchange::core::solution::SolutionOptions;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

fn check_agreement(spec: &WorkloadSpec, include_rewriting: bool) {
    let w = generate(spec);
    let semantic = peer_consistent_answers(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolutionOptions::default(),
    )
    .unwrap();
    let asp = answers_via_asp(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolverConfig::default(),
    )
    .unwrap();
    assert_eq!(semantic.answers, asp.answers, "spec: {spec}");
    if include_rewriting {
        let rewriting =
            answers_by_rewriting(&w.system, &w.queried_peer, &w.query, &w.free_vars).unwrap();
        assert_eq!(semantic.answers, rewriting.answers, "spec: {spec}");
    }
}

#[test]
fn inclusion_workloads_agree_across_mechanisms() {
    for seed in [1, 2, 3] {
        for tuples in [4, 8, 12] {
            let spec = WorkloadSpec {
                peers: 2,
                tuples_per_relation: tuples,
                violations_per_dec: 2,
                trust_mix: TrustMix::AllLess,
                seed,
                ..WorkloadSpec::default()
            };
            check_agreement(&spec, true);
        }
    }
}

#[test]
fn key_conflict_workloads_agree_across_mechanisms() {
    for seed in [1, 5] {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: 6,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            seed,
            ..WorkloadSpec::default()
        };
        check_agreement(&spec, false);
    }
}

#[test]
fn multi_peer_star_workloads_agree() {
    let spec = WorkloadSpec {
        peers: 4,
        tuples_per_relation: 5,
        violations_per_dec: 1,
        trust_mix: TrustMix::Mixed,
        topology: Topology::Star,
        seed: 9,
        ..WorkloadSpec::default()
    };
    check_agreement(&spec, false);
}

#[test]
fn transitive_answers_are_a_superset_of_direct_answers_on_import_chains() {
    // On pure-import chains, the global semantics can only add imported
    // tuples, never remove direct ones.
    let spec = WorkloadSpec {
        peers: 3,
        tuples_per_relation: 5,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Chain,
        seed: 4,
        ..WorkloadSpec::default()
    };
    let w = generate(&spec);
    let direct = answers_via_asp(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolverConfig::default(),
    )
    .unwrap();
    let transitive = answers_via_transitive_asp(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolverConfig::default(),
    )
    .unwrap();
    assert!(direct.answers.is_subset(&transitive.answers));
}

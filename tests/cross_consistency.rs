//! Cross-strategy consistency: on workloads inside the fragment every
//! mechanism supports, the engine's strategies — the semantic reference
//! (naive solution enumeration), the first-order rewriting and the ASP
//! specification — must return identical answer sets.

use p2p_data_exchange::analysis::{classify_rewritability, RewriteVerdict};
use p2p_data_exchange::{
    example1_system, vars, Formula, PeerId, QueryEngine, Strategy, StrategyKind,
};
use workload::{generate, Topology, TrustMix, WorkloadSpec};

/// Answer one workload's canonical query under every applicable strategy on
/// a single shared engine and assert the answer sets coincide. Also
/// cross-checks that the static analyzer's rewritability verdict is the
/// engine's `Strategy::Auto` decision on this workload.
fn check_agreement(spec: &WorkloadSpec, include_rewriting: bool) {
    let w = generate(spec).expect("valid workload spec");
    let rewritable = matches!(
        classify_rewritability(&w.system, &w.queried_peer).unwrap(),
        RewriteVerdict::Rewritable
    );
    let engine = QueryEngine::new(w.system);
    let resolved = engine.resolve(Strategy::Auto, &w.queried_peer, &w.query);
    assert_eq!(
        resolved,
        if rewritable {
            StrategyKind::Rewriting
        } else {
            StrategyKind::Asp
        },
        "analyzer verdict and Auto resolution disagree on {spec}"
    );
    let naive = engine
        .answer_with(Strategy::Naive, &w.queried_peer, &w.query, &w.free_vars)
        .unwrap();
    let asp = engine
        .answer_with(Strategy::Asp, &w.queried_peer, &w.query, &w.free_vars)
        .unwrap();
    assert_eq!(naive.tuples, asp.tuples, "spec: {spec}");
    if include_rewriting {
        let rewriting = engine
            .answer_with(Strategy::Rewriting, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        assert_eq!(naive.tuples, rewriting.tuples, "spec: {spec}");
    }
}

#[test]
fn strategies_agree_on_example1() {
    let engine = QueryEngine::new(example1_system());
    let p1 = PeerId::new("P1");
    for (query, fv) in [
        (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"])),
        (
            Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
            vars(&["X"]),
        ),
    ] {
        let mut answer_sets = Vec::new();
        for strategy in [Strategy::Naive, Strategy::Rewriting, Strategy::Asp] {
            answer_sets.push(
                engine
                    .answer_with(strategy, &p1, &query, &fv)
                    .unwrap()
                    .tuples,
            );
        }
        assert!(
            answer_sets.windows(2).all(|w| w[0] == w[1]),
            "strategies disagree on {query}"
        );
    }
}

#[test]
fn inclusion_workloads_agree_across_strategies() {
    for seed in [1, 2, 3] {
        for tuples in [4, 8, 12] {
            let spec = WorkloadSpec {
                peers: 2,
                tuples_per_relation: tuples,
                violations_per_dec: 2,
                trust_mix: TrustMix::AllLess,
                seed,
                ..WorkloadSpec::default()
            };
            check_agreement(&spec, true);
        }
    }
}

#[test]
fn key_conflict_workloads_agree_across_strategies() {
    for seed in [1, 5] {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: 6,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            seed,
            ..WorkloadSpec::default()
        };
        check_agreement(&spec, false);
    }
}

#[test]
fn multi_peer_star_workloads_agree() {
    let spec = WorkloadSpec {
        peers: 4,
        tuples_per_relation: 5,
        violations_per_dec: 1,
        trust_mix: TrustMix::Mixed,
        topology: Topology::Star,
        seed: 9,
        ..WorkloadSpec::default()
    };
    check_agreement(&spec, false);
}

#[test]
fn auto_selects_rewriting_exactly_on_rewritable_workloads() {
    // Pure-inclusion workloads are the Example 2 class: Auto must resolve to
    // the rewriting and still agree with the explicit ASP strategy.
    let rewritable = generate(&WorkloadSpec {
        peers: 2,
        tuples_per_relation: 6,
        violations_per_dec: 2,
        trust_mix: TrustMix::AllLess,
        seed: 3,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec");
    let engine = QueryEngine::new(rewritable.system);
    assert_eq!(
        engine.resolve(Strategy::Auto, &rewritable.queried_peer, &rewritable.query),
        StrategyKind::Rewriting
    );
    let auto = engine
        .answer(
            &rewritable.queried_peer,
            &rewritable.query,
            &rewritable.free_vars,
        )
        .unwrap();
    assert_eq!(auto.stats.strategy, StrategyKind::Rewriting);
    // Rewritable per the analyzer too, so no fallback reason is attached.
    assert_eq!(auto.stats.auto_reason, None);
    let asp = engine
        .answer_with(
            Strategy::Asp,
            &rewritable.queried_peer,
            &rewritable.query,
            &rewritable.free_vars,
        )
        .unwrap();
    assert_eq!(auto.tuples, asp.tuples);
}

#[test]
fn transitive_answers_are_a_superset_of_direct_answers_on_import_chains() {
    // On pure-import chains, the global semantics can only add imported
    // tuples, never remove direct ones.
    let spec = WorkloadSpec {
        peers: 3,
        tuples_per_relation: 5,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Chain,
        seed: 4,
        ..WorkloadSpec::default()
    };
    let w = generate(&spec).expect("valid workload spec");
    let engine = QueryEngine::new(w.system);
    let direct = engine
        .answer_with(Strategy::Asp, &w.queried_peer, &w.query, &w.free_vars)
        .unwrap();
    let transitive = engine
        .answer_with(
            Strategy::TransitiveAsp,
            &w.queried_peer,
            &w.query,
            &w.free_vars,
        )
        .unwrap();
    assert!(direct.tuples.is_subset(&transitive.tuples));
}

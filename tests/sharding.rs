//! Sharded-serving equivalence: an engine answering through a
//! [`ShardedStore`] must be byte-identical to an engine over the in-process
//! single-store oracle — for all four strategies, at shard counts 1/2/4,
//! across live commits — and the store's local/remote counters must
//! classify single-shard vs. cross-shard traffic as documented.
//!
//! The CI shard matrix narrows the grids through `PDES_SHARDS` /
//! `PDES_POOLS` (comma-separated lists), so one matrix leg exercises one
//! cell without rebuilding the suite.

use p2p_data_exchange::{
    vars, ExecConfig, Formula, InProcessStore, P2PSystem, PeerId, PeerStore, QueryEngine,
    ShardedStore, Strategy, Tuple,
};
use relalg::database::GroundAtom;
use relalg::{Delta, RelationSchema};
use std::collections::BTreeSet;
use std::sync::Arc;
use workload::generator::GeneratedWorkload;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Naive,
    Strategy::Rewriting,
    Strategy::Asp,
    Strategy::TransitiveAsp,
];

/// Shard counts exercised by default; `PDES_SHARDS=2` narrows to one.
fn shard_counts() -> Vec<usize> {
    matrix_from_env("PDES_SHARDS", &[1, 2, 4])
}

/// Fan-out pool sizes exercised by default; `PDES_POOLS=8` narrows to one.
fn pool_sizes() -> Vec<usize> {
    matrix_from_env("PDES_POOLS", &[1, 4])
}

fn matrix_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(list) => list
            .split(',')
            .map(|n| n.trim().parse().expect("matrix entries are integers"))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// A star workload (one closure-connected component) plus two isolated
/// peers (components of their own), so shard counts above 1 actually
/// spread peers and closure-spanning queries stay single-shard.
fn sharded_workload() -> GeneratedWorkload {
    let mut w = generate(&WorkloadSpec {
        peers: 3,
        tuples_per_relation: 4,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Star,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec");
    for i in 1..=2 {
        let peer = PeerId::new(format!("Q{i}"));
        w.system.add_peer(peer.clone()).expect("fresh peer");
        w.system
            .add_relation(&peer, RelationSchema::new(format!("S{i}"), &["x", "y"]))
            .expect("fresh relation");
        w.system
            .insert(
                &peer,
                &format!("S{i}"),
                Tuple::strs([format!("q{i}"), "v".to_string()]),
            )
            .expect("tuple fits");
    }
    w
}

/// Every peer's canonical `R(X, Y)` query over its first relation.
fn peer_queries(system: &P2PSystem) -> Vec<(PeerId, Formula)> {
    system
        .peers()
        .map(|p| {
            let relation = p
                .schema
                .relation_names()
                .next()
                .expect("every peer owns one relation");
            (p.id.clone(), Formula::atom(relation, vec!["X", "Y"]))
        })
        .collect()
}

/// Answers for every peer query, with unsupported combinations recorded as
/// `None` so both sides must fail alike.
fn all_answers(
    engine: &QueryEngine,
    strategy: Strategy,
    queries: &[(PeerId, Formula)],
) -> Vec<Option<BTreeSet<Tuple>>> {
    let fv = vars(&["X", "Y"]);
    queries
        .iter()
        .map(|(peer, query)| {
            engine
                .answer_with(strategy, peer, query, &fv)
                .ok()
                .map(|a| a.tuples)
        })
        .collect()
}

/// An engine whose store is a `ShardedStore` over `system`.
fn sharded_engine(
    system: &P2PSystem,
    strategy: Strategy,
    shards: usize,
    pool: usize,
) -> (QueryEngine, Arc<ShardedStore>) {
    let store = Arc::new(
        ShardedStore::builder(system.clone())
            .shards(shards)
            .exec(ExecConfig::with_workers(pool))
            .build(),
    );
    let engine = QueryEngine::builder(system.clone())
        .store(store.clone() as Arc<dyn PeerStore>)
        .strategy(strategy)
        .build();
    (engine, store)
}

/// The delta committed in round `round`: an insert into a round-robined
/// peer (star peers and isolated peers both get mutated).
fn round_update(system: &P2PSystem, round: usize) -> (PeerId, Delta) {
    let peers: Vec<PeerId> = system.peer_ids().cloned().collect();
    let peer = peers[round % peers.len()].clone();
    let relation = system
        .peer(&peer)
        .expect("peer exists")
        .schema
        .relation_names()
        .next()
        .expect("one relation per peer")
        .to_string();
    let atom = GroundAtom::new(
        relation,
        Tuple::strs([format!("shard_k_{round}").as_str(), "shard_v"]),
    );
    (peer, Delta::from_changes([atom], []))
}

#[test]
fn sharded_answers_match_the_single_store_oracle() {
    let w = sharded_workload();
    let queries = peer_queries(&w.system);
    for shards in shard_counts() {
        for pool in pool_sizes() {
            for strategy in ALL_STRATEGIES {
                let oracle = QueryEngine::builder(w.system.clone())
                    .strategy(strategy)
                    .build();
                let (sharded, _store) = sharded_engine(&w.system, strategy, shards, pool);
                assert_eq!(
                    all_answers(&sharded, strategy, &queries),
                    all_answers(&oracle, strategy, &queries),
                    "{strategy:?} diverged from the oracle at shards={shards} pool={pool}"
                );
            }
        }
    }
}

#[test]
fn sharded_answers_match_the_oracle_across_live_commits() {
    let w = sharded_workload();
    let queries = peer_queries(&w.system);
    for shards in shard_counts() {
        for pool in pool_sizes() {
            for strategy in ALL_STRATEGIES {
                let oracle = QueryEngine::builder(w.system.clone())
                    .strategy(strategy)
                    .build();
                let (sharded, _store) = sharded_engine(&w.system, strategy, shards, pool);
                // Warm both engines, then interleave commits and reads.
                let _ = all_answers(&sharded, strategy, &queries);
                let _ = all_answers(&oracle, strategy, &queries);
                for round in 0..5 {
                    let (peer, delta) = round_update(&w.system, round);
                    let sharded_stamp = sharded.commit_delta(&peer, &delta).expect("commit");
                    let oracle_stamp = oracle.commit_delta(&peer, &delta).expect("commit");
                    assert_eq!(
                        sharded_stamp, oracle_stamp,
                        "version stamps diverged at round {round}"
                    );
                    assert_eq!(
                        all_answers(&sharded, strategy, &queries),
                        all_answers(&oracle, strategy, &queries),
                        "{strategy:?} diverged after commit {round} \
                         at shards={shards} pool={pool}"
                    );
                }
            }
        }
    }
}

#[test]
fn single_shard_serving_is_never_remote() {
    let w = sharded_workload();
    let queries = peer_queries(&w.system);
    let (engine, store) = sharded_engine(&w.system, Strategy::Asp, 1, 1);
    let _ = all_answers(&engine, Strategy::Asp, &queries);
    let metrics = store.metrics();
    assert!(metrics.local > 0, "serving must reach the store");
    assert_eq!(metrics.remote, 0, "one shard can never fan out");
}

#[test]
fn closure_local_queries_stay_on_their_shard() {
    // Engine reads pin an epoch from the coordinator's mirror — a store
    // operation that never fans out to a shard, so serving stays local at
    // any shard count, while a full store snapshot (which hydrates every
    // shard's instances) must go remote at 2+ shards.
    let w = sharded_workload();
    let queries = peer_queries(&w.system);
    let (engine, store) = sharded_engine(&w.system, Strategy::Asp, 2, 1);
    let _ = all_answers(&engine, Strategy::Asp, &queries);
    let after_asp = store.metrics();
    assert!(after_asp.local > 0);
    assert_eq!(
        after_asp.remote, 0,
        "closure hydration crossed shards on closure-local queries"
    );
    store.snapshot().expect("snapshot");
    assert_eq!(store.metrics().remote, after_asp.remote + 1);
}

#[test]
fn sharded_epoch_publication_matches_the_single_store_oracle() {
    // The acceptance bar for the MVCC redesign: the epochs a `ShardedStore`
    // publishes (through its coordinator mirror) are bit-identical to the
    // epochs an `InProcessStore` oracle publishes for the same commit
    // sequence — same epoch numbers, same version stamps, same hydrated
    // instances — and pins taken before the commits stay frozen on both
    // sides.
    let w = sharded_workload();
    for shards in shard_counts() {
        let oracle = InProcessStore::new(w.system.clone());
        let store = ShardedStore::builder(w.system.clone())
            .shards(shards)
            .build();
        let pinned_oracle = oracle.pin().expect("oracle pin");
        let pinned_sharded = store.pin().expect("sharded pin");
        assert_eq!(pinned_sharded.epoch(), pinned_oracle.epoch());
        for round in 0..6 {
            let (peer, delta) = round_update(&w.system, round);
            let sharded_stamp = store.apply_delta(&peer, &delta).expect("sharded commit");
            let oracle_stamp = oracle.apply_delta(&peer, &delta).expect("oracle commit");
            assert_eq!(
                sharded_stamp, oracle_stamp,
                "version stamps diverged at round {round} (shards={shards})"
            );
            let sharded_pin = store.pin().expect("sharded pin");
            let oracle_pin = oracle.pin().expect("oracle pin");
            assert_eq!(
                sharded_pin.epoch(),
                oracle_pin.epoch(),
                "epoch numbers diverged at round {round} (shards={shards})"
            );
            assert_eq!(
                sharded_pin.versions(),
                oracle_pin.versions(),
                "version maps diverged at round {round} (shards={shards})"
            );
            assert_eq!(
                sharded_pin.system().expect("hydrate sharded"),
                oracle_pin.system().expect("hydrate oracle"),
                "hydrated epochs diverged at round {round} (shards={shards})"
            );
        }
        assert_eq!(
            store.mvcc_stats().publishes,
            oracle.mvcc_stats().publishes,
            "publish counts diverged (shards={shards})"
        );
        // The pre-commit pins were isolated from all six commits.
        assert_eq!(pinned_sharded.versions(), pinned_oracle.versions());
        assert_eq!(
            pinned_sharded.system().expect("hydrate sharded pin"),
            pinned_oracle.system().expect("hydrate oracle pin")
        );
        assert_eq!(pinned_sharded.system().expect("hydrate"), w.system);
    }
}

#[test]
fn oracle_and_sharded_store_agree_directly() {
    // Below the engine: raw store reads agree between the oracle and every
    // shard count (the engine-level tests could in principle mask a store
    // bug the cache papers over).
    let w = sharded_workload();
    let oracle = InProcessStore::new(w.system.clone());
    for shards in shard_counts() {
        let store = ShardedStore::builder(w.system.clone())
            .shards(shards)
            .build();
        assert_eq!(
            store.snapshot().expect("snapshot"),
            oracle.snapshot().expect("snapshot")
        );
        assert_eq!(
            store.versions().expect("versions"),
            oracle.versions().expect("versions")
        );
    }
}

//! Experiment E6: Example 4 — transitive data exchange. Peer P imports from
//! Q, and Q imports from C; the combined (global) specification program sees
//! the C → Q → P flow that the direct semantics misses.
//!
//! Run with `cargo run --example transitive_network`.

use datalog::AnswerSets;
use p2p_data_exchange::core::asp::paper::example4_program;
use p2p_data_exchange::core::asp::transitive::transitive_program;
use p2p_data_exchange::{
    vars, Formula, P2PSystem, PeerId, QueryEngine, SolverConfig, Strategy, TrustLevel, Tuple,
};
use relalg::RelationSchema;

fn main() {
    // The paper's literal combined program (rules (4), (5), (7), (8),
    // (10)–(13)).
    let literal = example4_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
        &[Tuple::strs(["c", "b"])],
    );
    let sets = AnswerSets::compute(&literal, SolverConfig::default()).unwrap();
    println!("Example 4 combined program: {} stable models", sets.len());

    // The same scenario expressed as a P2P system and composed automatically.
    let mut system = P2PSystem::new();
    for peer in ["P", "Q", "C"] {
        system.add_peer(peer).unwrap();
    }
    let p = PeerId::new("P");
    let q = PeerId::new("Q");
    let c = PeerId::new("C");
    for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2"), (&c, "U")] {
        system
            .add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
            .unwrap();
    }
    system.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
    system.insert(&q, "S2", Tuple::strs(["c", "e"])).unwrap();
    system.insert(&q, "S2", Tuple::strs(["c", "f"])).unwrap();
    system.insert(&c, "U", Tuple::strs(["c", "b"])).unwrap();
    system
        .add_dec(
            &p,
            &q,
            constraints::builders::mixed_referential("sigma_p_q", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
    system
        .add_dec(
            &q,
            &c,
            constraints::builders::full_inclusion("sigma_q_c", "U", "S1", 2).unwrap(),
        )
        .unwrap();
    system.set_trust(&p, TrustLevel::Less, &q).unwrap();
    system.set_trust(&q, TrustLevel::Less, &c).unwrap();

    let spec = transitive_program(&system, &p).unwrap();
    let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
    let solutions = spec.solution_databases(&system, &sets).unwrap();
    println!(
        "combined annotated program: {} distinct global solutions",
        solutions.len()
    );
    for (i, s) in solutions.iter().enumerate() {
        println!("--- global solution {} ---\n{}", i + 1, s);
    }
    assert_eq!(solutions.len(), 3);

    // Through the engine: the direct strategy misses the C → Q exchange, the
    // transitive strategy sees it — the answers differ.
    let engine = QueryEngine::new(system);
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let fv = vars(&["X", "Y"]);
    let direct = engine.answer_with(Strategy::Asp, &p, &query, &fv).unwrap();
    let global = engine
        .answer_with(Strategy::TransitiveAsp, &p, &query, &fv)
        .unwrap();
    println!(
        "\ndirect semantics: {} certain answer(s); global semantics: {}",
        direct.len(),
        global.len()
    );
    // Directly, S1 is empty so R1(a, b) is unchallenged; globally, U's
    // tuple flows into S1 and one global solution deletes R1(a, b).
    assert!(direct.contains(&Tuple::strs(["a", "b"])));
    assert!(global.is_empty());
}

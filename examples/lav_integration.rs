//! Experiment E4: the appendix LAV program — three-layer specification with
//! annotation constants and the stable version of the choice operator. The
//! engine must produce exactly the four stable models M1–M4 the paper lists.
//!
//! Run with `cargo run --example lav_integration`.

use datalog::AnswerSets;
use p2p_data_exchange::core::asp::paper::appendix_lav_program;
use p2p_data_exchange::{SolverConfig, Tuple};

fn main() {
    let program = appendix_lav_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[Tuple::strs(["c", "b"])],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
    );
    println!("Appendix LAV program:\n{program}");
    let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
    println!("stable models: {}", sets.len());
    for (i, model) in sets.sets.iter().enumerate() {
        let solution: Vec<String> = model
            .iter()
            .filter(|a| a.args.last().map(|x| x.as_ref() == "tss").unwrap_or(false))
            .map(|a| a.to_string())
            .collect();
        println!("M{}: solution = {{{}}}", i + 1, solution.join(", "));
    }
    assert_eq!(sets.len(), 4);
}

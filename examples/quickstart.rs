//! Quickstart: build the paper's Example 1 system and compute peer
//! consistent answers through the [`QueryEngine`] facade, once per strategy.
//!
//! Run with `cargo run --example quickstart`.

use p2p_data_exchange::{example1_system, vars, Formula, PeerId, QueryEngine, Strategy};

fn main() {
    // Example 1 of the paper: peers P1, P2, P3; P1 trusts P2 more than
    // itself and P3 the same; Σ(P1,P2) is a full inclusion R2 ⊆ R1 and
    // Σ(P1,P3) forbids R1 and R3 from disagreeing on a shared key.
    let engine = QueryEngine::builder(example1_system())
        .strategy(Strategy::Auto)
        .build();
    let p1 = PeerId::new("P1");

    // The query of Example 2: all tuples of R1, asked to P1.
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let free_vars = vars(&["X", "Y"]);

    // Strategy::Auto statically detects that P1's DECs fall in the
    // rewritable class of Example 2 and picks the first-order rewriting.
    let auto = engine.answer(&p1, &query, &free_vars).expect("answerable");
    println!(
        "Auto resolved to `{}`; peer consistent answers:",
        auto.stats.strategy.label()
    );
    for t in auto.iter() {
        println!("  R1{t}");
    }

    // The same engine can run every mechanism explicitly — the semantic
    // reference (solution enumeration), the rewriting and the answer-set
    // specification — sharing one cache.
    for strategy in [Strategy::Naive, Strategy::Rewriting, Strategy::Asp] {
        let result = engine
            .answer_with(strategy, &p1, &query, &free_vars)
            .expect("answerable");
        println!(
            "{:<16} {} answers over {} world(s) (prepare {} µs, eval {} µs)",
            result.stats.strategy.label(),
            result.len(),
            result.stats.worlds,
            result.stats.prepare_time().as_micros(),
            result.stats.eval_time().as_micros(),
        );
        assert_eq!(result.tuples, auto.tuples);
    }

    // Repeat queries hit the per-peer cache: preparation cost is gone.
    let warm = engine
        .answer_with(Strategy::Asp, &p1, &query, &free_vars)
        .expect("answerable");
    assert!(warm.stats.cache_hit);
    println!(
        "\nwarm ASP repeat: cache hit, eval {} µs (saved {} µs of preparation)",
        warm.stats.eval_time().as_micros(),
        warm.stats
            .cached_prepare_time()
            .unwrap_or_default()
            .as_micros()
    );
    println!("all strategies agree: (a,b), (c,d), (a,e)");
}

//! Quickstart: build the paper's Example 1 system and compute peer
//! consistent answers with all three mechanisms.
//!
//! Run with `cargo run --example quickstart`.

use datalog::SolverConfig;
use p2p_data_exchange::core::answer::answers_via_asp;
use p2p_data_exchange::core::pca::{peer_consistent_answers, vars};
use p2p_data_exchange::core::rewriting::answers_by_rewriting;
use p2p_data_exchange::core::solution::SolutionOptions;
use p2p_data_exchange::core::PeerId;
use relalg::query::Formula;

fn main() {
    // Example 1 of the paper: peers P1, P2, P3; P1 trusts P2 more than
    // itself and P3 the same; Σ(P1,P2) is a full inclusion R2 ⊆ R1 and
    // Σ(P1,P3) forbids R1 and R3 from disagreeing on a shared key.
    let system = p2p_data_exchange::example1_system();
    let p1 = PeerId::new("P1");

    // The query of Example 2: all tuples of R1, asked to P1.
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let free_vars = vars(&["X", "Y"]);

    // 1. Semantic reference: enumerate the solutions of Definition 4 and
    //    intersect the answers (Definition 5).
    let semantic =
        peer_consistent_answers(&system, &p1, &query, &free_vars, SolutionOptions::default())
            .expect("semantic PCAs");
    println!("solutions for P1: {}", semantic.solution_count);
    println!("peer consistent answers (solution enumeration):");
    for t in &semantic.answers {
        println!("  R1{t}");
    }

    // 2. First-order rewriting (Example 2).
    let rewritten = answers_by_rewriting(&system, &p1, &query, &free_vars).expect("rewriting");
    println!("\nrewritten query: {}", rewritten.rewritten);
    println!("answers via rewriting: {} tuples", rewritten.answers.len());

    // 3. Answer-set specification program + cautious reasoning (Section 3).
    let asp = answers_via_asp(&system, &p1, &query, &free_vars, SolverConfig::default())
        .expect("ASP answers");
    println!(
        "\nanswer sets of the specification program: {} (HCF shift used: {})",
        asp.answer_set_count, asp.used_shift
    );
    println!("answers via ASP: {} tuples", asp.answers.len());

    assert_eq!(semantic.answers, rewritten.answers);
    assert_eq!(semantic.answers, asp.answers);
    println!("\nall three mechanisms agree: (a,b), (c,d), (a,e)");
}

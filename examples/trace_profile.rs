//! Trace a cold and a warm query on the paper's Example 1 system, print the
//! flat phase profile and per-phase percentile summary, and write a Chrome
//! trace-event file (open it in `chrome://tracing` or Perfetto).
//!
//! Run with `cargo run --example trace_profile [-- out.json]`.

use p2p_data_exchange::{
    example1_system, vars, Formula, PeerId, QueryEngine, Strategy, TraceRecorder,
};
use std::sync::Arc;

fn main() {
    let recorder = Arc::new(TraceRecorder::new());
    let engine = QueryEngine::builder(example1_system())
        .strategy(Strategy::Asp)
        .recorder(recorder.clone())
        .build();
    let p1 = PeerId::new("P1");
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let free_vars = vars(&["X", "Y"]);

    // One cold query (relevance → ground → solve → decode → eval) and a few
    // warm repeats that hit the memo cache and only re-evaluate.
    let cold = engine.answer(&p1, &query, &free_vars).expect("answerable");
    println!(
        "cold: {} answers, prepared in {} µs",
        cold.len(),
        cold.stats.prepare_time().as_micros()
    );
    for _ in 0..5 {
        let warm = engine.answer(&p1, &query, &free_vars).expect("answerable");
        assert!(warm.stats.cache_hit);
    }

    // Where did the time go? `total` is inclusive span time, `self`
    // excludes direct children — the same spans EngineStats is built from.
    let trace = recorder.trace();
    println!("\nphase profile (Example 1, 1 cold + 5 warm queries):");
    print!("{}", trace.text_profile());

    // Percentiles come from the recorder's shared histogram registry — the
    // identical machinery behind the B8/B11/B12 bench columns.
    println!("per-phase latency percentiles:");
    println!(
        "{:<24} {:>7} {:>10} {:>10} {:>10}",
        "span", "count", "p50 (µs)", "p95 (µs)", "p99 (µs)"
    );
    for (label, s) in recorder.registry().histograms() {
        if s.count == 0 {
            continue;
        }
        println!(
            "{:<24} {:>7} {:>10.1} {:>10.1} {:>10.1}",
            label,
            s.count,
            s.p50 as f64 / 1e3,
            s.p95 as f64 / 1e3,
            s.p99 as f64 / 1e3
        );
    }

    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_profile.json".to_string());
    std::fs::write(&out, trace.chrome_json()).expect("write trace file");
    println!(
        "\nwrote {} spans to {out} — load it in chrome://tracing or Perfetto",
        trace.span_count()
    );
}

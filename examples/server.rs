//! A multi-threaded serving loop over a live mutation stream — the MVCC
//! snapshot-isolation API end to end.
//!
//! Four server threads share one [`Session`] through cloned
//! [`ReadHandle`]s and answer peer-consistent queries in a closed loop,
//! while the session's single [`Writer`] drains a generated update stream,
//! committing one batch at a time. Readers pin published epochs: they are
//! never blocked by an in-flight commit, and artifacts invalidated by a
//! commit are repaired *on the committing thread*, so the serve loop stays
//! on the warm path throughout. Per-request latency lands in a shared
//! lock-free [`Histogram`]; the example prints the p50/p99 and aggregate
//! QPS the B14 bench table measures, then proves the served answers equal
//! a fresh engine built on the final snapshot.
//!
//! Run with `cargo run --release --example server`.

use p2p_data_exchange::{Formula, Histogram, Query, QueryEngine, Session, Strategy, Update};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use workload::{generate, generate_updates, Topology, TrustMix, UpdateSpec, WorkloadSpec};

/// Server threads (each a cloned `ReadHandle` over the shared session).
const SERVERS: usize = 4;

fn main() {
    // A small star workload: P1 is the hub, every mutation's closure
    // contains it, so the serve loop keeps racing commit-thread repairs.
    let w = generate(&WorkloadSpec {
        peers: 4,
        tuples_per_relation: 6,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Star,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec");
    let stream = generate_updates(
        &w,
        &UpdateSpec {
            batches: 24,
            batch_size: 2,
            ..UpdateSpec::default()
        },
    )
    .expect("valid update spec");

    let session = Session::with_engine(
        QueryEngine::builder(w.system.clone())
            .strategy(Strategy::Asp)
            .build(),
    );
    // Every peer's canonical query — the "requests" the servers rotate over.
    let requests: Vec<Query> = w
        .system
        .peers()
        .map(|p| {
            let relation = p
                .schema
                .relation_names()
                .next()
                .expect("every peer owns a relation");
            Query::named(
                p.id.clone(),
                Formula::atom(relation, vec!["X", "Y"]),
                &["X", "Y"],
            )
        })
        .collect();

    let latency = Histogram::new();
    let served = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let mut writer = session.writer().expect("claim the single writer");

    println!("serving {} peers on {SERVERS} threads…", requests.len());
    let start = Instant::now();
    std::thread::scope(|scope| {
        // The serve loop: closed-loop readers until the stream drains.
        for server in 0..SERVERS {
            let handle = session.reader();
            let (requests, latency, served, done) = (&requests, &latency, &served, &done);
            scope.spawn(move || {
                let mut round = server;
                while !done.load(Ordering::Relaxed) {
                    let request = &requests[round % requests.len()];
                    round += 1;
                    let t0 = Instant::now();
                    let answers = handle.query(request).expect("serve a pinned read");
                    latency.record(t0.elapsed().as_micros() as u64);
                    served.fetch_add(1, Ordering::Relaxed);
                    assert!(answers.stats.worlds >= 1);
                }
            });
        }
        // The mutation stream: the single writer commits batch by batch.
        let done = &done;
        scope.spawn(move || {
            for batch in &stream {
                let receipt = writer
                    .apply(&[Update::new(batch.peer.clone(), batch.delta.clone())])
                    .expect("commit a stream batch");
                // Pace the stream so the servers interleave with commits.
                std::thread::sleep(Duration::from_millis(2));
                drop(receipt);
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    let elapsed = start.elapsed().as_secs_f64();

    let total = served.load(Ordering::Relaxed);
    println!(
        "served {total} requests in {:.0} ms across {} commits",
        elapsed * 1e3,
        session.current_seq()
    );
    println!(
        "reader latency: p50 {} us, p99 {} us — {:.0} requests/s",
        latency.quantile(0.50),
        latency.quantile(0.99),
        total as f64 / elapsed
    );
    println!(
        "engine metrics: {:?}\nmvcc: {:?}",
        session.metrics(),
        session.mvcc_stats()
    );

    // Correctness bar: the live answers equal a fresh engine built on the
    // final snapshot — snapshot isolation changed scheduling, not answers.
    let fresh = QueryEngine::builder(session.current_system().expect("final snapshot"))
        .strategy(Strategy::Asp)
        .build();
    for request in &requests {
        let live = session.query(request).expect("live answer");
        let reference = fresh
            .answer(&request.peer, &request.query, &request.free_vars)
            .expect("fresh answer");
        assert_eq!(
            live.tuples, reference.tuples,
            "diverged at {}",
            request.peer
        );
    }
    println!(
        "all {} peers' answers verified against a fresh engine",
        requests.len()
    );
}

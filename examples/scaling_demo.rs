//! A small scaling demonstration: generate synthetic workloads of growing
//! size and compare the three answering mechanisms (this is the interactive
//! companion of benchmark table B1; run the full harness with
//! `cargo run -p pdes-bench --release --bin harness`).
//!
//! Run with `cargo run --release --example scaling_demo`.

use pdes_bench::runners::{render_table, run_asp, run_naive, run_rewriting};
use workload::{generate, TrustMix, WorkloadSpec};

fn main() {
    let mut rows = Vec::new();
    for &n in &[10usize, 20, 40] {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        };
        let w = generate(&spec);
        let params = format!("tuples={n}");
        rows.extend(run_rewriting(&w, &params));
        rows.extend(run_asp(&w, &params));
        if n <= 20 {
            rows.extend(run_naive(&w, &params));
        }
    }
    println!("{}", render_table("scaling demo (see DESIGN.md B1)", &rows));
}

//! A small scaling demonstration: generate synthetic workloads of growing
//! size and compare the three answering strategies through the engine (this
//! is the interactive companion of benchmark table B1; run the full harness
//! with `cargo run -p pdes-bench --release --bin harness`).
//!
//! Run with `cargo run --release --example scaling_demo`.

use p2p_data_exchange::Strategy;
use pdes_bench::runners::{engine_for, render_table, run_strategy, Measurement};
use std::time::Instant;
use workload::{generate, TrustMix, WorkloadSpec};

fn main() {
    let mut rows = Vec::new();
    for &n in &[10usize, 20, 40] {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        };
        let w = generate(&spec).expect("valid workload spec");
        let params = format!("tuples={n}");
        rows.extend(run_strategy(&w, Strategy::Rewriting, &params));
        rows.extend(run_strategy(&w, Strategy::Asp, &params));
        if n <= 20 {
            rows.extend(run_strategy(&w, Strategy::Naive, &params));
        }

        // The memoization hot path: a warm engine answers repeat queries
        // without re-grounding or re-solving the specification program.
        let engine = engine_for(&w, Strategy::Asp);
        let _ = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .expect("warm-up");
        let start = Instant::now();
        let warm = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .expect("warm repeat");
        assert!(warm.stats.cache_hit);
        rows.push(Measurement {
            mechanism: "asp (warm)",
            params,
            millis: start.elapsed().as_secs_f64() * 1e3,
            answers: warm.len(),
            worlds: warm.stats.worlds,
        });
    }
    println!("{}", render_table("scaling demo (see DESIGN.md B1)", &rows));
}

//! Experiment E1/E2: a detailed walkthrough of Examples 1 and 2 of the paper
//! — the two solutions for peer P1 and the peer consistent answers to
//! Q: R1(x, y), computed through the engine's naive (Definition 5) strategy.
//!
//! Run with `cargo run --example paper_example1`.

use p2p_data_exchange::core::solution::{solutions_for, SolutionOptions};
use p2p_data_exchange::{
    example1_system, vars, Formula, PeerId, Provenance, QueryEngine, Strategy,
};

fn main() {
    let system = example1_system();
    let p1 = PeerId::new("P1");

    println!("Global instance:");
    println!("{}", system.global_instance().unwrap());

    let solutions = solutions_for(&system, &p1, SolutionOptions::default()).unwrap();
    println!("Solutions for P1 (Definition 4): {}", solutions.len());
    for (i, s) in solutions.iter().enumerate() {
        println!("--- solution {} (Δ = {}) ---", i + 1, s.delta);
        println!("{}", s.database);
    }

    let engine = QueryEngine::builder(system)
        .strategy(Strategy::Naive)
        .build();
    let query = Formula::atom("R1", vec!["X", "Y"]);
    let result = engine.answer(&p1, &query, &vars(&["X", "Y"])).unwrap();
    println!("Peer consistent answers to R1(x, y) at P1 (Definition 5):");
    for t in result.iter() {
        println!("  {t}");
    }
    match &result.provenance {
        Provenance::Naive { solution_count, .. } => assert_eq!(*solution_count, 2),
        other => panic!("expected naive provenance, got {other:?}"),
    }
    assert_eq!(result.len(), 3);
}

//! Experiment E1/E2: a detailed walkthrough of Examples 1 and 2 of the paper
//! — the two solutions for peer P1 and the peer consistent answers to
//! Q: R1(x, y).
//!
//! Run with `cargo run --example paper_example1`.

use p2p_data_exchange::core::pca::{peer_consistent_answers, vars};
use p2p_data_exchange::core::solution::{solutions_for, SolutionOptions};
use p2p_data_exchange::core::PeerId;
use relalg::query::Formula;

fn main() {
    let system = p2p_data_exchange::example1_system();
    let p1 = PeerId::new("P1");

    println!("Global instance:");
    println!("{}", system.global_instance().unwrap());

    let solutions = solutions_for(&system, &p1, SolutionOptions::default()).unwrap();
    println!("Solutions for P1 (Definition 4): {}", solutions.len());
    for (i, s) in solutions.iter().enumerate() {
        println!("--- solution {} (Δ = {}) ---", i + 1, s.delta);
        println!("{}", s.database);
    }

    let query = Formula::atom("R1", vec!["X", "Y"]);
    let result =
        peer_consistent_answers(&system, &p1, &query, &vars(&["X", "Y"]), SolutionOptions::default())
            .unwrap();
    println!("Peer consistent answers to R1(x, y) at P1 (Definition 5):");
    for t in &result.answers {
        println!("  {t}");
    }
    assert_eq!(result.answers.len(), 3);
}

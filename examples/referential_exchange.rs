//! Experiment E3: the Section 3.1 scenario — a referential data exchange
//! constraint with an existential witness, specified as a disjunctive choice
//! program whose stable models are the peer's solutions.
//!
//! Run with `cargo run --example referential_exchange`.

use datalog::AnswerSets;
use p2p_data_exchange::core::asp::annotated::annotated_program;
use p2p_data_exchange::core::asp::paper::section31_program;
use p2p_data_exchange::{
    vars, Formula, P2PSystem, PeerId, QueryEngine, SolverConfig, Strategy, StrategyKind,
    TrustLevel, Tuple,
};
use relalg::RelationSchema;

fn main() {
    // Peer P owns R1, R2; peer Q owns S1, S2; (P, less, Q); DEC (3):
    // ∀x y z ∃w (R1(x, y) ∧ S1(z, y) → R2(x, w) ∧ S2(z, w)).
    let mut system = P2PSystem::new();
    system.add_peer("P").unwrap();
    system.add_peer("Q").unwrap();
    let p = PeerId::new("P");
    let q = PeerId::new("Q");
    for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2")] {
        system
            .add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
            .unwrap();
    }
    system.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
    system.insert(&q, "S1", Tuple::strs(["c", "b"])).unwrap();
    system.insert(&q, "S2", Tuple::strs(["c", "e"])).unwrap();
    system.insert(&q, "S2", Tuple::strs(["c", "f"])).unwrap();
    system
        .add_dec(
            &p,
            &q,
            constraints::builders::mixed_referential("sigma3", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
    system.set_trust(&p, TrustLevel::Less, &q).unwrap();

    // The paper's own GAV choice program (rules (4)–(9)).
    let literal = section31_program(
        &[Tuple::strs(["a", "b"])],
        &[],
        &[Tuple::strs(["c", "b"])],
        &[Tuple::strs(["c", "e"]), Tuple::strs(["c", "f"])],
    );
    println!("Section 3.1 program (as printed in the paper):\n{literal}");
    let sets = AnswerSets::compute(&literal, SolverConfig::default()).unwrap();
    println!("stable models: {}\n", sets.len());

    // The general annotated specification generated from the system.
    let spec = annotated_program(&system, &p).unwrap();
    let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
    let solutions = spec.solution_databases(&sets).unwrap();
    println!(
        "annotated specification: {} answer sets, {} distinct solutions",
        sets.len(),
        solutions.len()
    );
    for (i, s) in solutions.iter().enumerate() {
        println!("--- solution {} ---\n{}", i + 1, s);
    }
    assert_eq!(solutions.len(), 3);

    // Referential DECs are outside the rewritable class, so the engine's
    // Auto strategy falls back to the ASP mechanism.
    let engine = QueryEngine::builder(system)
        .strategy(Strategy::Auto)
        .build();
    let query = Formula::atom("R1", vec!["X", "Y"]);
    assert_eq!(
        engine.resolve(Strategy::Auto, &p, &query),
        StrategyKind::Asp
    );
    let answers = engine.answer(&p, &query, &vars(&["X", "Y"])).unwrap();
    println!(
        "\nengine (Auto → {}): {} certain answers over {} answer sets",
        answers.stats.strategy.label(),
        answers.len(),
        answers.stats.worlds
    );
    // One solution deletes R1(a, b), so nothing is certain.
    assert!(answers.is_empty());
}

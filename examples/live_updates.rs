//! Live updates over the paper's Example 1 system: claim the session's
//! single `Writer`, commit changes to a peer's instance through a
//! transaction, and watch the engine invalidate exactly the memoized
//! artifacts whose relevant-peer closure contains the touched peer —
//! queries against unrelated peers stay warm, and artifacts inside the
//! closure are repaired on the committing thread.
//!
//! Run with `cargo run --release --example live_updates`.

use p2p_data_exchange::{Formula, PeerId, Query, QueryEngine, Session, Strategy, Tuple};
use pdes_core::system::example1_system;

fn main() {
    // Example 1: P1 imports from P2 (inclusion DEC, trusted more) and
    // arbitrates with P3 (key-agreement DEC, trusted the same). P3 owns no
    // DECs, so its relevant-peer closure is just {P3}.
    let engine = QueryEngine::builder(example1_system())
        .strategy(Strategy::Asp)
        .build();
    let session = Session::with_engine(engine);
    let p1 = PeerId::new("P1");
    let p2 = PeerId::new("P2");
    let p3 = PeerId::new("P3");
    let q1 = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
    let q3 = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);

    println!("closure of P1: {:?}", session.engine().relevant_peers(&p1));
    println!(
        "closure of P3: {:?}\n",
        session.engine().relevant_peers(&p3)
    );

    // Warm both peers' artifacts — reads take `&self`.
    let a1 = session.query(&q1).expect("query P1");
    let a3 = session.query(&q3).expect("query P3");
    println!("cold P1 answers: {} tuples", a1.len());
    println!("cold P3 answers: {} tuples\n", a3.len());

    // Claim the single writer and commit an update to P2: one insertion,
    // one deletion.
    let mut writer = session.writer().expect("first claim");
    let mut tx = writer.begin();
    tx.insert(&p2, "R2", Tuple::strs(["x", "y"]))
        .expect("stage insert");
    tx.delete(&p2, "R2", &Tuple::strs(["c", "d"]))
        .expect("stage delete");
    let receipt = tx.commit().expect("commit");
    println!(
        "committed seq {} touching {:?}: {} artifact(s) invalidated, closure {:?}",
        receipt.seq, receipt.touched, receipt.invalidated, receipt.affected
    );
    println!("versions after commit: {:?}\n", session.versions());

    // P3 is outside P2's closure: its artifact survived, the query is warm.
    let warm = session.query(&q3).expect("repeat P3");
    println!(
        "P3 repeat query: cache_hit={} ({} tuples, unchanged)",
        warm.stats.cache_hit,
        warm.len()
    );

    // P1 imports from P2: its artifact was repaired on the committing
    // thread, so the repeat query is warm and reflects the commit.
    let after = session.query(&q1).expect("repeat P1");
    println!(
        "P1 repeat query: cache_hit={} ({} tuples; imported (x,y), dropped (c,d))",
        after.stats.cache_hit,
        after.len()
    );
    assert!(warm.stats.cache_hit);
    assert!(after.stats.cache_hit, "repaired on commit, served warm");
    assert!(after.contains(&Tuple::strs(["x", "y"])));

    // The update log replays to any point in time as a pinned snapshot.
    let v0 = session.snapshot_at(0).expect("base snapshot");
    println!(
        "\nsnapshot_at(0) restores the original instance: {}",
        v0.system().expect("hydrate") == example1_system()
    );
    println!(
        "engine metrics: {:?}\nmvcc: {:?}",
        session.metrics(),
        session.mvcc_stats()
    );
}

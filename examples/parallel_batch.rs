//! Batched, parallel query answering: build two independent peer clusters,
//! submit one batch covering both, and let the engine partition it by
//! relevant-peer closure and answer the partitions concurrently.
//!
//! Run with `cargo run --release --example parallel_batch`.

use p2p_data_exchange::core::engine::Query;
use p2p_data_exchange::{
    ExecConfig, Formula, P2PSystem, PeerId, QueryEngine, Strategy, TrustLevel, Tuple,
};
use relalg::RelationSchema;

/// Two disconnected clusters: `Sales` imports from `Warehouse` (inclusion
/// DEC, trusted more), while `Hr` arbitrates with `Payroll` (key agreement,
/// same trust). No DEC crosses the clusters, so their relevant-peer
/// closures are disjoint.
fn two_cluster_system() -> P2PSystem {
    let mut sys = P2PSystem::new();
    for peer in ["Sales", "Warehouse", "Hr", "Payroll"] {
        sys.add_peer(peer).expect("fresh peer");
    }
    let sales = PeerId::new("Sales");
    let warehouse = PeerId::new("Warehouse");
    let hr = PeerId::new("Hr");
    let payroll = PeerId::new("Payroll");

    for (peer, relation) in [
        (&sales, "Orders"),
        (&warehouse, "Stock"),
        (&hr, "Staff"),
        (&payroll, "Salary"),
    ] {
        sys.add_relation(peer, RelationSchema::new(relation, &["k", "v"]))
            .expect("fresh relation");
    }
    // Cluster 1: Stock rows must appear among Orders; Sales trusts
    // Warehouse more, so missing rows are imported.
    sys.insert(&sales, "Orders", Tuple::strs(["o1", "widget"]))
        .expect("insert");
    sys.insert(&warehouse, "Stock", Tuple::strs(["o2", "gadget"]))
        .expect("insert");
    sys.add_dec(
        &sales,
        &warehouse,
        constraints::builders::full_inclusion("orders_cover_stock", "Stock", "Orders", 2)
            .expect("dec"),
    )
    .expect("dec");
    sys.set_trust(&sales, TrustLevel::Less, &warehouse)
        .expect("trust");

    // Cluster 2: Staff and Salary must agree on the key; equal trust, so
    // each conflict forks a world per resolution.
    sys.insert(&hr, "Staff", Tuple::strs(["ann", "lead"]))
        .expect("insert");
    sys.insert(&hr, "Staff", Tuple::strs(["bob", "dev"]))
        .expect("insert");
    sys.insert(&payroll, "Salary", Tuple::strs(["ann", "mgr"]))
        .expect("insert");
    sys.add_dec(
        &hr,
        &payroll,
        constraints::builders::key_agreement("staff_matches_salary", "Staff", "Salary")
            .expect("dec"),
    )
    .expect("dec");
    sys.set_trust(&hr, TrustLevel::Same, &payroll)
        .expect("trust");
    sys
}

fn main() {
    let system = two_cluster_system();
    let engine = QueryEngine::builder(system)
        .strategy(Strategy::Asp)
        .exec(ExecConfig::with_workers(4))
        .build();

    let sales = PeerId::new("Sales");
    let hr = PeerId::new("Hr");
    println!("closure of Sales: {:?}", engine.relevant_peers(&sales));
    println!("closure of Hr:    {:?}\n", engine.relevant_peers(&hr));

    // One batch across both clusters; the engine partitions it into the
    // {Sales, Warehouse} and {Hr, Payroll} closures and answers the two
    // partitions on separate workers. Results come back in submission
    // order regardless of scheduling.
    let batch = vec![
        Query::named(
            "Sales",
            Formula::atom("Orders", vec!["K", "V"]),
            &["K", "V"],
        ),
        Query::named("Hr", Formula::atom("Staff", vec!["K", "V"]), &["K", "V"]),
        Query::named(
            "Sales",
            Formula::exists(vec!["V"], Formula::atom("Orders", vec!["K", "V"])),
            &["K"],
        ),
    ];
    for (i, result) in engine.answer_batch(&batch).into_iter().enumerate() {
        let answers = result.expect("batch query");
        println!(
            "query {i} → {} certain tuple(s) over {} world(s) [{}]:",
            answers.len(),
            answers.stats.worlds,
            answers.stats.strategy.label(),
        );
        for tuple in answers.iter() {
            println!("    {tuple}");
        }
    }

    // The batch is byte-identical to a sequential loop of single answers.
    let sequential = QueryEngine::builder(two_cluster_system())
        .strategy(Strategy::Asp)
        .build();
    for (i, query) in batch.iter().enumerate() {
        let loop_answers = sequential
            .answer(&query.peer, &query.query, &query.free_vars)
            .expect("single query");
        println!(
            "query {i} matches the sequential loop: {}",
            loop_answers.len()
        );
    }
    println!("\ncache metrics: {:?}", engine.metrics());
}

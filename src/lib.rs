//! # p2p-data-exchange
//!
//! Umbrella crate for the reproduction of *Bertossi & Bravo, "Query Answering
//! in Peer-to-Peer Data Exchange Systems" (EDBT 2004 workshops)*. It
//! re-exports the workspace crates so that examples, integration tests and
//! downstream users can depend on a single package:
//!
//! * [`relalg`] — relational substrate (values, instances, first-order
//!   queries, the Δ of Definition 1);
//! * [`constraints`] — integrity and data exchange constraints;
//! * [`repair`] — minimal-change repairs and single-database CQA;
//! * [`datalog`] — the disjunctive answer-set engine (choice operator, HCF
//!   shifting, cautious reasoning);
//! * [`core`] — the paper's contribution: P2P systems, trust,
//!   solutions, peer consistent answers, rewriting and ASP specifications;
//! * [`dsl`] — a textual format for systems and queries;
//! * [`workload`] — synthetic workload and update-stream generation for the
//!   benchmarks;
//! * [`store`] — the peer-sharded serving runtime: the
//!   [`PeerStore`] transport API (re-exported from `core`), plus
//!   [`ShardedStore`] partitioning peers across worker shards by
//!   closure-connected components over an in-process loopback transport;
//! * [`session`] — live, versioned systems: snapshot-isolated `&self`
//!   reads over MVCC epochs (cloneable [`ReadHandle`]s), a single
//!   [`Writer`] handle owning `Tx`/commit updates validated against local
//!   ICs, an update log with snapshot replay, and incremental invalidation
//!   of the engine's memoized artifacts (stale grounded slices are
//!   *patched* on the committing thread by `datalog::incremental` rather
//!   than re-ground);
//! * [`exec`] — the dependency-free scoped thread-pool executor behind the
//!   engine's batched/parallel answering;
//! * [`obs`] — the dependency-free tracing + metrics subsystem: the
//!   [`Recorder`] sink every layer reports spans and counters to, the
//!   [`TraceRecorder`] with Chrome-trace / text-profile / Prometheus
//!   exporters, and the shared fixed-bucket [`Histogram`];
//! * [`analysis`] — static diagnostics over peer specifications
//!   (stable-coded [`Diagnostic`]s, the `Strategy::Auto` explanation, and
//!   the `pdes-lint` CLI).
//!
//! See `README.md` for a tour and `examples/` for runnable scenarios.

pub use constraints;
pub use datalog;
pub use dsl;
pub use pdes_analyze as analysis;
pub use pdes_core as core;
pub use pdes_exec as exec;
pub use pdes_obs as obs;
pub use pdes_session as session;
pub use pdes_store as store;
pub use relalg;
pub use repair;
pub use workload;

// Flat re-exports so a quickstart needs only `use p2p_data_exchange::…`:
// the engine facade, the system vocabulary, query building blocks and the
// solver/repair knobs.
pub use datalog::SolverConfig;
pub use pdes_analyze::{Diagnostic, Report, Severity};
pub use pdes_core::engine::{
    AnsweringStrategy, Answers, EngineStats, Provenance, Query, QueryEngine, QueryEngineBuilder,
    Strategy, StrategyKind,
};
pub use pdes_core::pca::vars;
pub use pdes_core::{
    CacheMetrics, MvccStats, P2PSystem, Peer, PeerId, Snapshot, SolutionOptions, TrustLevel,
    VersionMap,
};
pub use pdes_exec::{ExecConfig, Executor};
pub use pdes_obs::{
    Histogram, HistogramSummary, MetricsRegistry, NullRecorder, Recorder, Span, TraceRecorder,
};
pub use pdes_session::{ReadHandle, Session, Tx, Update, Version, Writer};
pub use pdes_store::{InProcessStore, PeerStore, ShardedStore, StoreMetrics};
pub use relalg::query::Formula;
pub use relalg::Tuple;

/// The canonical Example 1 system of the paper, re-exported for convenience.
pub fn example1_system() -> pdes_core::P2PSystem {
    pdes_core::example1_system()
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_are_usable() {
        let system = super::example1_system();
        assert_eq!(system.peer_count(), 3);
    }
}

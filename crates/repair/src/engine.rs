//! The repair search engine.

use constraints::{Constraint, ConstraintChecker, Violation};
use relalg::database::{Database, GroundAtom};
use relalg::delta::{minimal_deltas, Delta};
use relalg::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A repair: a consistent instance together with its delta from the base
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repair {
    /// The repaired (consistent) instance.
    pub database: Database,
    /// The symmetric difference from the base instance.
    pub delta: Delta,
}

/// Limits that keep the exponential repair search under control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairLimits {
    /// Maximum number of search states to expand before giving up.
    pub max_states: usize,
    /// Maximum number of changes (insertions + deletions) along a branch.
    pub max_changes: usize,
}

impl Default for RepairLimits {
    fn default() -> Self {
        RepairLimits {
            max_states: 200_000,
            max_changes: 10_000,
        }
    }
}

/// Errors raised by the repair engine.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes (e.g. transport-backed repair inputs) are not breaking
/// changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairError {
    /// The search exceeded [`RepairLimits::max_states`].
    SearchSpaceExhausted {
        /// Number of search states explored before giving up.
        states: usize,
    },
    /// Propagated constraint-checking error.
    Constraint(constraints::ConstraintError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::SearchSpaceExhausted { states } => {
                write!(
                    f,
                    "repair search exceeded the state limit ({states} states)"
                )
            }
            RepairError::Constraint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<constraints::ConstraintError> for RepairError {
    fn from(e: constraints::ConstraintError) -> Self {
        RepairError::Constraint(e)
    }
}

/// Outcome of a repair enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// The `⊆`-minimal repairs found. Empty when the instance admits no
    /// repair under the given protections (e.g. a violated constraint whose
    /// every fix would touch a protected relation).
    pub repairs: Vec<Repair>,
    /// Number of search states expanded (for the benchmark harness).
    pub states_explored: usize,
}

impl RepairOutcome {
    /// True when at least one repair exists.
    pub fn is_repairable(&self) -> bool {
        !self.repairs.is_empty()
    }
}

/// Enumerates the `≤_r`-minimal repairs of an instance.
pub struct RepairEngine {
    constraints: Vec<Constraint>,
    protected: BTreeSet<String>,
    limits: RepairLimits,
    extra_domain: Vec<Value>,
}

impl RepairEngine {
    /// Create an engine for a set of constraints with no protected relations.
    pub fn new(constraints: Vec<Constraint>) -> Self {
        RepairEngine {
            constraints,
            protected: BTreeSet::new(),
            limits: RepairLimits::default(),
            extra_domain: Vec::new(),
        }
    }

    /// Mark relations as protected: their tuples can be neither deleted nor
    /// inserted during the repair (the paper's "kept fixed" relations).
    pub fn with_protected<I, S>(mut self, relations: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.protected.extend(relations.into_iter().map(Into::into));
        self
    }

    /// Override the default search limits.
    pub fn with_limits(mut self, limits: RepairLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Extend the active domain used when searching for existential
    /// witnesses (e.g. with the domain of the full multi-peer instance).
    pub fn with_domain(mut self, domain: impl IntoIterator<Item = Value>) -> Self {
        self.extra_domain.extend(domain);
        self
    }

    /// The protected relations.
    pub fn protected(&self) -> &BTreeSet<String> {
        &self.protected
    }

    /// The constraints being enforced.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Is the relation allowed to change?
    fn is_flexible(&self, relation: &str) -> bool {
        !self.protected.contains(relation)
    }

    /// An engine restricted to the constraints *relevant to a query* — those
    /// in the same shared-relation connected component as some query
    /// relation — or `None` when the restriction would not be sound or
    /// would drop nothing.
    ///
    /// Repairs factorize over shared-relation components: a minimal repair
    /// of the full constraint set is a product of independent per-component
    /// minimal repairs, so the query (which only reads its own components'
    /// relations) sees exactly the same per-repair answers, intersected over
    /// fewer repairs. The restriction is only offered when the dropped
    /// constraints touch no protected relation: with every relation
    /// flexible, a dropped component always admits at least one repair
    /// (deleting its violating tuples), so the full system has repairs iff
    /// the restricted one does — a dropped *unrepairable* component, by
    /// contrast, would empty the answer set, which the restriction must not
    /// hide.
    pub fn restrict_to_relevant(&self, query_relations: &BTreeSet<String>) -> Option<RepairEngine> {
        // Connected components over shared relations, grown from the query.
        let mut reachable: BTreeSet<String> = query_relations.clone();
        let mut kept = vec![false; self.constraints.len()];
        loop {
            let mut changed = false;
            for (idx, constraint) in self.constraints.iter().enumerate() {
                if kept[idx] {
                    continue;
                }
                let relations = constraint.relations();
                if relations.iter().any(|rel| reachable.contains(rel)) {
                    kept[idx] = true;
                    reachable.extend(relations);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let dropped: Vec<&Constraint> = self
            .constraints
            .iter()
            .zip(&kept)
            .filter(|(_, &keep)| !keep)
            .map(|(c, _)| c)
            .collect();
        if dropped.is_empty() {
            return None;
        }
        let sound = dropped
            .iter()
            .all(|c| c.relations().iter().all(|rel| self.is_flexible(rel)));
        if !sound {
            return None;
        }
        Some(RepairEngine {
            constraints: self
                .constraints
                .iter()
                .zip(&kept)
                .filter(|(_, &keep)| keep)
                .map(|(c, _)| c.clone())
                .collect(),
            protected: self.protected.clone(),
            limits: self.limits,
            extra_domain: self.extra_domain.clone(),
        })
    }

    /// Enumerate the minimal repairs of `base`.
    pub fn repairs(&self, base: &Database) -> Result<RepairOutcome, RepairError> {
        self.repairs_recorded(base, &pdes_obs::NullRecorder)
    }

    /// [`RepairEngine::repairs`] with the search instrumented on `recorder`:
    /// one `repair.search` span over the whole enumeration, plus the
    /// `repair.states` and `repair.repairs` counters.
    pub fn repairs_recorded(
        &self,
        base: &Database,
        recorder: &dyn pdes_obs::Recorder,
    ) -> Result<RepairOutcome, RepairError> {
        let span = pdes_obs::Span::enter(recorder, "repair.search");
        let outcome = self.repairs_inner(base);
        span.finish();
        if let Ok(outcome) = &outcome {
            recorder.count("repair.states", outcome.states_explored as u64);
            recorder.count("repair.repairs", outcome.repairs.len() as u64);
        }
        outcome
    }

    fn repairs_inner(&self, base: &Database) -> Result<RepairOutcome, RepairError> {
        let mut candidates: Vec<(Database, Delta)> = Vec::new();
        let mut visited: BTreeSet<Vec<GroundAtom>> = BTreeSet::new();
        let mut states = 0usize;
        let mut stack: Vec<(Database, Delta)> = vec![(base.clone(), Delta::empty())];

        while let Some((db, delta)) = stack.pop() {
            let signature: Vec<GroundAtom> = db.ground_atoms().into_iter().collect();
            if !visited.insert(signature) {
                continue;
            }
            states += 1;
            if states > self.limits.max_states {
                return Err(RepairError::SearchSpaceExhausted { states });
            }

            // Prune branches already dominated by a known consistent candidate.
            if candidates
                .iter()
                .any(|(_, cd)| cd.is_subset_of(&delta) && cd != &delta)
            {
                continue;
            }

            let checker = ConstraintChecker::with_domain(&db, self.extra_domain.iter().cloned());
            let violation = self.first_violation(&checker)?;
            match violation {
                None => candidates.push((db, delta)),
                Some((constraint, violation)) => {
                    if delta.len() >= self.limits.max_changes {
                        continue;
                    }
                    for (insertions, deletions) in
                        self.fixes(&checker, constraint, &violation, &delta)?
                    {
                        let next = db
                            .apply_changes(insertions.iter(), deletions.iter())
                            .map_err(|e| {
                                RepairError::Constraint(constraints::ConstraintError::Relalg(e))
                            })?;
                        let next_delta = Delta::between(base, &next);
                        stack.push((next, next_delta));
                    }
                }
            }
        }

        let repairs = minimal_deltas(
            candidates
                .into_iter()
                .map(|(database, delta)| Repair { database, delta })
                .collect(),
            |r| &r.delta,
        );
        Ok(RepairOutcome {
            repairs,
            states_explored: states,
        })
    }

    /// Check whether the instance already satisfies every constraint.
    pub fn is_consistent(&self, db: &Database) -> Result<bool, RepairError> {
        let checker = ConstraintChecker::with_domain(db, self.extra_domain.iter().cloned());
        Ok(self.first_violation(&checker)?.is_none())
    }

    /// First violation in deterministic (constraint declaration, binding)
    /// order, if any.
    fn first_violation<'c>(
        &'c self,
        checker: &ConstraintChecker<'_>,
    ) -> Result<Option<(&'c Constraint, Violation)>, RepairError> {
        for c in &self.constraints {
            let mut violations = checker.violations(c)?;
            if !violations.is_empty() {
                return Ok(Some((c, violations.remove(0))));
            }
        }
        Ok(None)
    }

    /// The candidate fixes of a violation: each fix is a pair
    /// (insertions, deletions) applying exactly one change alternative.
    ///
    /// Fixes never undo changes recorded in `delta` (no re-inserting a
    /// deleted atom, no deleting an inserted atom); this keeps deltas
    /// monotone along a branch, which both guarantees termination and makes
    /// the dominance pruning sound.
    #[allow(clippy::type_complexity)]
    fn fixes(
        &self,
        checker: &ConstraintChecker<'_>,
        constraint: &Constraint,
        violation: &Violation,
        delta: &Delta,
    ) -> Result<Vec<(Vec<GroundAtom>, Vec<GroundAtom>)>, RepairError> {
        let mut out = Vec::new();

        // Alternative 1: delete one flexible body atom.
        for atom in violation.ground_body(constraint) {
            if self.is_flexible(&atom.relation) && !delta.insertions.contains(&atom) {
                out.push((vec![], vec![atom]));
            }
        }

        // Alternative 2: insert the missing flexible head atoms for some witness.
        let options = checker
            .head_insertion_options(constraint, &violation.binding, |r| self.is_flexible(r))?;
        for insertions in options {
            if insertions.iter().any(|atom| delta.deletions.contains(atom)) {
                continue;
            }
            out.push((insertions, vec![]));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use constraints::builders::{full_inclusion, key_agreement, key_denial};
    use relalg::{Relation, RelationSchema, Tuple};

    fn example1_db() -> Database {
        let mut db = Database::new();
        for r in ["R1", "R2", "R3"] {
            db.add_relation(Relation::new(RelationSchema::new(r, &["x", "y"])));
        }
        for (r, a, b) in [
            ("R1", "a", "b"),
            ("R1", "s", "t"),
            ("R2", "c", "d"),
            ("R2", "a", "e"),
            ("R3", "a", "f"),
            ("R3", "s", "u"),
        ] {
            db.insert(r, Tuple::strs([a, b])).unwrap();
        }
        db
    }

    #[test]
    fn consistent_instance_has_single_empty_repair() {
        let db = example1_db();
        let engine = RepairEngine::new(vec![]);
        let outcome = engine.repairs(&db).unwrap();
        assert_eq!(outcome.repairs.len(), 1);
        assert!(outcome.repairs[0].delta.is_empty());
        assert!(engine.is_consistent(&db).unwrap());
    }

    #[test]
    fn inclusion_with_protected_source_forces_insertions() {
        // Stage 1 of Example 1: repair w.r.t. Σ(P1, P2) with R2 and R3 fixed.
        let db = example1_db();
        let engine = RepairEngine::new(vec![full_inclusion("d12", "R2", "R1", 2).unwrap()])
            .with_protected(["R2", "R3"]);
        let outcome = engine.repairs(&db).unwrap();
        assert_eq!(outcome.repairs.len(), 1);
        let repair = &outcome.repairs[0];
        assert!(repair.database.holds("R1", &Tuple::strs(["c", "d"])));
        assert!(repair.database.holds("R1", &Tuple::strs(["a", "e"])));
        assert_eq!(repair.delta.insertions.len(), 2);
        assert!(repair.delta.deletions.is_empty());
    }

    #[test]
    fn inclusion_with_flexible_source_allows_both_directions() {
        // Without protections a violated inclusion can be fixed by inserting
        // into the target or deleting from the source.
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("A", &["x"])));
        db.add_relation(Relation::new(RelationSchema::new("B", &["x"])));
        db.insert("A", Tuple::strs(["v"])).unwrap();
        let engine = RepairEngine::new(vec![full_inclusion("inc", "A", "B", 1).unwrap()]);
        let outcome = engine.repairs(&db).unwrap();
        assert_eq!(outcome.repairs.len(), 2);
        let deltas: Vec<usize> = outcome.repairs.iter().map(|r| r.delta.len()).collect();
        assert_eq!(deltas, vec![1, 1]);
    }

    #[test]
    fn key_agreement_with_protected_side_deletes_other_side() {
        // Σ(P1, P3) alone with R3 protected: must delete the R1 member of
        // each conflicting pair.
        let db = example1_db();
        let engine = RepairEngine::new(vec![key_agreement("d13", "R1", "R3").unwrap()])
            .with_protected(["R3"]);
        let outcome = engine.repairs(&db).unwrap();
        assert_eq!(outcome.repairs.len(), 1);
        let repair = &outcome.repairs[0];
        assert!(!repair.database.holds("R1", &Tuple::strs(["a", "b"])));
        assert!(!repair.database.holds("R1", &Tuple::strs(["s", "t"])));
        assert_eq!(repair.delta.deletions.len(), 2);
    }

    #[test]
    fn key_agreement_without_protection_branches_per_conflict() {
        let db = example1_db();
        let engine = RepairEngine::new(vec![key_agreement("d13", "R1", "R3").unwrap()]);
        let outcome = engine.repairs(&db).unwrap();
        // Two independent conflicts, each resolvable two ways → 4 repairs.
        assert_eq!(outcome.repairs.len(), 4);
        for r in &outcome.repairs {
            assert_eq!(r.delta.len(), 2);
        }
    }

    #[test]
    fn unrepairable_when_every_fix_is_protected() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("A", &["x"])));
        db.add_relation(Relation::new(RelationSchema::new("B", &["x"])));
        db.insert("A", Tuple::strs(["v"])).unwrap();
        let engine = RepairEngine::new(vec![full_inclusion("inc", "A", "B", 1).unwrap()])
            .with_protected(["A", "B"]);
        let outcome = engine.repairs(&db).unwrap();
        assert!(!outcome.is_repairable());
    }

    #[test]
    fn denial_constraints_only_delete() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R", &["x", "y"])));
        db.insert("R", Tuple::strs(["k", "v1"])).unwrap();
        db.insert("R", Tuple::strs(["k", "v2"])).unwrap();
        let engine = RepairEngine::new(vec![key_denial("fd", "R").unwrap()]);
        let outcome = engine.repairs(&db).unwrap();
        assert_eq!(outcome.repairs.len(), 2);
        for r in &outcome.repairs {
            assert!(r.delta.insertions.is_empty());
            assert_eq!(r.delta.deletions.len(), 1);
        }
    }

    #[test]
    fn repairs_satisfy_all_constraints() {
        let db = example1_db();
        let cs = vec![
            full_inclusion("d12", "R2", "R1", 2).unwrap(),
            key_agreement("d13", "R1", "R3").unwrap(),
        ];
        let engine = RepairEngine::new(cs.clone()).with_protected(["R2"]);
        let outcome = engine.repairs(&db).unwrap();
        assert!(outcome.is_repairable());
        for r in &outcome.repairs {
            let checker = ConstraintChecker::new(&r.database);
            assert!(checker.all_satisfied(cs.iter()).unwrap());
            // Protected relation untouched.
            assert_eq!(
                r.database.relation("R2").unwrap().tuples(),
                db.relation("R2").unwrap().tuples()
            );
        }
    }

    #[test]
    fn state_limit_is_enforced() {
        let db = example1_db();
        let engine = RepairEngine::new(vec![key_agreement("d13", "R1", "R3").unwrap()])
            .with_limits(RepairLimits {
                max_states: 1,
                max_changes: 10,
            });
        assert!(matches!(
            engine.repairs(&db),
            Err(RepairError::SearchSpaceExhausted { .. })
        ));
    }
}

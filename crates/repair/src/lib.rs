//! # repair — minimal-change database repairs and consistent query answering
//!
//! Definition 1 of the paper (taken from Arenas, Bertossi & Chomicki, PODS
//! 1999) defines a *repair* of an instance `r` w.r.t. a set of integrity
//! constraints `IC` as a consistent instance `r'` whose symmetric difference
//! `Δ(r, r')` is minimal under set inclusion. *Consistent query answers*
//! (CQA) are the answers returned in every repair.
//!
//! This crate implements both notions:
//!
//! * [`RepairEngine`] enumerates the repairs of an instance w.r.t. a set of
//!   [`constraints::Constraint`]s, with an optional set of **protected**
//!   relations that may not change. Protected relations are what turns plain
//!   repairs into the building block of the paper's peer *solutions*
//!   (Definition 4): when a peer trusts another peer more than itself, the
//!   other peer's relations are protected during the repair.
//! * [`cqa`] computes consistent query answers by intersecting the answers
//!   over all repairs — the baseline that the peer-consistent-answer
//!   machinery in `pdes-core` is benchmarked against.
//!
//! The search is a conflict-driven exploration: pick a violation, branch on
//! its possible fixes (delete a flexible body tuple, or insert the missing
//! head tuples for some witness), never undo a change already made, and
//! filter the consistent leaves down to the `⊆`-minimal deltas.

#![warn(missing_docs)]

pub mod cqa;
pub mod engine;

pub use cqa::{
    consistent_answers, consistent_answers_recorded, consistent_answers_with, ConsistentAnswers,
};
pub use engine::{Repair, RepairEngine, RepairError, RepairLimits, RepairOutcome};

//! Consistent query answering over repairs — the single-database baseline.
//!
//! The per-repair query evaluations are independent of each other (each
//! reads one repaired instance), so [`consistent_answers_with`] fans them
//! out across a [`pdes_exec::Executor`] pool and intersects the per-repair
//! answer sets in repair order — set intersection commutes, so the result is
//! identical to the sequential fold for every pool size.

use crate::engine::{RepairEngine, RepairError, RepairOutcome};
use pdes_exec::Executor;
use relalg::query::{Formula, QueryEvaluator};
use relalg::{ColumnarDatabase, CqPlan, Database, SymbolTable, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Result of a consistent-query-answering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistentAnswers {
    /// Tuples returned by the query in *every* repair.
    pub answers: BTreeSet<Tuple>,
    /// Number of repairs that were enumerated.
    pub repair_count: usize,
    /// Number of search states explored while enumerating repairs.
    pub states_explored: usize,
}

/// Compute the consistent answers of a query: the tuples that are answers in
/// every repair of `db` w.r.t. the engine's constraints.
///
/// When `db` admits no repair (which can only happen when some relations are
/// protected), the answer set is empty: there is no consistent way to read
/// the data.
pub fn consistent_answers(
    engine: &RepairEngine,
    db: &Database,
    query: &Formula,
    free_vars: &[String],
) -> Result<ConsistentAnswers, RepairError> {
    consistent_answers_with(engine, db, query, free_vars, &Executor::sequential())
}

/// [`consistent_answers`], evaluating the query over the enumerated repairs
/// on `exec`'s workers (repair *enumeration* stays sequential — its search
/// shares a dominance-pruning frontier — but the per-repair evaluation is
/// the hot part once repairs multiply).
///
/// Before enumerating, the engine is restricted to the constraints relevant
/// to the query ([`RepairEngine::restrict_to_relevant`]) whenever that is
/// sound: repairs of constraint components the query cannot observe only
/// multiply the repair count without changing the certain answers, so
/// pruning them shrinks the (exponential) enumeration. The reported
/// `repair_count` is accordingly the count over the *relevant* constraint
/// set.
pub fn consistent_answers_with(
    engine: &RepairEngine,
    db: &Database,
    query: &Formula,
    free_vars: &[String],
    exec: &Executor,
) -> Result<ConsistentAnswers, RepairError> {
    consistent_answers_recorded(engine, db, query, free_vars, exec, &pdes_obs::NullRecorder)
}

/// [`consistent_answers_with`] with the repair search and per-repair query
/// evaluation instrumented on `recorder` (`repair.search` and `eval` spans).
pub fn consistent_answers_recorded(
    engine: &RepairEngine,
    db: &Database,
    query: &Formula,
    free_vars: &[String],
    exec: &Executor,
    recorder: &dyn pdes_obs::Recorder,
) -> Result<ConsistentAnswers, RepairError> {
    let query_relations = query.relations();
    let restricted = engine.restrict_to_relevant(&query_relations);
    let engine = restricted.as_ref().unwrap_or(engine);
    let RepairOutcome {
        repairs,
        states_explored,
    } = engine.repairs_recorded(db, recorder)?;
    let eval_span = pdes_obs::Span::enter(recorder, "eval");
    // Interned fast path: conjunctive queries compile to a columnar plan
    // once and evaluate over per-repair `u32` column blocks against one
    // shared symbol table (every repair is a subset of `db` plus
    // constraint-introduced tuples, so the table is built once from the
    // dirty instance and extended only by what a repair actually adds);
    // only the final certain set materializes strings. Plans the compiler
    // rejects (negation, nested quantifiers, …) take the legacy evaluator
    // below — answers are identical either way.
    if let Some(plan) = CqPlan::compile(query, free_vars) {
        let symbols = Arc::new(SymbolTable::new());
        symbols.intern_database(db);
        let intersect =
            |chunk: &[crate::Repair]| -> Result<Option<BTreeSet<Vec<u32>>>, RepairError> {
                let mut acc: Option<BTreeSet<Vec<u32>>> = None;
                for repair in chunk {
                    let columnar = ColumnarDatabase::from_database(&repair.database, &symbols);
                    let these = plan.answers(&columnar).map_err(|e| {
                        RepairError::Constraint(constraints::ConstraintError::Relalg(e))
                    })?;
                    acc = Some(match acc {
                        None => these,
                        Some(previous) => previous.intersection(&these).cloned().collect(),
                    });
                }
                Ok(acc)
            };
        let workers = exec.workers_for(repairs.len());
        let answers = if workers <= 1 {
            intersect(&repairs)?
        } else {
            let chunks: Vec<&[crate::Repair]> =
                repairs.chunks(repairs.len().div_ceil(workers)).collect();
            let per_chunk = exec.try_map(&chunks, |chunk| intersect(chunk))?;
            let mut acc: Option<BTreeSet<Vec<u32>>> = None;
            for partial in per_chunk.into_iter().flatten() {
                acc = Some(match acc {
                    None => partial,
                    Some(previous) => previous.intersection(&partial).cloned().collect(),
                });
            }
            acc
        };
        eval_span.finish();
        return Ok(ConsistentAnswers {
            answers: CqPlan::materialize(&answers.unwrap_or_default(), &symbols),
            repair_count: repairs.len(),
            states_explored,
        });
    }
    // One streamed intersection per chunk of repairs: at most `workers`
    // partial answer sets are live at once (and exactly one on the
    // sequential path), never one per repair.
    let intersect = |chunk: &[crate::Repair]| -> Result<Option<BTreeSet<Tuple>>, RepairError> {
        let mut acc: Option<BTreeSet<Tuple>> = None;
        for repair in chunk {
            let these = QueryEvaluator::new(&repair.database)
                .answers(query, free_vars)
                .map_err(|e| RepairError::Constraint(constraints::ConstraintError::Relalg(e)))?;
            acc = Some(match acc {
                None => these,
                Some(previous) => previous.intersection(&these).cloned().collect(),
            });
        }
        Ok(acc)
    };
    let workers = exec.workers_for(repairs.len());
    let answers = if workers <= 1 {
        intersect(&repairs)?
    } else {
        let chunks: Vec<&[crate::Repair]> =
            repairs.chunks(repairs.len().div_ceil(workers)).collect();
        let per_chunk = exec.try_map(&chunks, |chunk| intersect(chunk))?;
        let mut acc: Option<BTreeSet<Tuple>> = None;
        for partial in per_chunk.into_iter().flatten() {
            acc = Some(match acc {
                None => partial,
                Some(previous) => previous.intersection(&partial).cloned().collect(),
            });
        }
        acc
    };
    eval_span.finish();
    Ok(ConsistentAnswers {
        answers: answers.unwrap_or_default(),
        repair_count: repairs.len(),
        states_explored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use constraints::builders::{full_inclusion, key_denial};
    use relalg::{Relation, RelationSchema};

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Classic CQA example: a key FD violated by two tuples sharing a key.
    /// The consistent answers keep only the tuples outside the conflict.
    #[test]
    fn cqa_under_key_violation() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(
            "Emp",
            &["name", "salary"],
        )));
        db.insert("Emp", Tuple::strs(["ann", "100"])).unwrap();
        db.insert("Emp", Tuple::strs(["ann", "200"])).unwrap();
        db.insert("Emp", Tuple::strs(["bob", "150"])).unwrap();
        let engine = RepairEngine::new(vec![key_denial("key", "Emp").unwrap()]);
        let q = Formula::atom("Emp", vec!["X", "Y"]);
        let out = consistent_answers(&engine, &db, &q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(out.repair_count, 2);
        assert_eq!(out.answers, BTreeSet::from([Tuple::strs(["bob", "150"])]));
    }

    #[test]
    fn cqa_existential_query_survives_conflicts() {
        // ∃y Emp(x, y): "ann" exists in every repair even though her salary
        // is uncertain.
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(
            "Emp",
            &["name", "salary"],
        )));
        db.insert("Emp", Tuple::strs(["ann", "100"])).unwrap();
        db.insert("Emp", Tuple::strs(["ann", "200"])).unwrap();
        let engine = RepairEngine::new(vec![key_denial("key", "Emp").unwrap()]);
        let q = Formula::exists(vec!["Y"], Formula::atom("Emp", vec!["X", "Y"]));
        let out = consistent_answers(&engine, &db, &q, &vars(&["X"])).unwrap();
        assert_eq!(out.answers, BTreeSet::from([Tuple::strs(["ann"])]));
    }

    #[test]
    fn consistent_database_returns_plain_answers() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R", &["x"])));
        db.insert("R", Tuple::strs(["a"])).unwrap();
        let engine = RepairEngine::new(vec![]);
        let q = Formula::atom("R", vec!["X"]);
        let out = consistent_answers(&engine, &db, &q, &vars(&["X"])).unwrap();
        assert_eq!(out.repair_count, 1);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        use pdes_exec::ExecConfig;
        // Two independent key conflicts → 4 repairs to evaluate in parallel.
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(
            "Emp",
            &["name", "salary"],
        )));
        for (n, s) in [
            ("ann", "100"),
            ("ann", "200"),
            ("bob", "150"),
            ("bob", "250"),
            ("eve", "300"),
        ] {
            db.insert("Emp", Tuple::strs([n, s])).unwrap();
        }
        let engine = RepairEngine::new(vec![key_denial("key", "Emp").unwrap()]);
        let q = Formula::atom("Emp", vec!["X", "Y"]);
        let sequential = consistent_answers(&engine, &db, &q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(sequential.repair_count, 4);
        for workers in [2, 4, 8] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            let parallel =
                consistent_answers_with(&engine, &db, &q, &vars(&["X", "Y"]), &exec).unwrap();
            assert_eq!(parallel, sequential, "{workers} workers");
        }
    }

    #[test]
    fn negated_queries_fall_back_to_the_legacy_evaluator() {
        // Negation defeats the columnar plan compiler, so this exercises the
        // legacy per-repair evaluator behind the same entry point — and
        // pins the expected certain answers for both routes: `bob` is the
        // only tuple satisfying Emp(X, Y) ∧ ¬Emp(X, "200") in *every*
        // repair ("ann" fails it in the repair that keeps her 200 salary).
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(
            "Emp",
            &["name", "salary"],
        )));
        db.insert("Emp", Tuple::strs(["ann", "100"])).unwrap();
        db.insert("Emp", Tuple::strs(["ann", "200"])).unwrap();
        db.insert("Emp", Tuple::strs(["bob", "150"])).unwrap();
        let engine = RepairEngine::new(vec![key_denial("key", "Emp").unwrap()]);
        let q = Formula::and(vec![
            Formula::atom("Emp", vec!["X", "Y"]),
            Formula::not(Formula::atom_terms(
                "Emp",
                vec![
                    relalg::query::Term::var("X"),
                    relalg::query::Term::cnst("200"),
                ],
            )),
        ]);
        assert!(relalg::CqPlan::compile(&q, &vars(&["X", "Y"])).is_none());
        let out = consistent_answers(&engine, &db, &q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(out.repair_count, 2);
        assert_eq!(out.answers, BTreeSet::from([Tuple::strs(["bob", "150"])]));
    }

    #[test]
    fn irrelevant_constraint_components_are_pruned() {
        // Key conflicts in Emp and Dept: 2 × 2 = 4 full repairs, but a query
        // on Emp only needs Emp's component — 2 repairs, same answers.
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new(
            "Emp",
            &["name", "salary"],
        )));
        db.add_relation(Relation::new(RelationSchema::new("Dept", &["id", "head"])));
        db.insert("Emp", Tuple::strs(["ann", "100"])).unwrap();
        db.insert("Emp", Tuple::strs(["ann", "200"])).unwrap();
        db.insert("Emp", Tuple::strs(["bob", "150"])).unwrap();
        db.insert("Dept", Tuple::strs(["d1", "x"])).unwrap();
        db.insert("Dept", Tuple::strs(["d1", "y"])).unwrap();
        let engine = RepairEngine::new(vec![
            key_denial("emp_key", "Emp").unwrap(),
            key_denial("dept_key", "Dept").unwrap(),
        ]);
        assert_eq!(engine.repairs(&db).unwrap().repairs.len(), 4);
        let q = Formula::atom("Emp", vec!["X", "Y"]);
        let out = consistent_answers(&engine, &db, &q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(out.repair_count, 2, "only Emp's component is enumerated");
        assert_eq!(out.answers, BTreeSet::from([Tuple::strs(["bob", "150"])]));
    }

    #[test]
    fn protected_relations_block_the_relevance_restriction() {
        // The dropped component would be unrepairable (protected relations):
        // the full system has no repairs, so the query must see none — the
        // restriction is refused and the answers stay empty.
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("A", &["x"])));
        db.add_relation(Relation::new(RelationSchema::new("B", &["x"])));
        db.add_relation(Relation::new(RelationSchema::new("C", &["x"])));
        db.insert("A", Tuple::strs(["v"])).unwrap();
        db.insert("C", Tuple::strs(["w"])).unwrap();
        let engine = RepairEngine::new(vec![full_inclusion("inc", "A", "B", 1).unwrap()])
            .with_protected(["A", "B"]);
        assert!(engine
            .restrict_to_relevant(&BTreeSet::from(["C".to_string()]))
            .is_none());
        let q = Formula::atom("C", vec!["X"]);
        let out = consistent_answers(&engine, &db, &q, &vars(&["X"])).unwrap();
        assert_eq!(out.repair_count, 0);
        assert!(out.answers.is_empty());
    }

    #[test]
    fn no_repairs_means_no_answers() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("A", &["x"])));
        db.add_relation(Relation::new(RelationSchema::new("B", &["x"])));
        db.insert("A", Tuple::strs(["v"])).unwrap();
        let engine = RepairEngine::new(vec![full_inclusion("inc", "A", "B", 1).unwrap()])
            .with_protected(["A", "B"]);
        let q = Formula::atom("A", vec!["X"]);
        let out = consistent_answers(&engine, &db, &q, &vars(&["X"])).unwrap();
        assert_eq!(out.repair_count, 0);
        assert!(out.answers.is_empty());
    }
}

//! Table B12: per-phase span latency percentiles from the engine's
//! observability subsystem.
//!
//! A [`pdes_obs::TraceRecorder`] is installed on a workload engine and a
//! mixed cold/warm/batch query load is replayed; every span the engine emits
//! (`query`, `prepare`, `ground`, `solve`, `eval`, …) lands in the
//! recorder's shared [`pdes_obs::Histogram`] registry — the same log-linear
//! bucket machinery the live tables' p50/p99 columns use — and the table
//! reports per-phase count, p50, p99 and total. Unlike B1–B12, which time
//! whole runs from the outside, B12 decomposes *where* a query's time goes,
//! with percentiles instead of single samples.

use pdes_core::engine::{Query, QueryEngine, Strategy};
use pdes_obs::TraceRecorder;
use std::sync::Arc;
use workload::{generate, TrustMix, WorkloadSpec};

/// One B12 row: the latency distribution of one span label.
#[derive(Debug, Clone)]
pub struct ObsMeasurement {
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Span label (`query`, `prepare`, `solve`, …).
    pub label: String,
    /// Spans recorded under this label.
    pub count: u64,
    /// Median span duration in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile span duration in milliseconds.
    pub p99_ms: f64,
    /// Total time under this label in milliseconds.
    pub total_ms: f64,
}

/// Run the B12 workload at each peer count: one traced engine per point,
/// a cold query, `warm_repeats` warm repeats and one parallel batch, then
/// one row per span label the engine emitted.
pub fn table_b12(peer_counts: &[usize], warm_repeats: usize) -> Vec<ObsMeasurement> {
    let mut rows = Vec::new();
    for &peers in peer_counts {
        let Ok(w) = generate(&WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        }) else {
            continue;
        };
        let recorder = Arc::new(TraceRecorder::new());
        let engine = QueryEngine::builder(w.system.clone())
            .strategy(Strategy::Asp)
            .workers(2)
            .recorder(recorder.clone())
            .build();
        if engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .is_err()
        {
            continue;
        }
        for _ in 0..warm_repeats {
            if engine
                .answer(&w.queried_peer, &w.query, &w.free_vars)
                .is_err()
            {
                continue;
            }
        }
        let batch: Vec<Query> = (0..4)
            .map(|_| Query::new(w.queried_peer.clone(), w.query.clone(), w.free_vars.clone()))
            .collect();
        let _ = engine.answer_batch(&batch);
        let params = format!("peers={peers} warm={warm_repeats}");
        for (label, summary) in recorder.registry().histograms() {
            if summary.count == 0 {
                continue;
            }
            rows.push(ObsMeasurement {
                params: params.clone(),
                label: label.to_string(),
                count: summary.count,
                p50_ms: summary.p50 as f64 / 1e6,
                p99_ms: summary.p99 as f64 / 1e6,
                total_ms: summary.sum as f64 / 1e6,
            });
        }
    }
    rows
}

/// Render B12 as an aligned text table.
pub fn render_obs_table(title: &str, rows: &[ObsMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<26} {:<18} {:>7} {:>10} {:>10} {:>11}\n",
        "parameters", "span", "count", "p50 (ms)", "p99 (ms)", "total (ms)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:<18} {:>7} {:>10.4} {:>10.4} {:>11.3}\n",
            row.params, row.label, row.count, row.p50_ms, row.p99_ms, row.total_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b12_reports_engine_phase_histograms() {
        let rows = table_b12(&[2], 5);
        assert!(!rows.is_empty());
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        for phase in ["query", "prepare", "ground", "solve", "eval"] {
            assert!(labels.contains(&phase), "missing span histogram {phase}");
        }
        // 1 cold + 5 warm + 4 batched queries, every one recorded.
        let query_row = rows.iter().find(|r| r.label == "query").unwrap();
        assert_eq!(query_row.count, 10);
        // The cold query prepared exactly once; warm repeats hit the cache.
        let prepare_row = rows.iter().find(|r| r.label == "prepare").unwrap();
        assert_eq!(prepare_row.count, 1);
        for row in &rows {
            assert!(row.p50_ms <= row.p99_ms, "{}: p50 > p99", row.label);
            assert!(row.total_ms >= 0.0);
        }
        let table = render_obs_table("B12", &rows);
        assert!(table.contains("p99 (ms)"));
        assert!(table.contains("query"));
    }
}

//! Prints the B1–B15 experiment tables (see DESIGN.md and EXPERIMENTS.md),
//! or runs the CI perf-smoke gate.
//!
//! Usage:
//!
//! * `cargo run -p pdes-bench --release --bin harness [--quick]` — the
//!   tables (`--quick` shrinks every sweep);
//! * `cargo run -p pdes-bench --release --bin harness -- --smoke
//!   [--out PATH] [--baseline PATH] [--trace PATH]` — run the small fixed
//!   smoke workload, write the metrics to `BENCH_smoke.json` (or `--out`),
//!   optionally write the traced sub-workload's Chrome trace-event JSON to
//!   `--trace` (open it in `chrome://tracing` / Perfetto), and exit
//!   non-zero if any metric tracked by the committed baseline regressed
//!   more than 2x. `--baseline` defaults to
//!   `crates/bench/baselines/BENCH_smoke.json`.

use pdes_bench::experiments;
use pdes_bench::smoke::{run_smoke_traced, SmokeReport};
use pdes_bench::{
    render_grounding_table, render_incremental_table, render_interned_table, render_live_table,
    render_mvcc_table, render_obs_table, render_parallel_table, render_shard_table, render_table,
};
use std::path::PathBuf;
use std::process::ExitCode;

/// Sweep parameters of the eleven tables.
type Sweeps = (
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        return smoke_gate(&args);
    }
    let quick = args.iter().any(|a| a == "--quick");

    #[rustfmt::skip]
    let (b1_sizes, b2_peers, b3_viol, b4_wit, b5_chain, b6_sizes, b7_sizes, b8_batches, b9_workers, b10_peers, b11_peers): Sweeps =
        if quick {
            (
                vec![10, 20],
                vec![2, 4],
                vec![1, 2],
                vec![2, 4],
                vec![2, 3],
                vec![10, 20],
                vec![10, 20],
                vec![4],
                vec![1, 2],
                vec![2, 4],
                vec![4],
            )
        } else {
            (
                vec![10, 20, 40, 80, 160],
                vec![2, 4, 6, 8],
                vec![1, 2, 4, 6],
                vec![2, 4, 6, 8],
                vec![2, 3, 4, 5],
                vec![10, 20, 40, 80],
                vec![10, 20, 40, 80],
                vec![4, 8, 16],
                vec![1, 2, 4, 8],
                vec![2, 4, 6, 8],
                vec![4, 6, 8],
            )
        };

    println!("Peer-to-peer data exchange — experiment harness");
    println!("(one run per point; see `cargo bench` for statistically repeated timings)");

    print!(
        "{}",
        render_table(
            "B1: PCA latency vs. tuples per relation",
            &experiments::table_b1(&b1_sizes)
        )
    );
    print!(
        "{}",
        render_table(
            "B2: PCA latency vs. number of peers (star)",
            &experiments::table_b2(&b2_peers)
        )
    );
    print!(
        "{}",
        render_table(
            "B3: PCA latency vs. planted violations (key conflicts)",
            &experiments::table_b3(&b3_viol)
        )
    );
    print!(
        "{}",
        render_table(
            "B4: HCF shifting vs. generic disjunctive solving (Section 4.1)",
            &experiments::table_b4(&b4_wit)
        )
    );
    print!(
        "{}",
        render_table(
            "B5: direct vs. transitive answering (chain topology)",
            &experiments::table_b5(&b5_chain)
        )
    );
    print!(
        "{}",
        render_table(
            "B6: P2P answering vs. single-database CQA baseline",
            &experiments::table_b6(&b6_sizes)
        )
    );
    print!(
        "{}",
        render_table(
            "B7: answer-set engine micro-benchmarks (grounding / solving)",
            &experiments::table_b7(&b7_sizes)
        )
    );
    print!(
        "{}",
        render_live_table(
            "B8: query throughput under a mutation stream (cold / flush / incremental)",
            &experiments::table_b8(&b8_batches)
        )
    );
    print!(
        "{}",
        render_parallel_table(
            "B9: batched answering throughput vs. worker count (disjoint closures)",
            &pdes_bench::parallel::table_b9(&b9_workers)
        )
    );
    print!(
        "{}",
        render_grounding_table(
            "B10: full vs. relevance-pruned grounding (star topology)",
            &pdes_bench::grounding::table_b10(&b10_peers)
        )
    );
    print!(
        "{}",
        render_incremental_table(
            "B11: incremental commits (cold / flush / invalidate / patch, star topology)",
            &experiments::table_b11(&b11_peers)
        )
    );
    let (b12_peers, b12_warm) = if quick {
        (vec![2], 20)
    } else {
        (vec![2, 4], 100)
    };
    print!(
        "{}",
        render_obs_table(
            "B12: per-phase span latency percentiles (TraceRecorder histograms)",
            &pdes_bench::obs::table_b12(&b12_peers, b12_warm)
        )
    );
    let b13_closures = if quick { vec![2, 4] } else { vec![2, 4, 8] };
    print!(
        "{}",
        render_shard_table(
            "B13: cross-shard query latency vs. closure size (sharded store)",
            &pdes_bench::sharding::table_b13(&b13_closures, &[1, 2, 4])
        )
    );
    let (b14_readers, b14_window_ms) = if quick {
        (vec![1, 4], 150)
    } else {
        (vec![1, 2, 4, 8], 400)
    };
    print!(
        "{}",
        render_mvcc_table(
            "B14: reader latency/throughput under a sustained writer (MVCC epochs)",
            &pdes_bench::mvcc::table_b14(&b14_readers, b14_window_ms)
        )
    );
    let b15_tuples = if quick { 12 } else { 24 };
    match workload::generate(&workload::WorkloadSpec {
        peers: 2,
        tuples_per_relation: b15_tuples,
        violations_per_dec: 2,
        trust_mix: workload::TrustMix::AllLess,
        ..workload::WorkloadSpec::default()
    }) {
        Ok(w) => print!(
            "{}",
            render_interned_table(
                "B15: interned columnar data plane vs. legacy string path",
                &pdes_bench::interned::table_b15(&w, &format!("peers=2 tuples={b15_tuples}"))
            )
        ),
        Err(e) => eprintln!("B15 workload generation failed: {e}"),
    }
    ExitCode::SUCCESS
}

/// Value of a `--flag PATH` argument, if present.
fn flag_value(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// The `--smoke` mode: run, write the artifact, gate against the baseline.
fn smoke_gate(args: &[String]) -> ExitCode {
    let out = flag_value(args, "--out").unwrap_or_else(|| PathBuf::from("BENCH_smoke.json"));
    let baseline_path = flag_value(args, "--baseline").unwrap_or_else(|| {
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/baselines/BENCH_smoke.json"
        ))
    });

    println!("perf-smoke: running the fixed smoke workload…");
    let (report, trace_json) = match run_smoke_traced() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("perf-smoke: workload failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(trace_out) = flag_value(args, "--trace") {
        if let Err(e) = std::fs::write(&trace_out, &trace_json) {
            eprintln!("perf-smoke: cannot write {}: {e}", trace_out.display());
            return ExitCode::FAILURE;
        }
        println!("perf-smoke: wrote trace {}", trace_out.display());
    }
    for (name, value) in &report.metrics {
        println!("  {name} = {value:.3}");
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("perf-smoke: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("perf-smoke: wrote {}", out.display());

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "perf-smoke: cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match SmokeReport::from_json(&baseline_text) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!(
                "perf-smoke: malformed baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let (lines, pass) = report.compare(&baseline);
    println!(
        "perf-smoke: comparing against {} (fail above {}x):",
        baseline_path.display(),
        pdes_bench::smoke::REGRESSION_FACTOR
    );
    for line in lines {
        println!("  {line}");
    }
    if pass {
        println!("perf-smoke: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf-smoke: FAIL — tracked metric regressed beyond the threshold");
        ExitCode::FAILURE
    }
}

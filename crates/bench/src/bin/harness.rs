//! Prints the B1–B8 experiment tables (see DESIGN.md and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p pdes-bench --release --bin harness [--quick]`

use pdes_bench::experiments;
use pdes_bench::{render_live_table, render_table};

/// Sweep parameters of the eight tables.
type Sweeps = (
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
    Vec<usize>,
);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let (b1_sizes, b2_peers, b3_viol, b4_wit, b5_chain, b6_sizes, b7_sizes, b8_batches): Sweeps =
        if quick {
            (
                vec![10, 20],
                vec![2, 4],
                vec![1, 2],
                vec![2, 4],
                vec![2, 3],
                vec![10, 20],
                vec![10, 20],
                vec![4],
            )
        } else {
            (
                vec![10, 20, 40, 80, 160],
                vec![2, 4, 6, 8],
                vec![1, 2, 4, 6],
                vec![2, 4, 6, 8],
                vec![2, 3, 4, 5],
                vec![10, 20, 40, 80],
                vec![10, 20, 40, 80],
                vec![4, 8, 16],
            )
        };

    println!("Peer-to-peer data exchange — experiment harness");
    println!("(one run per point; see `cargo bench` for statistically repeated timings)");

    print!(
        "{}",
        render_table(
            "B1: PCA latency vs. tuples per relation",
            &experiments::table_b1(&b1_sizes)
        )
    );
    print!(
        "{}",
        render_table(
            "B2: PCA latency vs. number of peers (star)",
            &experiments::table_b2(&b2_peers)
        )
    );
    print!(
        "{}",
        render_table(
            "B3: PCA latency vs. planted violations (key conflicts)",
            &experiments::table_b3(&b3_viol)
        )
    );
    print!(
        "{}",
        render_table(
            "B4: HCF shifting vs. generic disjunctive solving (Section 4.1)",
            &experiments::table_b4(&b4_wit)
        )
    );
    print!(
        "{}",
        render_table(
            "B5: direct vs. transitive answering (chain topology)",
            &experiments::table_b5(&b5_chain)
        )
    );
    print!(
        "{}",
        render_table(
            "B6: P2P answering vs. single-database CQA baseline",
            &experiments::table_b6(&b6_sizes)
        )
    );
    print!(
        "{}",
        render_table(
            "B7: answer-set engine micro-benchmarks (grounding / solving)",
            &experiments::table_b7(&b7_sizes)
        )
    );
    print!(
        "{}",
        render_live_table(
            "B8: query throughput under a mutation stream (cold / flush / incremental)",
            &experiments::table_b8(&b8_batches)
        )
    );
}

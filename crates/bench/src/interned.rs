//! Table B15: the interned, columnar data plane vs. the legacy string path.
//!
//! Both modes answer the *same* generated workload through the same
//! [`QueryEngine`] facade; the only difference is
//! [`QueryEngineBuilder::interned_data_plane`](pdes_core::engine::QueryEngine).
//! On (the default), prepared worlds carry a columnar `u32` index against
//! the store's [`SymbolTable`](relalg::SymbolTable), conjunctive queries run
//! the hash-join / semi-join kernels over ids, and the memo cache budgets
//! the *exact* interned artifact sizes. Off reproduces the pre-interning
//! engine: string tuples re-walked per warm query and element-count byte
//! estimates in the cache.
//!
//! Per mode the table reports the cold preparation time, the warm per-query
//! time (amortized over a fixed repetition count — the hot path the columnar
//! kernels accelerate), the engine's resident cache bytes after warm-up
//! (exact on the interned path, the legacy estimate otherwise) and the
//! symbol count of the store's table. The smoke gate pins
//! `interned_cached_bytes` / `legacy_cached_bytes` exactly and hard-errors
//! when interning stops shrinking the cache; `asp_warm500_ms` (interned, the
//! default) and `legacy_warm500_ms` ride the ordinary 2x timing gate.

use pdes_core::engine::{QueryEngine, Strategy};
use std::time::Instant;
use workload::generator::GeneratedWorkload;

/// Warm repetitions per measured point (amortizes timer noise; matches the
/// smoke gate's `asp_warm500_ms` rep count).
pub const WARM_OPS: usize = 500;

/// One B15 row: one data-plane mode on one workload.
#[derive(Debug, Clone)]
pub struct InternedMeasurement {
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// `"interned"` or `"legacy"`.
    pub mode: &'static str,
    /// Cold preparation + first answer, milliseconds.
    pub cold_ms: f64,
    /// Warm per-query time, microseconds (amortized over [`WARM_OPS`]).
    pub warm_per_op_us: f64,
    /// Engine cache resident bytes after warm-up
    /// ([`QueryEngine::cached_bytes`]): exact interned sizes on the
    /// interned path, the legacy element-count estimate otherwise.
    pub cached_bytes: usize,
    /// Distinct symbols in the store's table after the run.
    pub symbols: usize,
    /// Peer consistent answers (must agree across modes).
    pub answers: usize,
}

/// Run one mode on one workload. Returns `None` if the engine errors (the
/// callers turn that into a skipped row / failed smoke run).
pub fn run_interned_point(
    w: &GeneratedWorkload,
    strategy: Strategy,
    interned: bool,
    params: &str,
) -> Option<InternedMeasurement> {
    let engine = QueryEngine::builder(w.system.clone())
        .strategy(strategy)
        .interned_data_plane(interned)
        .build();
    let start = Instant::now();
    let cold = engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .ok()?;
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let answers = cold.len();
    let start = Instant::now();
    for _ in 0..WARM_OPS {
        let warm = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .ok()?;
        if warm.tuples != cold.tuples {
            return None;
        }
    }
    let warm_per_op_us = start.elapsed().as_secs_f64() * 1e6 / WARM_OPS as f64;
    Some(InternedMeasurement {
        params: params.to_string(),
        mode: if interned { "interned" } else { "legacy" },
        cold_ms,
        warm_per_op_us,
        cached_bytes: engine.cached_bytes(),
        symbols: engine.store().symbols().len(),
        answers,
    })
}

/// Run the B15 pair (interned and legacy) on one workload, hard-failing on
/// answer divergence between the two data planes.
pub fn run_interned_pair(
    w: &GeneratedWorkload,
    strategy: Strategy,
    params: &str,
) -> Result<(InternedMeasurement, InternedMeasurement), String> {
    let interned = run_interned_point(w, strategy, true, params)
        .ok_or_else(|| format!("B15 interned run failed on {params}"))?;
    let legacy = run_interned_point(w, strategy, false, params)
        .ok_or_else(|| format!("B15 legacy run failed on {params}"))?;
    if interned.answers != legacy.answers {
        return Err(format!(
            "interned data plane diverged from the legacy path on {params}: \
             {} vs {} answers",
            interned.answers, legacy.answers
        ));
    }
    Ok((interned, legacy))
}

/// Run the B15 sweep over the four built-in strategies on one workload.
pub fn table_b15(w: &GeneratedWorkload, params: &str) -> Vec<InternedMeasurement> {
    let mut rows = Vec::new();
    for strategy in [
        Strategy::Naive,
        Strategy::Rewriting,
        Strategy::Asp,
        Strategy::TransitiveAsp,
    ] {
        if let Ok((interned, legacy)) =
            run_interned_pair(w, strategy, &format!("{params} strategy={strategy:?}"))
        {
            rows.push(interned);
            rows.push(legacy);
        }
    }
    rows
}

/// Render B15 as an aligned text table.
pub fn render_interned_table(title: &str, rows: &[InternedMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<44} {:>9} {:>10} {:>13} {:>12} {:>9} {:>8}\n",
        "parameters", "mode", "cold (ms)", "warm op (us)", "cache bytes", "symbols", "answers"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<44} {:>9} {:>10.3} {:>13.2} {:>12} {:>9} {:>8}\n",
            row.params,
            row.mode,
            row.cold_ms,
            row.warm_per_op_us,
            row.cached_bytes,
            row.symbols,
            row.answers
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, TrustMix, WorkloadSpec};

    #[test]
    fn b15_interned_cache_is_smaller_and_answers_agree() {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: 12,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        })
        .unwrap();
        let (interned, legacy) = run_interned_pair(&w, Strategy::Asp, "smoke").unwrap();
        assert_eq!(interned.answers, legacy.answers);
        assert!(
            interned.cached_bytes < legacy.cached_bytes,
            "exact interned sizing must come in under the legacy estimate: \
             {} vs {}",
            interned.cached_bytes,
            legacy.cached_bytes
        );
        assert!(interned.symbols > 0);
        let table = render_interned_table("B15", &[interned, legacy]);
        assert!(table.contains("cache bytes"));
        assert!(table.contains("interned"));
        assert!(table.contains("legacy"));
    }
}

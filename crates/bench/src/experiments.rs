//! The experiment definitions (B1–B7 of DESIGN.md): which workloads each
//! table sweeps and which mechanisms run on each point.
//!
//! The paper itself reports no measurements — its evaluation consists of
//! worked examples — so these tables characterize the engineering behaviour
//! of the mechanisms the paper describes: first-order rewriting vs. the
//! answer-set specification vs. naive solution enumeration, the effect of
//! the HCF shifting optimization, the cost of the transitive (global)
//! semantics, and the relation to single-database CQA.

use crate::live::{run_live, LiveMeasurement, LiveMode};
use crate::runners::{
    run_asp, run_cqa_baseline, run_naive, run_rewriting, run_transitive_asp, Measurement,
};
use datalog::graph::is_head_cycle_free;
use datalog::solve::{solve_ground, DisjunctiveSolver, NormalSolver, SolverConfig};
use datalog::{Grounder, Program};
use pdes_core::asp::annotated::annotated_program;
use pdes_core::asp::paper::section31_program;
use relalg::Tuple;
use std::time::Instant;
use workload::{generate, generate_updates, Topology, TrustMix, UpdateSpec, WorkloadSpec};

/// B1 — PCA latency vs. tuples per relation (rewriting vs. ASP vs. naive).
pub fn table_b1(sizes: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &n in sizes {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let params = format!("tuples={n} violations=2 peers=2");
        rows.extend(run_rewriting(&w, &params));
        rows.extend(run_asp(&w, &params));
        if n <= 40 {
            rows.extend(run_naive(&w, &params));
        }
    }
    rows
}

/// B2 — PCA latency vs. number of peers (star topology).
pub fn table_b2(peer_counts: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &peers in peer_counts {
        let spec = WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::Mixed,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let params = format!("peers={peers} tuples=10 violations=1");
        rows.extend(run_asp(&w, &params));
        if peers <= 6 {
            rows.extend(run_naive(&w, &params));
        }
    }
    rows
}

/// B3 — PCA latency and number of solutions vs. planted violations.
pub fn table_b3(violation_counts: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &v in violation_counts {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: 12,
            violations_per_dec: v,
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let params = format!("violations={v} tuples=12 peers=2");
        rows.extend(run_asp(&w, &params));
        if v <= 4 {
            rows.extend(run_naive(&w, &params));
        }
    }
    rows
}

/// B4 — HCF shifting vs. the generic disjunctive solver on the Section 3.1
/// specification program (the optimization of Section 4.1 / Example 3).
pub fn table_b4(witness_counts: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &witnesses in witness_counts {
        // r1 = {(a, b)}, s1 = {(c, b)}, r2 = {}, s2 = {(c, w1) … (c, wk)}.
        let s2: Vec<Tuple> = (0..witnesses)
            .map(|i| Tuple::strs(["c", &format!("w{i}")]))
            .collect();
        let program = section31_program(
            &[Tuple::strs(["a", "b"])],
            &[],
            &[Tuple::strs(["c", "b"])],
            &s2,
        );
        let ground = Grounder::new(&program).ground().expect("groundable");
        assert!(is_head_cycle_free(&ground));
        let params = format!("section31 witnesses={witnesses}");

        let start = Instant::now();
        let shifted = solve_ground(ground.clone(), SolverConfig::default()).expect("solvable");
        rows.push(Measurement {
            mechanism: "hcf-shift",
            params: params.clone(),
            millis: start.elapsed().as_secs_f64() * 1e3,
            answers: 0,
            worlds: shifted.answer_sets.len(),
        });

        let start = Instant::now();
        let generic = DisjunctiveSolver::new(&ground, SolverConfig::default())
            .answer_sets()
            .expect("solvable");
        rows.push(Measurement {
            mechanism: "disjunctive",
            params,
            millis: start.elapsed().as_secs_f64() * 1e3,
            answers: 0,
            worlds: generic.0.len(),
        });
    }
    rows
}

/// B5 — direct vs. transitive answering over chains of peers.
pub fn table_b5(chain_lengths: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &len in chain_lengths {
        let spec = WorkloadSpec {
            peers: len,
            tuples_per_relation: 8,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Chain,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let params = format!("chain={len} tuples=8 violations=1");
        rows.extend(run_asp(&w, &params));
        rows.extend(run_transitive_asp(&w, &params));
    }
    rows
}

/// B6 — peer consistent answering vs. the single-database CQA baseline on
/// the same data and constraints.
pub fn table_b6(sizes: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &n in sizes {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let params = format!("tuples={n} violations=2 peers=2");
        rows.extend(run_asp(&w, &params));
        // The single-database baseline ignores peer boundaries and trust, so
        // *every* tuple of the other peer becomes an inclusion violation and
        // the repair space explodes; keep it to the small sizes (that blow-up
        // is exactly the observation the table records).
        if n <= 10 {
            rows.extend(run_cqa_baseline(&w, &params));
        }
    }
    rows
}

/// B7 — answer-set engine micro-benchmarks on the generated specification
/// programs: grounding time vs. solving time.
pub fn table_b7(sizes: &[usize]) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for &n in sizes {
        let spec = WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let annotated = annotated_program(&w.system, &w.queried_peer).expect("spec");
        let params = format!("spec-program tuples={n}");

        let start = Instant::now();
        let ground = Grounder::new(&annotated.program).ground().expect("ground");
        rows.push(Measurement {
            mechanism: "grounding",
            params: params.clone(),
            millis: start.elapsed().as_secs_f64() * 1e3,
            answers: ground.atom_count(),
            worlds: ground.rule_count(),
        });

        let shifted_ground = ground.clone();
        let start = Instant::now();
        let result = if shifted_ground.is_disjunctive() {
            solve_ground(shifted_ground, SolverConfig::default()).expect("solve")
        } else {
            let (sets, nodes) = NormalSolver::new(&shifted_ground, SolverConfig::default())
                .answer_sets()
                .expect("solve");
            datalog::SolveResult {
                ground: shifted_ground,
                answer_sets: sets,
                branch_nodes: nodes,
                used_shift: false,
            }
        };
        rows.push(Measurement {
            mechanism: "solving",
            params,
            millis: start.elapsed().as_secs_f64() * 1e3,
            answers: result.branch_nodes,
            worlds: result.answer_sets.len(),
        });
    }
    rows
}

/// B8 — sustained query throughput under a mutation stream: fresh engines
/// vs. full cache flushes vs. closure-based incremental invalidation.
pub fn table_b8(stream_lengths: &[usize]) -> Vec<LiveMeasurement> {
    let mut rows = Vec::new();
    for &batches in stream_lengths {
        let spec = WorkloadSpec {
            peers: 4,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let stream = match generate_updates(
            &w,
            &UpdateSpec {
                batches,
                batch_size: 2,
                ..UpdateSpec::default()
            },
        ) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("skipping sweep point (batches={batches}): {e}");
                continue;
            }
        };
        let params = format!("peers=4 batches={batches} rate=2");
        for mode in [LiveMode::Cold, LiveMode::FullFlush, LiveMode::Incremental] {
            rows.extend(run_live(
                &w,
                &stream,
                pdes_core::engine::Strategy::Asp,
                mode,
                4,
                &params,
            ));
        }
    }
    rows
}

/// B11 — incremental commits on the star workload: cold engines vs. full
/// flushes vs. closure-based invalidation (drop + full slice re-ground) vs.
/// the delta-driven incremental patch, with the warm-after-commit
/// re-derivation counters.
pub fn table_b11(peer_counts: &[usize]) -> Vec<LiveMeasurement> {
    let mut rows = Vec::new();
    for &peers in peer_counts {
        let spec = WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let stream = match generate_updates(
            &w,
            &UpdateSpec {
                batches: 8,
                batch_size: 2,
                ..UpdateSpec::default()
            },
        ) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("skipping sweep point (peers={peers}): {e}");
                continue;
            }
        };
        let params = format!("star peers={peers} batches=8 rate=2");
        for mode in [
            LiveMode::Cold,
            LiveMode::FullFlush,
            LiveMode::Invalidate,
            LiveMode::Incremental,
        ] {
            rows.extend(run_live(
                &w,
                &stream,
                pdes_core::engine::Strategy::Asp,
                mode,
                4,
                &params,
            ));
        }
    }
    rows
}

/// A tiny program whose grounding/solving is used as a Criterion
/// micro-benchmark target.
pub fn small_spec_program() -> Program {
    let w = generate(&WorkloadSpec {
        peers: 2,
        tuples_per_relation: 10,
        violations_per_dec: 2,
        trust_mix: TrustMix::AllLess,
        ..WorkloadSpec::default()
    })
    .expect("valid workload spec");
    annotated_program(&w.system, &w.queried_peer)
        .expect("spec")
        .program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b1_rows_cover_all_mechanisms_for_small_sizes() {
        let rows = table_b1(&[6]);
        let mechanisms: Vec<&str> = rows.iter().map(|r| r.mechanism).collect();
        assert!(mechanisms.contains(&"rewriting"));
        assert!(mechanisms.contains(&"asp"));
        assert!(mechanisms.contains(&"naive-solutions"));
        // All mechanisms agree on the answer count.
        let answers: Vec<usize> = rows.iter().map(|r| r.answers).collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn b4_shift_and_disjunctive_agree_on_world_count() {
        let rows = table_b4(&[2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].worlds, rows[1].worlds);
    }

    #[test]
    fn b5_transitive_runs_on_short_chain() {
        let rows = table_b5(&[3]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn b8_covers_all_three_live_modes() {
        let rows = table_b8(&[3]);
        let modes: Vec<LiveMode> = rows.iter().map(|r| r.mode).collect();
        assert!(modes.contains(&LiveMode::Cold));
        assert!(modes.contains(&LiveMode::FullFlush));
        assert!(modes.contains(&LiveMode::Incremental));
        // Every mode answers the same number of queries on the same stream.
        let counts: Vec<usize> = rows.iter().map(|r| r.queries).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn b11_incremental_rederives_strictly_fewer_rules_than_the_full_slice() {
        let rows = table_b11(&[4]);
        assert_eq!(rows.len(), 4);
        let by_mode = |mode: LiveMode| rows.iter().find(|r| r.mode == mode).unwrap();
        let invalidate = by_mode(LiveMode::Invalidate);
        let incremental = by_mode(LiveMode::Incremental);
        assert!(incremental.patched > 0);
        // The acceptance bar: warm-after-commit patches re-derive strictly
        // fewer rules than full slice re-grounding on the star workload.
        assert!(incremental.regrounded_rules < invalidate.regrounded_rules);
        assert!(incremental.slice_rules > 0);
    }

    #[test]
    fn b7_reports_grounding_and_solving() {
        let rows = table_b7(&[6]);
        let mechanisms: Vec<&str> = rows.iter().map(|r| r.mechanism).collect();
        assert_eq!(mechanisms, vec!["grounding", "solving"]);
    }
}

//! # pdes-bench — benchmark harness
//!
//! Reproduction harness for the experiment tables B1–B7 listed in DESIGN.md.
//! The paper contains no measurements of its own (it is a semantics paper),
//! so these experiments characterize the behaviour of the mechanisms it
//! defines: query rewriting vs. the answer-set specification vs. naive
//! solution enumeration, the head-cycle-free shifting optimization, the
//! transitive (global) semantics and the single-database CQA baseline.
//!
//! * `cargo run -p pdes-bench --release --bin harness` prints every table;
//! * `cargo bench` runs the Criterion micro-benchmarks (one per table).
//!
//! Table B8 ([`live`]) measures sustained query throughput under a mutation
//! stream: cold engines vs. full cache flushes vs. the engine's incremental
//! closure-based invalidation.
//!
//! Table B11 ([`live`], [`experiments::table_b11`]) extends B8 with the
//! delta-driven incremental re-grounding comparison: closure-based
//! invalidation (drop + full slice re-ground) vs. patching stale artifacts
//! ([`datalog::incremental`]), with the warm-after-commit re-derived-rule
//! counters the smoke gate tracks exactly.
//!
//! Table B9 ([`parallel`]) measures batched answering over closure-disjoint
//! clusters at increasing worker counts, and [`smoke`] packages a small
//! fixed workload into the `BENCH_smoke.json` artifact behind the CI
//! perf-smoke gate (`cargo run --release -p pdes-bench --bin harness --
//! --smoke`).
//!
//! Table B10 ([`grounding`]) compares the legacy full grounding against the
//! relevance-pruned grounding ([`datalog::relevance`]) on star workloads of
//! increasing peer count; the smoke gate additionally tracks exact
//! grounded-rule/atom counters so grounding blow-ups fail CI
//! deterministically.
//!
//! Table B12 ([`obs`]) decomposes query latency per engine phase: a
//! [`pdes_obs::TraceRecorder`] on the workload engine feeds every span into
//! the shared histogram registry, and the table reports per-label count /
//! p50 / p99 — the same machinery behind the B8/B11 percentile columns and
//! the smoke gate's exact `trace_span_count` / `trace_event_count`
//! counters.
//!
//! Table B13 ([`sharding`]) measures the peer-sharded serving runtime:
//! closure-fetch, full-snapshot and end-to-end cold-query latency against a
//! [`pdes_store::ShardedStore`] over disjoint DEC chains, at shard counts
//! 1/2/4, with the store's `local`/`remote` traffic split alongside; the
//! smoke gate pins exact `shard_local_queries` / `shard_remote_queries`
//! counts and hard-errors if the sharded answers diverge from the
//! single-store oracle.
//!
//! Table B15 ([`interned`]) compares the interned, columnar data plane
//! against the legacy string path on the same workload: cold preparation,
//! warm per-query time, resident cache bytes (exact interned sizes vs. the
//! element-count estimate) and symbol counts, per strategy; the smoke gate
//! pins `interned_cached_bytes` / `legacy_cached_bytes` exactly and
//! hard-errors when interning stops shrinking the cache.
//!
//! Table B14 ([`mvcc`]) measures reader latency and throughput under a
//! sustained writer: a closed loop of reader threads over cloned
//! `ReadHandle`s, the single `Writer` committing back to back, p50/p99
//! reader latency and aggregate queries/second alongside the store's
//! epoch-publish and snapshot-pin counters; the smoke gate tracks
//! `reader_qps_under_writes` (gated *downward* — losing half the
//! throughput under writes fails CI) plus exact `mvcc_epochs_published` /
//! `snapshot_pins` counts.

pub mod experiments;
pub mod grounding;
pub mod interned;
pub mod live;
pub mod mvcc;
pub mod obs;
pub mod parallel;
pub mod runners;
pub mod sharding;
pub mod smoke;

pub use grounding::{render_grounding_table, GroundingMeasurement};
pub use interned::{render_interned_table, InternedMeasurement};
pub use live::{render_incremental_table, render_live_table, LiveMeasurement, LiveMode};
pub use mvcc::{render_mvcc_table, MvccMeasurement};
pub use obs::{render_obs_table, ObsMeasurement};
pub use parallel::{render_parallel_table, ParallelMeasurement};
pub use runners::{render_table, Measurement};
pub use sharding::{render_shard_table, ShardMeasurement};
pub use smoke::{run_smoke, run_smoke_traced, SmokeReport};

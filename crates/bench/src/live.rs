//! Live-update runners: sustained query throughput under a mutation stream.
//!
//! Each run replays a deterministic [`UpdateBatch`] stream against a
//! workload's system and interleaves queries between commits. Four cache
//! regimes are compared:
//!
//! * [`LiveMode::Cold`] — a fresh engine is built after every commit
//!   (no memoization survives anything; the floor);
//! * [`LiveMode::FullFlush`] — one engine, but the whole cache is flushed
//!   on every commit (memoization without an invalidation story — what the
//!   engine had before the live-update subsystem);
//! * [`LiveMode::Invalidate`] — one session with closure-based
//!   invalidation and incremental re-grounding *disabled*: a commit drops
//!   the artifacts whose relevant-peer closure intersects the touched
//!   peers, and the next query re-grounds the slice from scratch (what the
//!   engine had before the incremental subsystem);
//! * [`LiveMode::Incremental`] — one session with closure-based staling
//!   and delta-driven incremental re-grounding: a commit *stales* the
//!   affected artifacts, keeping their saturation state, and the next
//!   query patches only the rules the delta touched
//!   ([`datalog::incremental`] — the point of the subsystem).
//!
//! Between commits, every peer is queried round-robin with its canonical
//! `T<i>(X, Y)` query, so the measurement mixes queries inside and outside
//! the mutated peers' closures. The B11 table additionally reports the
//! *re-derived rule* counters: how many ground rules the warm-after-commit
//! preparations actually re-instantiated, versus the full slice size.

use pdes_core::engine::{Query, QueryEngine, Strategy};
use pdes_core::pca::vars;
use pdes_obs::Histogram;
use pdes_session::{Session, Update};
use relalg::query::Formula;
use std::time::Instant;
use workload::generator::GeneratedWorkload;
use workload::UpdateBatch;

/// Cache regime of a live run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMode {
    /// Fresh engine after every commit.
    Cold,
    /// One engine, full cache flush on every commit.
    FullFlush,
    /// One session, closure-based invalidation, incremental re-grounding
    /// disabled (stale slices re-ground from scratch).
    Invalidate,
    /// One session, closure-based staling plus delta-driven incremental
    /// re-grounding (stale slices are patched).
    Incremental,
}

impl LiveMode {
    /// Stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            LiveMode::Cold => "live-cold",
            LiveMode::FullFlush => "live-full-flush",
            LiveMode::Invalidate => "live-invalidate",
            LiveMode::Incremental => "live-incremental",
        }
    }
}

/// One measured live run.
#[derive(Debug, Clone)]
pub struct LiveMeasurement {
    /// The cache regime.
    pub mode: LiveMode,
    /// Workload/stream parameters, rendered for the table.
    pub params: String,
    /// Commits replayed.
    pub commits: usize,
    /// Queries answered.
    pub queries: usize,
    /// Queries served from warm cache entries.
    pub cache_hits: usize,
    /// Stale artifacts repaired by the incremental patch instead of a full
    /// re-ground (engine lifetime counter; 0 outside incremental mode).
    pub patched: u64,
    /// Ground rules re-derived across every preparation that ran (full
    /// re-grounds count their whole slice; incremental patches only the
    /// rules the delta touched).
    pub regrounded_rules: usize,
    /// The largest single-preparation slice size seen (ground rules) — the
    /// per-preparation cost ceiling the incremental patch is compared
    /// against.
    pub slice_rules: usize,
    /// Total wall-clock time in milliseconds.
    pub millis: f64,
    /// Sustained throughput over the whole run.
    pub queries_per_sec: f64,
    /// Median per-query latency in milliseconds (shared
    /// [`pdes_obs::Histogram`] machinery — the same log-linear buckets the
    /// engine's trace histograms use).
    pub p50_ms: f64,
    /// 99th-percentile per-query latency in milliseconds.
    pub p99_ms: f64,
    /// Preparation milliseconds the warm (cache-hit) queries *saved* — the
    /// sum of [`pdes_core::engine::EngineStats::cached_prepare_time`] over
    /// every hit.
    pub warm_saved_ms: f64,
}

/// The per-peer canonical queries `T<i>(X, Y)` of a generated workload. The
/// relation name comes from each peer's own schema (peer ids sort
/// lexicographically, so an enumeration index would mispair peers and
/// relations beyond 10 peers).
pub(crate) fn peer_queries(w: &GeneratedWorkload) -> Vec<Query> {
    let fv = vars(&["X", "Y"]);
    w.system
        .peers()
        .map(|p| {
            let relation = p
                .schema
                .relation_names()
                .next()
                .expect("generated peers own one relation");
            Query::new(
                p.id.clone(),
                Formula::atom(relation, vec!["X", "Y"]),
                fv.clone(),
            )
        })
        .collect()
}

/// Replay `stream` against the workload under the given mode and strategy,
/// answering `queries_per_commit` round-robin peer queries after every
/// commit. Returns `None` when a query or commit fails (e.g. a strategy
/// that does not support the workload's DEC class).
pub fn run_live(
    w: &GeneratedWorkload,
    stream: &[UpdateBatch],
    strategy: Strategy,
    mode: LiveMode,
    queries_per_commit: usize,
    params: &str,
) -> Option<LiveMeasurement> {
    let queries = peer_queries(w);
    let build = |system| {
        QueryEngine::builder(system)
            .strategy(strategy)
            // `Invalidate` is the drop-and-re-ground regime the engine had
            // before the incremental subsystem.
            .incremental_reground(mode == LiveMode::Incremental)
            .build()
    };
    let mut session = Session::with_engine(build(w.system.clone()));
    let mut commits = 0usize;
    let mut answered = 0usize;
    let mut cache_hits = 0usize;
    let mut regrounded_rules = 0usize;
    let mut slice_rules = 0usize;
    let mut round_robin = 0usize;
    let mut warm_saved = std::time::Duration::ZERO;
    let latency = Histogram::new();

    let start = Instant::now();
    for batch in stream {
        match mode {
            LiveMode::Cold => {
                // Mutate the system, then throw the whole engine away.
                let mut system = session.current_system().ok()?;
                system.apply_delta(&batch.peer, &batch.delta).ok()?;
                session = Session::with_engine(build(system));
            }
            LiveMode::FullFlush => {
                let _ = session
                    .writer()
                    .ok()?
                    .apply(&[Update::new(batch.peer.clone(), batch.delta.clone())])
                    .ok()?;
                let _ = session.engine().flush_cache();
            }
            LiveMode::Invalidate | LiveMode::Incremental => {
                let _ = session
                    .writer()
                    .ok()?
                    .apply(&[Update::new(batch.peer.clone(), batch.delta.clone())])
                    .ok()?;
            }
        }
        commits += 1;
        for _ in 0..queries_per_commit {
            let query = &queries[round_robin % queries.len()];
            round_robin += 1;
            let query_start = Instant::now();
            let answers = session.query(query).ok()?;
            latency.record(pdes_obs::duration_nanos(query_start.elapsed()));
            answered += 1;
            if answers.stats.cache_hit {
                cache_hits += 1;
                warm_saved += answers.stats.cached_prepare_time().unwrap_or_default();
            } else {
                regrounded_rules += answers.stats.regrounded_rules;
                slice_rules = slice_rules.max(answers.stats.grounded_rules);
            }
        }
    }
    let millis = start.elapsed().as_secs_f64() * 1e3;
    Some(LiveMeasurement {
        mode,
        params: params.to_string(),
        commits,
        queries: answered,
        cache_hits,
        patched: session.metrics().patched,
        regrounded_rules,
        slice_rules,
        millis,
        queries_per_sec: if millis > 0.0 {
            answered as f64 / (millis / 1e3)
        } else {
            f64::INFINITY
        },
        p50_ms: latency.quantile(0.50) as f64 / 1e6,
        p99_ms: latency.quantile(0.99) as f64 / 1e6,
        warm_saved_ms: warm_saved.as_secs_f64() * 1e3,
    })
}

/// Render the incremental-commit comparison (B11): the four cache regimes
/// with their warm-after-commit re-derivation counters.
pub fn render_incremental_table(title: &str, rows: &[LiveMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<30} {:<18} {:>7} {:>6} {:>7} {:>10} {:>9} {:>11} {:>11} {:>9} {:>9}\n",
        "parameters",
        "mode",
        "commits",
        "warm",
        "patched",
        "rederived",
        "slice",
        "time (ms)",
        "queries/s",
        "p50 (ms)",
        "p99 (ms)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<30} {:<18} {:>7} {:>6} {:>7} {:>10} {:>9} {:>11.3} {:>11.1} {:>9.3} {:>9.3}\n",
            row.params,
            row.mode.label(),
            row.commits,
            row.cache_hits,
            row.patched,
            row.regrounded_rules,
            row.slice_rules,
            row.millis,
            row.queries_per_sec,
            row.p50_ms,
            row.p99_ms
        ));
    }
    out
}

/// Render live measurements as an aligned text table.
pub fn render_live_table(title: &str, rows: &[LiveMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<34} {:<18} {:>8} {:>8} {:>6} {:>12} {:>12} {:>9} {:>9} {:>11}\n",
        "parameters",
        "mode",
        "commits",
        "queries",
        "warm",
        "time (ms)",
        "queries/s",
        "p50 (ms)",
        "p99 (ms)",
        "saved (ms)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<34} {:<18} {:>8} {:>8} {:>6} {:>12.3} {:>12.1} {:>9.3} {:>9.3} {:>11.3}\n",
            row.params,
            row.mode.label(),
            row.commits,
            row.queries,
            row.cache_hits,
            row.millis,
            row.queries_per_sec,
            row.p50_ms,
            row.p99_ms,
            row.warm_saved_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, generate_updates, TrustMix, UpdateSpec, WorkloadSpec};

    fn tiny() -> (GeneratedWorkload, Vec<UpdateBatch>) {
        let w = generate(&WorkloadSpec {
            peers: 3,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::tiny()
        })
        .unwrap();
        let stream = generate_updates(
            &w,
            &UpdateSpec {
                batches: 4,
                batch_size: 1,
                ..UpdateSpec::default()
            },
        )
        .unwrap();
        (w, stream)
    }

    #[test]
    fn all_four_modes_answer_the_same_stream() {
        let (w, stream) = tiny();
        let mut counts = Vec::new();
        for mode in [
            LiveMode::Cold,
            LiveMode::FullFlush,
            LiveMode::Invalidate,
            LiveMode::Incremental,
        ] {
            let m = run_live(&w, &stream, Strategy::Asp, mode, 3, "tiny").unwrap();
            assert_eq!(m.commits, stream.len());
            assert_eq!(m.queries, stream.len() * 3);
            counts.push(m.queries);
        }
        assert!(counts.windows(2).all(|c| c[0] == c[1]));
    }

    #[test]
    fn incremental_mode_keeps_more_queries_warm() {
        let (w, stream) = tiny();
        let cold = run_live(&w, &stream, Strategy::Asp, LiveMode::Cold, 3, "t").unwrap();
        let flush = run_live(&w, &stream, Strategy::Asp, LiveMode::FullFlush, 3, "t").unwrap();
        let incr = run_live(&w, &stream, Strategy::Asp, LiveMode::Incremental, 3, "t").unwrap();
        // Closure-based invalidation keeps strictly more entries warm than
        // flushing everything; a cold engine never hits at all across
        // commits (hits within one inter-commit window are possible).
        assert!(incr.cache_hits > flush.cache_hits);
        assert!(incr.cache_hits > cold.cache_hits);
    }

    #[test]
    fn incremental_mode_rederives_fewer_rules_than_invalidate() {
        let (w, stream) = tiny();
        let inval = run_live(&w, &stream, Strategy::Asp, LiveMode::Invalidate, 3, "t").unwrap();
        let incr = run_live(&w, &stream, Strategy::Asp, LiveMode::Incremental, 3, "t").unwrap();
        // Same stream, same answers; the patch re-derives strictly fewer
        // ground rules than dropping and re-grounding the slices.
        assert_eq!(inval.queries, incr.queries);
        assert_eq!(inval.patched, 0);
        assert!(incr.patched > 0, "stale artifacts must be patched");
        assert!(
            incr.regrounded_rules < inval.regrounded_rules,
            "incremental {} !< invalidate {}",
            incr.regrounded_rules,
            inval.regrounded_rules
        );
    }

    #[test]
    fn live_tables_render_rows() {
        let (w, stream) = tiny();
        let m = run_live(&w, &stream, Strategy::Asp, LiveMode::Incremental, 2, "t").unwrap();
        let table = render_live_table("B8", std::slice::from_ref(&m));
        assert!(table.contains("live-incremental"));
        assert!(table.contains("queries/s"));
        assert!(table.contains("p50 (ms)"));
        assert!(table.contains("saved (ms)"));
        let b11 = render_incremental_table("B11", &[m]);
        assert!(b11.contains("rederived"));
        assert!(b11.contains("slice"));
        assert!(b11.contains("p99 (ms)"));
    }
}

//! The CI perf-smoke gate: a small fixed workload, a flat JSON metrics
//! report (`BENCH_smoke.json`), and a >2x-regression comparison against the
//! committed baseline in `crates/bench/baselines/`.
//!
//! The report format is deliberately tiny — a flat `"name": number` map —
//! written and parsed by hand (the workspace's vendored `serde` is a no-op
//! stub), so the gate has zero dependencies and the artifact stays
//! greppable:
//!
//! ```json
//! {
//!   "schema": "pdes-bench-smoke/v1",
//!   "metrics": {
//!     "batch_asp_w1_ms": 12.345,
//!     "batch_asp_w4_ms": 5.678
//!   }
//! }
//! ```
//!
//! Metrics come in three kinds, distinguished by name: `*_ms` metrics are
//! wall-clock timings (lower is better; the gate fails when one exceeds
//! twice its baseline), metrics with `_qps` in the name are throughputs
//! (higher is better; the gate fails when one drops below half its
//! baseline), every other
//! metric is a *count* (answers, worlds) and must match the baseline
//! **exactly** — an output-count drift in
//! either direction is a behaviour change, not a perf result. Metrics added
//! since the baseline was recorded pass with a note (commit a refreshed
//! baseline alongside the change that adds them). Timings are sized to tens
//! of milliseconds so scheduler jitter on shared CI runners stays well
//! inside the 2x margin.

use crate::live::{run_live, LiveMode};
use crate::parallel::{cluster_batch, cluster_system, run_batch};
use pdes_core::engine::Strategy;
use pdes_obs::{NullRecorder, TraceRecorder};
use std::sync::Arc;
use std::time::Instant;
use workload::{generate, generate_updates, Topology, TrustMix, UpdateSpec, WorkloadSpec};

/// Allowed slow-down before the gate fails (the "regresses >2x" rule).
pub const REGRESSION_FACTOR: f64 = 2.0;

/// The flat metrics report of one smoke run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SmokeReport {
    /// `(metric name, value)` pairs, in a stable order. All lower-is-better.
    pub metrics: Vec<(String, f64)>,
}

impl SmokeReport {
    /// Look a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Render the report as the `BENCH_smoke.json` artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"pdes-bench-smoke/v1\",\n  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {value:.3}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a report previously written by [`SmokeReport::to_json`] (or
    /// hand-edited to the same flat shape). Only the `"metrics"` object is
    /// read; unknown surrounding keys are ignored.
    pub fn from_json(text: &str) -> Result<SmokeReport, String> {
        let metrics_at = text
            .find("\"metrics\"")
            .ok_or_else(|| "no \"metrics\" object in baseline".to_string())?;
        let body = &text[metrics_at..];
        let open = body
            .find('{')
            .ok_or_else(|| "malformed \"metrics\" object".to_string())?;
        let close = body[open..]
            .find('}')
            .ok_or_else(|| "unterminated \"metrics\" object".to_string())?;
        let inner = &body[open + 1..open + close];
        let mut metrics = Vec::new();
        for entry in inner.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (raw_name, raw_value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed metric entry `{entry}`"))?;
            let name = raw_name.trim().trim_matches('"').to_string();
            let value: f64 = raw_value
                .trim()
                .parse()
                .map_err(|e| format!("metric `{name}`: {e}"))?;
            metrics.push((name, value));
        }
        Ok(SmokeReport { metrics })
    }

    /// Compare this run against a baseline. Timing metrics (`*_ms`) must
    /// stay under `baseline * REGRESSION_FACTOR` (with a small absolute
    /// floor so a rounded-to-zero baseline cannot fail every future run);
    /// throughput metrics (`_qps` in the name, higher is better) must stay *above*
    /// `baseline / REGRESSION_FACTOR`; every other metric is a *count* and
    /// must match the baseline exactly — fewer answers than the baseline is
    /// a correctness bug, not a perf win. Returns the human-readable
    /// verdict lines and whether the gate passes.
    pub fn compare(&self, baseline: &SmokeReport) -> (Vec<String>, bool) {
        /// Timing floor in milliseconds: baselines below it compare as if
        /// they were this large, so sub-rounding measurements never brick
        /// the gate.
        const FLOOR_MS: f64 = 0.01;
        let mut lines = Vec::new();
        let mut pass = true;
        for (name, base) in &baseline.metrics {
            match self.get(name) {
                None => {
                    pass = false;
                    lines.push(format!("FAIL {name}: tracked in baseline but not reported"));
                }
                Some(current) if name.ends_with("_ms") => {
                    let allowed = base.max(FLOOR_MS) * REGRESSION_FACTOR;
                    if current > allowed {
                        pass = false;
                        lines.push(format!(
                            "FAIL {name}: {current:.3} > {REGRESSION_FACTOR}x baseline {base:.3}"
                        ));
                    } else {
                        lines.push(format!("ok   {name}: {current:.3} (baseline {base:.3})"));
                    }
                }
                Some(current) if name.contains("_qps") => {
                    // Throughput: gate the *downward* direction only — a
                    // faster run is a win, losing more than half the
                    // baseline throughput is a concurrency regression.
                    let required = base / REGRESSION_FACTOR;
                    if current < required {
                        pass = false;
                        lines.push(format!(
                            "FAIL {name}: {current:.3} < baseline {base:.3} / {REGRESSION_FACTOR}"
                        ));
                    } else {
                        lines.push(format!("ok   {name}: {current:.3} (baseline {base:.3})"));
                    }
                }
                Some(current) => {
                    // Count metric: any drift (up or down) is a behaviour
                    // change that needs investigation + a refreshed baseline.
                    if current == *base {
                        lines.push(format!("ok   {name}: {current:.3} (exact)"));
                    } else {
                        pass = false;
                        lines.push(format!(
                            "FAIL {name}: count changed, {current:.3} != baseline {base:.3}"
                        ));
                    }
                }
            }
        }
        for (name, value) in &self.metrics {
            if baseline.get(name).is_none() {
                lines.push(format!(
                    "note {name}: {value:.3} (untracked — refresh the baseline)"
                ));
            }
        }
        (lines, pass)
    }
}

/// Run the fixed smoke workload and collect the tracked metrics. Small by
/// construction (a couple of seconds end to end) so the CI job stays cheap;
/// big enough that a pathological slow-down in grounding, solving, batching
/// or invalidation moves a metric well past 2x.
pub fn run_smoke() -> Result<SmokeReport, String> {
    run_smoke_traced().map(|(report, _)| report)
}

/// [`run_smoke`], additionally returning the Chrome trace-event JSON of the
/// traced sub-workload (the artifact `harness --smoke --trace PATH` writes
/// and CI uploads).
pub fn run_smoke_traced() -> Result<(SmokeReport, String), String> {
    let mut metrics = Vec::new();

    // Batched answering over disjoint clusters, sequential vs. pooled.
    let system = cluster_system(4, 12, 5);
    let batch = cluster_batch(4, 3);
    let w1 = run_batch(&system, &batch, Strategy::Asp, 1, "smoke")
        .ok_or("smoke batch failed at 1 worker")?;
    let w4 = run_batch(&system, &batch, Strategy::Asp, 4, "smoke")
        .ok_or("smoke batch failed at 4 workers")?;
    if (w1.answers, w1.worlds, w1.grounded_rules) != (w4.answers, w4.worlds, w4.grounded_rules) {
        return Err(format!(
            "parallel batch diverged from sequential: {}/{}/{} vs {}/{}/{} \
             answers/worlds/grounded-rules",
            w1.answers, w1.worlds, w1.grounded_rules, w4.answers, w4.worlds, w4.grounded_rules
        ));
    }
    metrics.push(("batch_asp_w1_ms".to_string(), w1.millis));
    metrics.push(("batch_asp_w4_ms".to_string(), w4.millis));
    metrics.push(("batch_answers".to_string(), w1.answers as f64));
    metrics.push(("batch_worlds".to_string(), w1.worlds as f64));
    // Grounding-size counter: exact-match in the gate, so a grounding
    // blow-up (or an unsound over-prune) fails CI deterministically even on
    // single-core runners where the timing gates are mushy.
    metrics.push(("batch_grounded_rules".to_string(), w1.grounded_rules as f64));

    // Cold + warm single-query latency on the canonical generated workload.
    let w = generate(&WorkloadSpec {
        peers: 2,
        tuples_per_relation: 20,
        violations_per_dec: 2,
        trust_mix: TrustMix::AllLess,
        ..WorkloadSpec::default()
    })
    .map_err(|e| e.to_string())?;
    // Repetition counts are sized so each metric lands in the tens of
    // milliseconds — large enough that CI scheduler jitter stays well
    // inside the 2x regression margin.
    let start = Instant::now();
    let mut cold_tuples = None;
    for _ in 0..10 {
        let engine = crate::runners::engine_for(&w, Strategy::Asp);
        let cold = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .map_err(|e| e.to_string())?;
        cold_tuples = Some((cold.tuples, cold.stats));
    }
    metrics.push((
        "asp_cold10_ms".to_string(),
        start.elapsed().as_secs_f64() * 1e3,
    ));
    let (cold_tuples, cold_stats) = cold_tuples.expect("ten cold runs");
    // Per-scenario grounding counters (exact-match in the gate), plus the
    // full-grounding reference: relevance pruning must instantiate strictly
    // fewer rules than the legacy full grounding on this workload — a
    // structural regression here is a hard failure, not a perf note.
    metrics.push((
        "asp_grounded_rules".to_string(),
        cold_stats.grounded_rules as f64,
    ));
    metrics.push((
        "asp_grounded_atoms".to_string(),
        cold_stats.grounded_atoms as f64,
    ));
    let full_engine = pdes_core::engine::QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .relevance_pruning(false)
        .build();
    let full = full_engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .map_err(|e| e.to_string())?;
    if full.tuples != cold_tuples {
        return Err("full grounding diverged from pruned answers".to_string());
    }
    if cold_stats.grounded_rules >= full.stats.grounded_rules {
        return Err(format!(
            "relevance pruning did not shrink the grounding: pruned {} >= full {}",
            cold_stats.grounded_rules, full.stats.grounded_rules
        ));
    }
    metrics.push((
        "asp_full_grounded_rules".to_string(),
        full.stats.grounded_rules as f64,
    ));
    metrics.push((
        "asp_full_grounded_atoms".to_string(),
        full.stats.grounded_atoms as f64,
    ));
    let engine = crate::runners::engine_for(&w, Strategy::Asp);
    let _ = engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .map_err(|e| e.to_string())?;
    let start = Instant::now();
    for _ in 0..500 {
        let warm = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .map_err(|e| e.to_string())?;
        if warm.tuples != cold_tuples {
            return Err("warm answers diverged from cold".to_string());
        }
    }
    metrics.push((
        "asp_warm500_ms".to_string(),
        start.elapsed().as_secs_f64() * 1e3,
    ));

    // Interned vs. legacy data plane (the B15 pair on the same workload).
    // `asp_warm500_ms` above already measures the interned path (the
    // default); `legacy_warm500_ms` is the same warm loop with
    // `interned_data_plane(false)`, riding the ordinary 2x timing gate. The
    // byte counters are exact-match metrics, and interning failing to
    // shrink the resident cache below the legacy estimate is a hard error —
    // the whole point of exact columnar sizing.
    let (interned, legacy) = crate::interned::run_interned_pair(&w, Strategy::Asp, "smoke")
        .map_err(|e| e.to_string())?;
    if interned.cached_bytes >= legacy.cached_bytes {
        return Err(format!(
            "interned cache is not smaller than the legacy estimate: \
             {} >= {} bytes",
            interned.cached_bytes, legacy.cached_bytes
        ));
    }
    if interned.symbols == 0 {
        return Err("the store interned no symbols on the smoke workload".to_string());
    }
    metrics.push((
        "interned_cached_bytes".to_string(),
        interned.cached_bytes as f64,
    ));
    metrics.push((
        "legacy_cached_bytes".to_string(),
        legacy.cached_bytes as f64,
    ));
    metrics.push(("interned_symbols".to_string(), interned.symbols as f64));
    metrics.push((
        "legacy_warm500_ms".to_string(),
        legacy.warm_per_op_us * crate::interned::WARM_OPS as f64 / 1e3,
    ));

    // Observability overhead + exact trace-shape counters. First the
    // NullRecorder control: an engine with the default (null) recorder
    // explicitly installed must stay within the ordinary 2x timing budget —
    // a hot-path instrumentation regression shows up here even if the
    // engine's own defaults change.
    let null_engine = pdes_core::engine::QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .recorder(Arc::new(NullRecorder))
        .build();
    let _ = null_engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .map_err(|e| e.to_string())?;
    let start = Instant::now();
    for _ in 0..500 {
        let warm = null_engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .map_err(|e| e.to_string())?;
        if warm.tuples != cold_tuples {
            return Err("null-recorder warm answers diverged from cold".to_string());
        }
    }
    metrics.push((
        "obs_null_warm500_ms".to_string(),
        start.elapsed().as_secs_f64() * 1e3,
    ));
    // Then the traced run: a deterministic cold + 20-warm sequence on a
    // sequential engine. Span and event counts are *exact-match* metrics:
    // an instrumentation point added or removed anywhere on the query path
    // must come with a refreshed baseline.
    let trace_recorder = Arc::new(TraceRecorder::new());
    let traced_engine = pdes_core::engine::QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .recorder(trace_recorder.clone())
        .build();
    for _ in 0..21 {
        let traced = traced_engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .map_err(|e| e.to_string())?;
        if traced.tuples != cold_tuples {
            return Err("traced answers diverged from cold".to_string());
        }
    }
    let trace = trace_recorder.trace();
    if trace.malformed() > 0 {
        return Err(format!(
            "trace has {} malformed span events",
            trace.malformed()
        ));
    }
    metrics.push(("trace_span_count".to_string(), trace.span_count() as f64));
    metrics.push(("trace_event_count".to_string(), trace.event_count() as f64));
    let trace_json = trace.chrome_json();

    // Live throughput under a mutation stream with incremental invalidation.
    let live_w = generate(&WorkloadSpec {
        peers: 4,
        tuples_per_relation: 10,
        violations_per_dec: 1,
        trust_mix: TrustMix::AllLess,
        topology: Topology::Star,
        ..WorkloadSpec::default()
    })
    .map_err(|e| e.to_string())?;
    let stream = generate_updates(
        &live_w,
        &UpdateSpec {
            batches: 16,
            batch_size: 2,
            ..UpdateSpec::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let live = run_live(
        &live_w,
        &stream,
        Strategy::Asp,
        LiveMode::Incremental,
        4,
        "smoke",
    )
    .ok_or("smoke live run failed")?;
    metrics.push(("live_incremental_ms".to_string(), live.millis));

    // Incremental-commit counters: warm the star hub's slice, commit into a
    // leaf, and require the repaired preparation to re-derive strictly
    // fewer rules than the full slice — a patch that degenerates into a
    // full re-ground is a hard error, not a perf note.
    let engine = pdes_core::engine::QueryEngine::builder(live_w.system.clone())
        .strategy(Strategy::Asp)
        .build();
    let cold = engine
        .answer(&live_w.queried_peer, &live_w.query, &live_w.free_vars)
        .map_err(|e| e.to_string())?;
    let leaf = pdes_core::system::PeerId::new("P1");
    let delta = relalg::Delta::from_changes(
        [relalg::database::GroundAtom::new(
            "T1",
            relalg::Tuple::strs(["smoke_commit_k", "smoke_commit_v"]),
        )],
        [],
    );
    engine
        .commit_delta(&leaf, &delta)
        .map_err(|e| e.to_string())?;
    let repaired = engine
        .answer(&live_w.queried_peer, &live_w.query, &live_w.free_vars)
        .map_err(|e| e.to_string())?;
    if !repaired.stats.cache_hit {
        return Err(
            "warm-after-commit query was not served from the repaired artifact".to_string(),
        );
    }
    if repaired.stats.regrounded_rules >= repaired.stats.grounded_rules {
        return Err(format!(
            "incremental re-ground did not beat the full slice: \
             re-derived {} >= slice {}",
            repaired.stats.regrounded_rules, repaired.stats.grounded_rules
        ));
    }
    // The committed tuple may or may not be certain under the repair
    // semantics; equality with a fresh engine over the mutated system is
    // the correctness bar.
    drop(cold);
    let fresh = pdes_core::engine::QueryEngine::builder(
        engine.snapshot_system().map_err(|e| e.to_string())?,
    )
    .strategy(Strategy::Asp)
    .build()
    .answer(&live_w.queried_peer, &live_w.query, &live_w.free_vars)
    .map_err(|e| e.to_string())?;
    if repaired.tuples != fresh.tuples {
        return Err("patched answers diverged from a fresh engine".to_string());
    }
    metrics.push((
        "warm_after_commit_regrounded_rules".to_string(),
        repaired.stats.regrounded_rules as f64,
    ));
    metrics.push((
        "warm_after_commit_slice_rules".to_string(),
        repaired.stats.grounded_rules as f64,
    ));
    // MVCC counters of the same fixed sequence (one cold preparation, one
    // commit, one warm read): exact-match in the gate, so a read path that
    // starts over- or under-pinning, or a commit path that stops
    // publishing epochs, fails CI deterministically.
    let mvcc = engine.mvcc_stats();
    if mvcc.publishes == 0 {
        return Err("the commit published no epoch".to_string());
    }
    metrics.push(("mvcc_epochs_published".to_string(), mvcc.publishes as f64));
    metrics.push(("snapshot_pins".to_string(), mvcc.pins as f64));

    // Eviction counters: the same workload under a deliberately tiny byte
    // budget must evict (and still answer every query — the equivalence is
    // asserted by the property tests; here the deterministic eviction count
    // is what the gate tracks).
    let bounded = pdes_core::engine::QueryEngine::builder(live_w.system.clone())
        .strategy(Strategy::Asp)
        .cache_capacity(20_000)
        .build();
    let fv = pdes_core::pca::vars(&["X", "Y"]);
    for _ in 0..2 {
        for peer in live_w
            .system
            .peers()
            .map(|p| p.id.clone())
            .collect::<Vec<_>>()
        {
            let relation = live_w
                .system
                .peer(&peer)
                .map_err(|e| e.to_string())?
                .schema
                .relation_names()
                .next()
                .ok_or("generated peer owns no relation")?
                .to_string();
            let query = relalg::query::Formula::atom(&relation, vec!["X", "Y"]);
            let _ = bounded
                .answer(&peer, &query, &fv)
                .map_err(|e| e.to_string())?;
        }
    }
    let evictions = bounded.metrics().evictions;
    if evictions == 0 {
        return Err("tiny cache budget produced no evictions".to_string());
    }
    metrics.push(("cache_evictions".to_string(), evictions as f64));

    // Sharded serving: the deterministic chain system (four disjoint
    // chains of three peers) served through a 2-shard store must answer
    // every peer query exactly like the single-store oracle — divergence is
    // a hard error, not a tracked metric — and the store's local/remote
    // traffic split is pinned *exactly* in the gate: one closure hydration
    // per cold ASP peer stays on its owning shard, and the one naive query
    // pays the one cross-shard snapshot fan-out.
    let chain = crate::sharding::chain_system(3)?;
    let store = Arc::new(
        pdes_store::ShardedStore::builder(chain.clone())
            .shards(2)
            .build(),
    );
    let sharded_engine = pdes_core::engine::QueryEngine::builder(chain.clone())
        .store(store.clone() as Arc<dyn pdes_core::store::PeerStore>)
        .strategy(Strategy::Asp)
        .build();
    let oracle_engine = pdes_core::engine::QueryEngine::builder(chain.clone())
        .strategy(Strategy::Asp)
        .build();
    let shard_fv = pdes_core::pca::vars(&["X", "Y"]);
    let start = Instant::now();
    for peer in chain.peer_ids().cloned().collect::<Vec<_>>() {
        let relation = chain
            .peer(&peer)
            .map_err(|e| e.to_string())?
            .schema
            .relation_names()
            .next()
            .ok_or("chain peer owns no relation")?
            .to_string();
        let query = relalg::query::Formula::atom(&relation, vec!["X", "Y"]);
        let sharded = sharded_engine
            .answer(&peer, &query, &shard_fv)
            .map_err(|e| e.to_string())?;
        let oracle = oracle_engine
            .answer(&peer, &query, &shard_fv)
            .map_err(|e| e.to_string())?;
        if sharded.tuples != oracle.tuples {
            return Err(format!(
                "sharded answers diverged from the single-store oracle at peer {peer}"
            ));
        }
    }
    metrics.push((
        "shard_asp_cold_ms".to_string(),
        start.elapsed().as_secs_f64() * 1e3,
    ));
    let naive_engine = pdes_core::engine::QueryEngine::builder(chain.clone())
        .store(store.clone() as Arc<dyn pdes_core::store::PeerStore>)
        .strategy(Strategy::Naive)
        .build();
    let head = pdes_core::system::PeerId::new("c0p0");
    let head_query = relalg::query::Formula::atom("T0_0", vec!["X", "Y"]);
    let naive = naive_engine
        .answer(&head, &head_query, &shard_fv)
        .map_err(|e| e.to_string())?;
    let naive_oracle = oracle_engine
        .answer_with(Strategy::Naive, &head, &head_query, &shard_fv)
        .map_err(|e| e.to_string())?;
    if naive.tuples != naive_oracle.tuples {
        return Err("sharded naive answers diverged from the single-store oracle".to_string());
    }
    let shard_metrics = store.metrics();
    // Engine reads pin an epoch from the coordinator mirror: they reach the
    // store (local) but never fan out to a worker shard (remote).
    if shard_metrics.local == 0 {
        return Err("serving never reached the sharded store".to_string());
    }
    if shard_metrics.remote != 0 {
        return Err("pinned reads must not fan out across shards".to_string());
    }
    metrics.push((
        "shard_local_queries".to_string(),
        shard_metrics.local as f64,
    ));
    metrics.push((
        "shard_remote_queries".to_string(),
        shard_metrics.remote as f64,
    ));

    // Closed-loop readers under a sustained writer (the B14 driver at a
    // fixed small configuration): the throughput is gated *downward* in CI
    // — a read path that starts blocking on commits loses most of it.
    let under_writes =
        crate::mvcc::run_readers_under_writes(4, 150, 4).ok_or("reader-under-writes run failed")?;
    if under_writes.commits == 0 {
        return Err("the writer made no progress under the reader storm".to_string());
    }
    metrics.push((
        "reader_qps_under_writes".to_string(),
        under_writes.reader_qps,
    ));

    // Static-analyzer counters over the two smoke systems (exact-match in
    // the gate). Errors on a generated workload are a hard failure — the
    // generator must only ever produce analyzer-clean systems.
    let mut analyzer_errors = 0usize;
    let mut analyzer_warnings = 0usize;
    let mut analyzer_infos = 0usize;
    for (name, system) in [("asp", &w.system), ("live", &live_w.system)] {
        let report = system.analyze();
        if !report.is_clean() {
            return Err(format!(
                "smoke workload `{name}` has analyzer errors:\n{}",
                report.render()
            ));
        }
        analyzer_errors += report.error_count();
        analyzer_warnings += report.warning_count();
        analyzer_infos += report.count(pdes_core::analyze::Severity::Info);
    }
    metrics.push(("analyzer_errors".to_string(), analyzer_errors as f64));
    metrics.push(("analyzer_warnings".to_string(), analyzer_warnings as f64));
    metrics.push(("analyzer_infos".to_string(), analyzer_infos as f64));

    Ok((SmokeReport { metrics }, trace_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> SmokeReport {
        SmokeReport {
            metrics: pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let original = report(&[("a_ms", 12.5), ("b_count", 96.0)]);
        let parsed = SmokeReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, report(&[("a_ms", 12.5), ("b_count", 96.0)]));
    }

    #[test]
    fn compare_flags_regressions_and_missing_metrics() {
        let baseline = report(&[("a_ms", 10.0), ("gone_ms", 1.0)]);
        let current = report(&[("a_ms", 25.0), ("new_ms", 3.0)]);
        let (lines, pass) = current.compare(&baseline);
        assert!(!pass);
        assert!(lines.iter().any(|l| l.starts_with("FAIL a_ms")));
        assert!(lines.iter().any(|l| l.starts_with("FAIL gone_ms")));
        assert!(lines.iter().any(|l| l.starts_with("note new_ms")));
    }

    #[test]
    fn compare_passes_within_the_factor() {
        let baseline = report(&[("a_ms", 10.0)]);
        let current = report(&[("a_ms", 19.9)]);
        let (_, pass) = current.compare(&baseline);
        assert!(pass);
    }

    #[test]
    fn count_metrics_require_exact_equality() {
        let baseline = report(&[("batch_answers", 84.0)]);
        // Fewer answers is a correctness bug, not a perf improvement.
        let (lines, pass) = report(&[("batch_answers", 10.0)]).compare(&baseline);
        assert!(!pass);
        assert!(lines.iter().any(|l| l.contains("count changed")));
        let (_, pass) = report(&[("batch_answers", 84.0)]).compare(&baseline);
        assert!(pass);
    }

    #[test]
    fn zero_timing_baselines_do_not_brick_the_gate() {
        // A baseline rounded down to 0.000 must still allow small positive
        // measurements (absolute floor), while catching real blow-ups.
        let baseline = report(&[("tiny_ms", 0.0)]);
        let (_, pass) = report(&[("tiny_ms", 0.015)]).compare(&baseline);
        assert!(pass);
        let (_, pass) = report(&[("tiny_ms", 5.0)]).compare(&baseline);
        assert!(!pass);
    }

    #[test]
    fn qps_metrics_gate_the_downward_direction_only() {
        let baseline = report(&[("reader_qps_under_writes", 1000.0)]);
        // Faster is fine, even far beyond 2x.
        let (_, pass) = report(&[("reader_qps_under_writes", 5000.0)]).compare(&baseline);
        assert!(pass);
        // Hovering just above half the baseline still passes…
        let (_, pass) = report(&[("reader_qps_under_writes", 501.0)]).compare(&baseline);
        assert!(pass);
        // …but losing more than half the throughput fails.
        let (lines, pass) = report(&[("reader_qps_under_writes", 499.0)]).compare(&baseline);
        assert!(!pass);
        assert!(lines.iter().any(|l| l.starts_with("FAIL")));
    }

    #[test]
    fn smoke_run_reports_every_tracked_metric() {
        let smoke = run_smoke().unwrap();
        for name in [
            "batch_asp_w1_ms",
            "batch_asp_w4_ms",
            "batch_answers",
            "batch_worlds",
            "batch_grounded_rules",
            "asp_cold10_ms",
            "asp_warm500_ms",
            "interned_cached_bytes",
            "legacy_cached_bytes",
            "interned_symbols",
            "legacy_warm500_ms",
            "obs_null_warm500_ms",
            "trace_span_count",
            "trace_event_count",
            "asp_grounded_rules",
            "asp_grounded_atoms",
            "asp_full_grounded_rules",
            "asp_full_grounded_atoms",
            "live_incremental_ms",
            "warm_after_commit_regrounded_rules",
            "warm_after_commit_slice_rules",
            "mvcc_epochs_published",
            "snapshot_pins",
            "cache_evictions",
            "shard_asp_cold_ms",
            "shard_local_queries",
            "shard_remote_queries",
            "reader_qps_under_writes",
            "analyzer_errors",
            "analyzer_warnings",
            "analyzer_infos",
        ] {
            assert!(smoke.get(name).is_some(), "missing metric {name}");
        }
        // The pruned grounding is strictly smaller than the full one (the
        // run itself hard-errors otherwise; this documents the invariant).
        assert!(smoke.get("asp_grounded_rules") < smoke.get("asp_full_grounded_rules"));
        // The incremental patch re-derives strictly fewer rules than the
        // full slice (also a hard error inside the run).
        assert!(
            smoke.get("warm_after_commit_regrounded_rules")
                < smoke.get("warm_after_commit_slice_rules")
        );
        // The tiny-budget engine evicted (hard error inside the run).
        assert!(smoke.get("cache_evictions") > Some(0.0));
        // Exact interned sizing comes in under the legacy estimate (hard
        // error inside the run), and the store interned the workload.
        assert!(smoke.get("interned_cached_bytes") < smoke.get("legacy_cached_bytes"));
        assert!(smoke.get("interned_symbols") > Some(0.0));
        // The traced sub-workload produced a well-formed, non-empty trace
        // with two events (enter + exit) per span.
        assert!(smoke.get("trace_span_count") > Some(0.0));
        assert_eq!(
            smoke.get("trace_event_count"),
            smoke.get("trace_span_count").map(|s| s * 2.0)
        );
        // Engine reads pin epochs from the coordinator mirror: serving
        // reaches the store but never fans out across worker shards.
        assert_eq!(smoke.get("shard_remote_queries"), Some(0.0));
        assert!(smoke.get("shard_local_queries") > Some(0.0));
        // The MVCC sub-workload pinned and published (hard errors inside
        // the run back these up).
        assert!(smoke.get("mvcc_epochs_published") > Some(0.0));
        assert!(smoke.get("snapshot_pins") > Some(0.0));
        assert!(smoke.get("reader_qps_under_writes") > Some(0.0));
        // The smoke workloads are analyzer-error-free (hard error inside
        // the run); the warning/info counters are exact-match in the gate.
        assert_eq!(smoke.get("analyzer_errors"), Some(0.0));
        // Self-comparison always passes.
        let (_, pass) = smoke.compare(&smoke);
        assert!(pass);
    }
}

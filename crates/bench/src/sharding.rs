//! Table B13: cross-shard query latency vs. closure size at shard counts
//! 1/2/4.
//!
//! The workload is four *disjoint* DEC chains of length `closure` (built
//! through the DSL so relation names stay globally unique): each chain is
//! one closure-connected component, so a [`pdes_store::ShardedStore`]
//! places whole chains on shards and a chain-head query's relevant-peer
//! closure is exactly its chain. Per point the table reports, against the
//! same store, the three latencies that bound sharded serving:
//!
//! * `closure fetch` — the store-level `instances` read of one chain-head
//!   closure (single-shard by construction: the placement unit *is* the
//!   component);
//! * `snapshot` — the full-system assembly (fans out to every shard; the
//!   cross-shard round-trip the naive strategy's cold path pays);
//! * `cold query` — an end-to-end ASP answer over a chain head through an
//!   engine serving from the sharded store.
//!
//! The `local`/`remote` columns are the store's own operation counters
//! after the point ran, separating single-shard from cross-shard traffic.

use pdes_core::engine::{QueryEngine, Strategy};
use pdes_core::store::PeerStore;
use pdes_core::system::PeerId;
use pdes_exec::ExecConfig;
use pdes_store::ShardedStore;
use relalg::query::Formula;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Disjoint chains in the B13 workload (also the maximum useful shard
/// count + a spare, so four shards still get distinct components).
const CHAINS: usize = 4;

/// One B13 row: latencies and traffic split for one (closure, shards)
/// point.
#[derive(Debug, Clone)]
pub struct ShardMeasurement {
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Worker shards in the store.
    pub shards: usize,
    /// Store-level closure `instances` fetch, milliseconds.
    pub closure_fetch_ms: f64,
    /// Store-level full snapshot (cross-shard fan-out), milliseconds.
    pub snapshot_ms: f64,
    /// End-to-end cold ASP answer over a chain head, milliseconds.
    pub cold_query_ms: f64,
    /// Store operations that stayed on one shard.
    pub local: u64,
    /// Store operations that fanned out across shards.
    pub remote: u64,
}

/// DSL source for `CHAINS` disjoint chains of `len` peers: peer `c<k>p<i>`
/// owns `T<k>_<i>(k, v)` and imports from `c<k>p<i+1>` (so a head query's
/// closure is its whole chain), with a handful of facts per relation.
fn chain_source(len: usize) -> String {
    let mut out = String::new();
    for chain in 0..CHAINS {
        for pos in 0..len {
            writeln!(out, "peer c{chain}p{pos}").unwrap();
            writeln!(out, "relation c{chain}p{pos} T{chain}_{pos}(k, v)").unwrap();
            for t in 0..3 {
                writeln!(out, "fact T{chain}_{pos}(k{chain}_{pos}_{t}, v{t})").unwrap();
            }
        }
        for pos in 0..len.saturating_sub(1) {
            writeln!(
                out,
                "trust c{chain}p{pos} less c{chain}p{next}",
                next = pos + 1
            )
            .unwrap();
            writeln!(
                out,
                "dec d{chain}_{pos} c{chain}p{pos} c{chain}p{next}: \
                 T{chain}_{next}(X, Y) -> T{chain}_{pos}(X, Y)",
                next = pos + 1
            )
            .unwrap();
        }
    }
    out
}

/// The deterministic chain system behind B13 and the smoke gate's sharded
/// leg: four disjoint chains of `len` peers each.
pub fn chain_system(len: usize) -> Result<pdes_core::system::P2PSystem, String> {
    dsl::parse(&chain_source(len))
        .map(|parsed| parsed.system)
        .map_err(|e| e.to_string())
}

/// Run the B13 sweep: one sharded store per (closure, shards) point.
pub fn table_b13(closure_sizes: &[usize], shard_counts: &[usize]) -> Vec<ShardMeasurement> {
    let mut rows = Vec::new();
    for &closure in closure_sizes {
        let Ok(system) = chain_system(closure) else {
            continue;
        };
        for &shards in shard_counts {
            let store = Arc::new(
                ShardedStore::builder(system.clone())
                    .shards(shards)
                    .exec(ExecConfig::with_workers(shards))
                    .build(),
            );

            let head = PeerId::new("c0p0");
            let chain: std::collections::BTreeSet<PeerId> = store.topology().dependencies_of(&head);
            let start = Instant::now();
            let fetched = store.instances(&chain).expect("closure fetch");
            let closure_fetch_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(fetched.len(), closure, "closure is the whole chain");

            let start = Instant::now();
            let _ = store.snapshot().expect("snapshot");
            let snapshot_ms = start.elapsed().as_secs_f64() * 1e3;

            let engine = QueryEngine::builder(system.clone())
                .store(store.clone() as Arc<dyn PeerStore>)
                .strategy(Strategy::Asp)
                .build();
            let query = Formula::atom("T0_0", vec!["X", "Y"]);
            let fv = pdes_core::pca::vars(&["X", "Y"]);
            let start = Instant::now();
            let _ = engine.answer(&head, &query, &fv).expect("cold answer");
            let cold_query_ms = start.elapsed().as_secs_f64() * 1e3;

            let metrics = store.metrics();
            rows.push(ShardMeasurement {
                params: format!("closure={closure} chains={CHAINS}"),
                shards,
                closure_fetch_ms,
                snapshot_ms,
                cold_query_ms,
                local: metrics.local,
                remote: metrics.remote,
            });
        }
    }
    rows
}

/// Render B13 as an aligned text table.
pub fn render_shard_table(title: &str, rows: &[ShardMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<24} {:>6} {:>13} {:>13} {:>13} {:>6} {:>7}\n",
        "parameters", "shards", "closure (ms)", "snapshot (ms)", "cold qry (ms)", "local", "remote"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<24} {:>6} {:>13.4} {:>13.4} {:>13.4} {:>6} {:>7}\n",
            row.params,
            row.shards,
            row.closure_fetch_ms,
            row.snapshot_ms,
            row.cold_query_ms,
            row.local,
            row.remote
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b13_covers_the_sweep_and_splits_traffic() {
        let rows = table_b13(&[2], &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.closure_fetch_ms >= 0.0);
            assert!(row.local > 0, "closure fetches must stay local");
            if row.shards == 1 {
                assert_eq!(row.remote, 0, "one shard can never fan out");
            } else {
                assert!(row.remote > 0, "the snapshot must cross shards");
            }
        }
        let table = render_shard_table("B13", &rows);
        assert!(table.contains("snapshot (ms)"));
        assert!(table.contains("closure=2"));
    }

    #[test]
    fn b13_chain_source_parses_into_disjoint_chains() {
        let parsed = dsl::parse(&chain_source(3)).expect("valid source");
        assert_eq!(parsed.system.peer_count(), CHAINS * 3);
        let head = PeerId::new("c1p0");
        let closure = parsed.system.dependencies_of(&head);
        assert_eq!(closure.len(), 3, "a head's closure is its own chain only");
    }
}

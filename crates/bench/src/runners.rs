//! Shared runners: execute one answering strategy on one workload through
//! the [`QueryEngine`] facade and report wall-clock time plus basic
//! statistics.
//!
//! The per-mechanism `run_*` functions are thin wrappers over
//! [`run_strategy`]; the Criterion benches build an engine once per workload
//! with [`engine_for`] and answer repeatedly, which exercises the engine's
//! per-peer memoization (repeat queries skip re-grounding/solving — the hot
//! path this suite measures).

use pdes_core::engine::{QueryEngine, Strategy};
use repair::{consistent_answers, RepairEngine};
use std::time::Instant;
use workload::generator::GeneratedWorkload;

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The mechanism that was exercised.
    pub mechanism: &'static str,
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Wall-clock time in milliseconds (one run; the Criterion benches do
    /// the statistically careful repetitions).
    pub millis: f64,
    /// Number of peer consistent answers returned.
    pub answers: usize,
    /// Number of solutions / answer sets / repairs considered.
    pub worlds: usize,
}

/// Build a fresh engine over a workload's system with the given strategy.
pub fn engine_for(w: &GeneratedWorkload, strategy: Strategy) -> QueryEngine {
    QueryEngine::builder(w.system.clone())
        .strategy(strategy)
        .build()
}

/// Run one answering strategy on the workload's canonical query through a
/// fresh engine (cold cache: the measurement includes preparation).
pub fn run_strategy(
    w: &GeneratedWorkload,
    strategy: Strategy,
    params: &str,
) -> Option<Measurement> {
    let engine = engine_for(w, strategy);
    let start = Instant::now();
    let result = engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .ok()?;
    Some(Measurement {
        mechanism: result.stats.strategy.label(),
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.len(),
        worlds: result.stats.worlds,
    })
}

/// Run the first-order rewriting mechanism.
pub fn run_rewriting(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    run_strategy(w, Strategy::Rewriting, params)
}

/// Run the (direct) answer-set specification mechanism.
pub fn run_asp(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    run_strategy(w, Strategy::Asp, params)
}

/// Run the transitive (global) answer-set mechanism.
pub fn run_transitive_asp(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    run_strategy(w, Strategy::TransitiveAsp, params)
}

/// Run the naive solution-enumeration (Definition 4 / 5) mechanism.
pub fn run_naive(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    run_strategy(w, Strategy::Naive, params)
}

/// Run the single-database CQA baseline: the same data and constraints, but
/// treated as one inconsistent database repaired under the DECs with no peer
/// or trust structure. (Not a peer semantics, hence not an engine strategy.)
pub fn run_cqa_baseline(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let constraints: Vec<constraints::Constraint> = w
        .system
        .decs()
        .iter()
        .map(|d| d.constraint.clone())
        .collect();
    let db = w.system.global_instance().ok()?;
    let engine = RepairEngine::new(constraints);
    let start = Instant::now();
    let result = consistent_answers(&engine, &db, &w.query, &w.free_vars).ok()?;
    Some(Measurement {
        mechanism: "cqa-baseline",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: result.repair_count,
    })
}

/// Render a list of measurements as an aligned text table.
pub fn render_table(title: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<34} {:<16} {:>12} {:>9} {:>8}\n",
        "parameters", "mechanism", "time (ms)", "answers", "worlds"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<34} {:<16} {:>12.3} {:>9} {:>8}\n",
            row.params, row.mechanism, row.millis, row.answers, row.worlds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, WorkloadSpec};

    #[test]
    fn runners_produce_consistent_answers_on_tiny_workload() {
        let w = generate(&WorkloadSpec::tiny()).unwrap();
        let rewriting = run_rewriting(&w, "tiny").unwrap();
        let asp = run_asp(&w, "tiny").unwrap();
        let naive = run_naive(&w, "tiny").unwrap();
        assert_eq!(rewriting.answers, asp.answers);
        assert_eq!(asp.answers, naive.answers);
        assert!(asp.millis >= 0.0);
    }

    #[test]
    fn runner_labels_match_the_legacy_table_names() {
        let w = generate(&WorkloadSpec::tiny()).unwrap();
        assert_eq!(run_rewriting(&w, "t").unwrap().mechanism, "rewriting");
        assert_eq!(run_asp(&w, "t").unwrap().mechanism, "asp");
        assert_eq!(run_naive(&w, "t").unwrap().mechanism, "naive-solutions");
        assert_eq!(
            run_transitive_asp(&w, "t").unwrap().mechanism,
            "asp-transitive"
        );
    }

    #[test]
    fn warm_engines_answer_from_cache() {
        let w = generate(&WorkloadSpec::tiny()).unwrap();
        let engine = engine_for(&w, Strategy::Asp);
        let cold = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let warm = engine
            .answer(&w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        assert!(!cold.stats.cache_hit);
        assert!(warm.stats.cache_hit);
        assert_eq!(cold.tuples, warm.tuples);
    }

    #[test]
    fn table_rendering_includes_rows() {
        let w = generate(&WorkloadSpec::tiny()).unwrap();
        let rows = vec![run_rewriting(&w, "tiny").unwrap()];
        let table = render_table("B1", &rows);
        assert!(table.contains("B1"));
        assert!(table.contains("rewriting"));
    }

    #[test]
    fn cqa_baseline_runs_on_tiny_workload() {
        let w = generate(&WorkloadSpec::tiny()).unwrap();
        let m = run_cqa_baseline(&w, "tiny").unwrap();
        assert!(m.worlds >= 1);
    }
}

//! Shared runners: execute one answering mechanism on one workload and
//! report wall-clock time plus basic statistics.

use datalog::SolverConfig;
use pdes_core::pca::peer_consistent_answers;
use pdes_core::rewriting::answers_by_rewriting;
use pdes_core::solution::SolutionOptions;
use pdes_core::{answers_via_asp, answers_via_transitive_asp};
use repair::{consistent_answers, RepairEngine};
use std::time::Instant;
use workload::generator::GeneratedWorkload;

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The mechanism that was exercised.
    pub mechanism: &'static str,
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Wall-clock time in milliseconds (one run; the Criterion benches do
    /// the statistically careful repetitions).
    pub millis: f64,
    /// Number of peer consistent answers returned.
    pub answers: usize,
    /// Number of solutions / answer sets / repairs considered.
    pub worlds: usize,
}

/// Run the first-order rewriting mechanism.
pub fn run_rewriting(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let start = Instant::now();
    let result = answers_by_rewriting(&w.system, &w.queried_peer, &w.query, &w.free_vars).ok()?;
    Some(Measurement {
        mechanism: "rewriting",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: 1,
    })
}

/// Run the (direct) answer-set specification mechanism.
pub fn run_asp(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let start = Instant::now();
    let result = answers_via_asp(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolverConfig::default(),
    )
    .ok()?;
    Some(Measurement {
        mechanism: "asp",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: result.answer_set_count,
    })
}

/// Run the transitive (global) answer-set mechanism.
pub fn run_transitive_asp(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let start = Instant::now();
    let result = answers_via_transitive_asp(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolverConfig::default(),
    )
    .ok()?;
    Some(Measurement {
        mechanism: "asp-transitive",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: result.answer_set_count,
    })
}

/// Run the naive solution-enumeration (Definition 4 / 5) mechanism.
pub fn run_naive(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let start = Instant::now();
    let result = peer_consistent_answers(
        &w.system,
        &w.queried_peer,
        &w.query,
        &w.free_vars,
        SolutionOptions::default(),
    )
    .ok()?;
    Some(Measurement {
        mechanism: "naive-solutions",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: result.solution_count,
    })
}

/// Run the single-database CQA baseline: the same data and constraints, but
/// treated as one inconsistent database repaired under the DECs with no peer
/// or trust structure.
pub fn run_cqa_baseline(w: &GeneratedWorkload, params: &str) -> Option<Measurement> {
    let constraints: Vec<constraints::Constraint> = w
        .system
        .decs()
        .iter()
        .map(|d| d.constraint.clone())
        .collect();
    let db = w.system.global_instance().ok()?;
    let engine = RepairEngine::new(constraints);
    let start = Instant::now();
    let result = consistent_answers(&engine, &db, &w.query, &w.free_vars).ok()?;
    Some(Measurement {
        mechanism: "cqa-baseline",
        params: params.to_string(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        answers: result.answers.len(),
        worlds: result.repair_count,
    })
}

/// Render a list of measurements as an aligned text table.
pub fn render_table(title: &str, rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<34} {:<16} {:>12} {:>9} {:>8}\n",
        "parameters", "mechanism", "time (ms)", "answers", "worlds"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<34} {:<16} {:>12.3} {:>9} {:>8}\n",
            row.params, row.mechanism, row.millis, row.answers, row.worlds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate, WorkloadSpec};

    #[test]
    fn runners_produce_consistent_answers_on_tiny_workload() {
        let w = generate(&WorkloadSpec::tiny());
        let rewriting = run_rewriting(&w, "tiny").unwrap();
        let asp = run_asp(&w, "tiny").unwrap();
        let naive = run_naive(&w, "tiny").unwrap();
        assert_eq!(rewriting.answers, asp.answers);
        assert_eq!(asp.answers, naive.answers);
        assert!(asp.millis >= 0.0);
    }

    #[test]
    fn table_rendering_includes_rows() {
        let w = generate(&WorkloadSpec::tiny());
        let rows = vec![run_rewriting(&w, "tiny").unwrap()];
        let table = render_table("B1", &rows);
        assert!(table.contains("B1"));
        assert!(table.contains("rewriting"));
    }

    #[test]
    fn cqa_baseline_runs_on_tiny_workload() {
        let w = generate(&WorkloadSpec::tiny());
        let m = run_cqa_baseline(&w, "tiny").unwrap();
        assert!(m.worlds >= 1);
    }
}

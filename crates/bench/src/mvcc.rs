//! Table B14: reader latency and throughput under a sustained writer —
//! the closed-loop benchmark behind the MVCC snapshot-isolation redesign.
//!
//! The workload is the disjoint-cluster system of [`crate::parallel`]: N
//! reader threads share one [`Session`] through cloned
//! [`ReadHandle`](pdes_session::ReadHandle)s and re-answer the warm
//! cluster-head queries in a closed loop (no think time), while the
//! session's single [`Writer`](pdes_session::Writer) commits one-tuple
//! transactions back to back for the whole measurement window. Every commit
//! invalidates the artifacts in its cluster's closure and repairs them *on
//! the committing thread*, so readers stay on the warm path: they pin a
//! published epoch and never wait for the writer.
//!
//! Per point the table reports the reader-side closed-loop throughput
//! (queries/second across all readers), the p50/p99 single-query latency in
//! microseconds (shared lock-free [`Histogram`]), the number of commits the
//! writer managed in the same window, and the store's MVCC counters
//! (epochs published, snapshots pinned). The `reader_qps_under_writes`
//! smoke metric is this driver at a fixed small configuration, gated
//! *downward* in CI: losing more than half the measured throughput under
//! writes is a concurrency regression.

use crate::parallel::cluster_system;
use pdes_core::engine::{Query, QueryEngine, Strategy};
use pdes_core::system::PeerId;
use pdes_obs::Histogram;
use pdes_session::{Session, Update};
use relalg::database::GroundAtom;
use relalg::query::Formula;
use relalg::{Delta, Tuple};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Clusters in the B14 workload (matches the B9 disjoint-cluster shape).
const CLUSTERS: usize = 4;

/// One B14 row: reader-side percentiles and throughput at one reader count.
#[derive(Debug, Clone)]
pub struct MvccMeasurement {
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Concurrent reader threads (each a cloned `ReadHandle`).
    pub readers: usize,
    /// Closed-loop reader throughput, queries/second across all readers.
    pub reader_qps: f64,
    /// Median single-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile single-query latency, microseconds.
    pub p99_us: f64,
    /// Commits the writer completed inside the measurement window.
    pub commits: u64,
    /// Epochs the store published (from [`pdes_core::MvccStats`]).
    pub publishes: u64,
    /// Snapshots pinned by the read path (from [`pdes_core::MvccStats`]).
    pub pins: u64,
}

/// Run one closed-loop point: `readers` reader threads for `window_ms`
/// milliseconds against a sustained writer. Returns `None` if the workload
/// fails to build or a query errors (the callers turn that into a skipped
/// row / failed smoke run).
pub fn run_readers_under_writes(
    readers: usize,
    window_ms: u64,
    tuples: usize,
) -> Option<MvccMeasurement> {
    let system = cluster_system(CLUSTERS, tuples, 2);
    let session = Session::with_engine(
        QueryEngine::builder(system)
            .strategy(Strategy::Asp)
            .workers(1)
            .build(),
    );
    let queries: Vec<Query> = (0..CLUSTERS)
        .map(|i| {
            Query::named(
                PeerId::new(format!("A{i}")),
                Formula::atom(format!("RA{i}"), vec!["X", "Y"]),
                &["X", "Y"],
            )
        })
        .collect();
    // Warm every cluster head so the measurement window exercises the
    // steady state: warm reads racing commit-thread repairs.
    for query in &queries {
        let _ = session.query(query).ok()?;
    }

    let latency = Histogram::new();
    let answered = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_millis(window_ms);
    let failed = AtomicBool::new(false);

    let mut writer = session.writer().ok()?;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for reader in 0..readers {
            let handle = session.reader();
            let queries = &queries;
            let (latency, answered, stop, failed) = (&latency, &answered, &stop, &failed);
            scope.spawn(move || {
                let mut round = reader;
                while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                    let query = &queries[round % CLUSTERS];
                    round += 1;
                    let t0 = Instant::now();
                    if handle.query(query).is_err() {
                        failed.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    latency.record(t0.elapsed().as_micros() as u64);
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let (commits, stop, failed) = (&commits, &stop, &failed);
        scope.spawn(move || {
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                let peer = PeerId::new(format!("B{}", round % CLUSTERS));
                let relation = format!("RB{}", round % CLUSTERS);
                let delta = Delta::from_changes(
                    [GroundAtom::new(
                        relation,
                        Tuple::strs([format!("b14_{round}").as_str(), "v"]),
                    )],
                    [],
                );
                if writer.apply(&[Update::new(peer, delta)]).is_err() {
                    failed.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
                commits.fetch_add(1, Ordering::Relaxed);
                round += 1;
            }
        });
    });
    let elapsed = start.elapsed().as_secs_f64();
    if failed.load(Ordering::Relaxed) {
        return None;
    }

    let total = answered.load(Ordering::Relaxed);
    let mvcc = session.mvcc_stats();
    Some(MvccMeasurement {
        params: format!("clusters={CLUSTERS} tuples={tuples} window={window_ms}ms"),
        readers,
        reader_qps: total as f64 / elapsed.max(f64::EPSILON),
        p50_us: latency.quantile(0.50) as f64,
        p99_us: latency.quantile(0.99) as f64,
        commits: commits.load(Ordering::Relaxed),
        publishes: mvcc.publishes,
        pins: mvcc.pins,
    })
}

/// Run the B14 sweep: one closed-loop window per reader count.
pub fn table_b14(reader_counts: &[usize], window_ms: u64) -> Vec<MvccMeasurement> {
    reader_counts
        .iter()
        .filter_map(|&readers| run_readers_under_writes(readers, window_ms, 6))
        .collect()
}

/// Render B14 as an aligned text table.
pub fn render_mvcc_table(title: &str, rows: &[MvccMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<36} {:>7} {:>12} {:>9} {:>9} {:>8} {:>9} {:>9}\n",
        "parameters",
        "readers",
        "reader qps",
        "p50 (us)",
        "p99 (us)",
        "commits",
        "publishes",
        "pins"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<36} {:>7} {:>12.0} {:>9.0} {:>9.0} {:>8} {:>9} {:>9}\n",
            row.params,
            row.readers,
            row.reader_qps,
            row.p50_us,
            row.p99_us,
            row.commits,
            row.publishes,
            row.pins
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b14_reports_throughput_and_percentiles() {
        let row = run_readers_under_writes(2, 120, 4).expect("closed loop runs");
        assert_eq!(row.readers, 2);
        assert!(row.reader_qps > 0.0, "readers made progress: {row:?}");
        assert!(row.p50_us <= row.p99_us);
        assert!(row.commits > 0, "the writer made progress: {row:?}");
        assert!(row.publishes >= row.commits, "every commit publishes");
        assert!(row.pins > 0, "reads pin epochs");
        let table = render_mvcc_table("B14", &[row]);
        assert!(table.contains("reader qps"));
        assert!(table.contains("p99 (us)"));
    }
}

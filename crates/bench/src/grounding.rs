//! B10 — full vs. relevance-pruned grounding.
//!
//! The engine's ASP strategies ground the queried peer's specification
//! program before solving it; PR 4 added magic-sets-style relevance pruning
//! ([`datalog::relevance`]) so each query instantiates only the slice that
//! can influence it. This table puts the two grounding regimes side by side
//! on star workloads of increasing peer count: the full grounding carries
//! every peer's facts into every query, the pruned grounding drops
//! everything outside the queried peer's DEC closure. Answers must be
//! identical; the grounded-rule/atom counters and the cold-query latency
//! show what the pruning saves.

use pdes_core::engine::{QueryEngine, Strategy};
use std::time::Instant;
use workload::generator::GeneratedWorkload;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

/// One grounding-regime measurement.
#[derive(Debug, Clone)]
pub struct GroundingMeasurement {
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// `"full"` or `"pruned"`.
    pub mode: &'static str,
    /// Ground rules instantiated for the query's preparation.
    pub grounded_rules: usize,
    /// Distinct ground atoms interned during the preparation.
    pub grounded_atoms: usize,
    /// Grounding phase time in milliseconds.
    pub ground_ms: f64,
    /// Cold end-to-end answer time in milliseconds.
    pub answer_ms: f64,
    /// Number of peer consistent answers (equal-output check across modes).
    pub answers: usize,
}

/// Answer the workload's canonical query on a cold engine with the given
/// grounding regime.
pub fn measure_grounding(
    w: &GeneratedWorkload,
    pruned: bool,
    params: &str,
) -> Option<GroundingMeasurement> {
    let engine = QueryEngine::builder(w.system.clone())
        .strategy(Strategy::Asp)
        .relevance_pruning(pruned)
        .build();
    let start = Instant::now();
    let result = engine
        .answer(&w.queried_peer, &w.query, &w.free_vars)
        .ok()?;
    Some(GroundingMeasurement {
        params: params.to_string(),
        mode: if pruned { "pruned" } else { "full" },
        grounded_rules: result.stats.grounded_rules,
        grounded_atoms: result.stats.grounded_atoms,
        ground_ms: result.stats.ground_time().as_secs_f64() * 1e3,
        answer_ms: start.elapsed().as_secs_f64() * 1e3,
        answers: result.len(),
    })
}

/// B10 — full vs. pruned grounding over star workloads of increasing peer
/// count. Two query placements per sweep point:
///
/// * **hub** — the star's center, whose DEC closure spans every peer: the
///   pruning drops only the scaffolding outside the query's dependency
///   slice, a constant-factor win;
/// * **leaf** — a rim peer with no DECs of its own, whose closure is just
///   itself: the full grounding still carries every peer's facts (they are
///   all in the one specification program), so the pruned grounding stays
///   flat while the full one grows linearly with the system.
pub fn table_b10(peer_counts: &[usize]) -> Vec<GroundingMeasurement> {
    let mut rows = Vec::new();
    for &peers in peer_counts {
        let spec = WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        };
        let w = match generate(&spec) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("skipping sweep point ({spec}): {e}");
                continue;
            }
        };
        let hub_params = format!("hub peers={peers} tuples=10 violations=1");
        rows.extend(measure_grounding(&w, false, &hub_params));
        rows.extend(measure_grounding(&w, true, &hub_params));

        // The same system queried at a rim peer (the lexicographically last
        // one — never the hub P0 for 2+ peers).
        if let Some(leaf) = leaf_view(&w) {
            let leaf_params = format!("leaf peers={peers} tuples=10 violations=1");
            rows.extend(measure_grounding(&leaf, false, &leaf_params));
            rows.extend(measure_grounding(&leaf, true, &leaf_params));
        }
    }
    rows
}

/// The workload re-aimed at its last (rim) peer's canonical query.
fn leaf_view(w: &GeneratedWorkload) -> Option<GeneratedWorkload> {
    let leaf = w.system.peers().last()?;
    if leaf.id == w.queried_peer {
        return None;
    }
    let relation = leaf.schema.relation_names().next()?;
    Some(GeneratedWorkload {
        system: w.system.clone(),
        queried_peer: leaf.id.clone(),
        query: relalg::query::Formula::atom(relation, vec!["X", "Y"]),
        free_vars: w.free_vars.clone(),
        planted_violations: w.planted_violations,
    })
}

/// Render grounding measurements as an aligned text table.
pub fn render_grounding_table(title: &str, rows: &[GroundingMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<34} {:<8} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        "parameters",
        "mode",
        "ground rules",
        "ground atoms",
        "ground (ms)",
        "answer (ms)",
        "answers"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<34} {:<8} {:>12} {:>12} {:>12.3} {:>12.3} {:>9}\n",
            row.params,
            row.mode,
            row.grounded_rules,
            row.grounded_atoms,
            row.ground_ms,
            row.answer_ms,
            row.answers
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_grounding_is_strictly_smaller_with_identical_answers() {
        let rows = table_b10(&[4]);
        assert_eq!(rows.len(), 4, "hub and leaf, full and pruned");
        for pair in rows.chunks(2) {
            let (full, pruned) = (&pair[0], &pair[1]);
            assert_eq!(full.mode, "full");
            assert_eq!(pruned.mode, "pruned");
            assert_eq!(full.params, pruned.params);
            assert_eq!(full.answers, pruned.answers);
            assert!(
                pruned.grounded_rules < full.grounded_rules,
                "{}: pruned {} !< full {}",
                full.params,
                pruned.grounded_rules,
                full.grounded_rules
            );
            assert!(pruned.grounded_atoms < full.grounded_atoms);
        }
        // The leaf's closure is itself: its pruned slice is far smaller
        // than the hub's.
        let hub_pruned = &rows[1];
        let leaf_pruned = &rows[3];
        assert!(leaf_pruned.grounded_rules < hub_pruned.grounded_rules);
    }

    #[test]
    fn grounding_table_renders_both_modes() {
        let rows = table_b10(&[2]);
        let table = render_grounding_table("B10", &rows);
        assert!(table.contains("full"));
        assert!(table.contains("pruned"));
        assert!(table.contains("ground rules"));
    }
}

//! B9 — batched answering throughput vs. worker count.
//!
//! The batch workload is a set of *independent clusters*: pairs of peers
//! `(A_i, B_i)` where `A_i` owns a binary relation with a key-agreement DEC
//! towards the same-trusted `B_i`, with `conflicts` planted key conflicts
//! per cluster. Each cluster's relevant-peer closure is `{A_i, B_i}` —
//! pairwise disjoint — so a batch that queries every cluster partitions into
//! one partition per cluster and [`pdes_core::engine::QueryEngine::answer_batch`]
//! spreads the per-cluster preparation (grounding + 2^conflicts-model
//! solving + per-world evaluation) across the pool. The table reports the
//! same batch at increasing worker counts and the speedup over one worker.

use pdes_core::engine::{Query, QueryEngine, Strategy};
use pdes_core::pca::vars;
use pdes_core::system::{P2PSystem, PeerId, TrustLevel};
use relalg::query::Formula;
use relalg::{RelationSchema, Tuple};
use std::time::Instant;

/// One measured batch run.
#[derive(Debug, Clone)]
pub struct ParallelMeasurement {
    /// Worker pool size the batch ran on.
    pub workers: usize,
    /// Workload parameters, rendered for the table.
    pub params: String,
    /// Queries in the batch.
    pub queries: usize,
    /// Total certain answers across the batch.
    pub answers: usize,
    /// Total worlds (answer sets) evaluated across the batch.
    pub worlds: usize,
    /// Total ground rules instantiated across the batch (warm queries
    /// re-report their artifact's count, so the sum is deterministic — the
    /// grounding-size counter the smoke gate tracks exactly).
    pub grounded_rules: usize,
    /// Wall-clock time of the whole batch in milliseconds.
    pub millis: f64,
    /// Sustained throughput.
    pub queries_per_sec: f64,
    /// Speedup over the 1-worker row of the same sweep (1.0 for the
    /// 1-worker row itself; filled in by [`table_b9`]).
    pub speedup: f64,
}

/// Build a system of `clusters` independent two-peer clusters. Cluster `i`
/// has peers `A<i>`/`B<i>` owning `RA<i>`/`RB<i>` with `tuples` rows each, a
/// key-agreement DEC between them at equal trust, and `conflicts` planted
/// key conflicts — so each cluster independently admits `2^conflicts`
/// solutions.
pub fn cluster_system(clusters: usize, tuples: usize, conflicts: usize) -> P2PSystem {
    assert!(
        conflicts <= tuples,
        "cannot plant more conflicts than tuples"
    );
    let mut sys = P2PSystem::new();
    for i in 0..clusters {
        let a = PeerId::new(format!("A{i}"));
        let b = PeerId::new(format!("B{i}"));
        sys.add_peer(a.clone()).expect("fresh peer");
        sys.add_peer(b.clone()).expect("fresh peer");
        let ra = format!("RA{i}");
        let rb = format!("RB{i}");
        sys.add_relation(&a, RelationSchema::new(&ra, &["x", "y"]))
            .expect("fresh relation");
        sys.add_relation(&b, RelationSchema::new(&rb, &["x", "y"]))
            .expect("fresh relation");
        for j in 0..tuples {
            let key = format!("k{j}");
            sys.insert(&a, &ra, Tuple::strs([&key, &format!("v{j}")]))
                .expect("insert");
            // The first `conflicts` keys disagree on the dependent value.
            let other = if j < conflicts {
                format!("w{j}")
            } else {
                format!("v{j}")
            };
            sys.insert(&b, &rb, Tuple::strs([&key, &other]))
                .expect("insert");
        }
        sys.add_dec(
            &a,
            &b,
            constraints::builders::key_agreement(format!("d{i}"), &ra, &rb).expect("dec"),
        )
        .expect("dec");
        sys.set_trust(&a, TrustLevel::Same, &b).expect("trust");
    }
    sys
}

/// The canonical batch over a cluster system: each cluster's `RA<i>(X, Y)`
/// query, `repeat` times round-robin (so warm repeats exercise the shared
/// cache inside each partition).
pub fn cluster_batch(clusters: usize, repeat: usize) -> Vec<Query> {
    let mut batch = Vec::with_capacity(clusters * repeat);
    for _ in 0..repeat {
        for i in 0..clusters {
            batch.push(Query::new(
                PeerId::new(format!("A{i}")),
                Formula::atom(format!("RA{i}"), vec!["X", "Y"]),
                vars(&["X", "Y"]),
            ));
        }
    }
    batch
}

/// Run one batch on a fresh engine with `workers` workers. Returns `None`
/// if any query errors (the smoke gate treats that as a hard failure).
pub fn run_batch(
    system: &P2PSystem,
    batch: &[Query],
    strategy: Strategy,
    workers: usize,
    params: &str,
) -> Option<ParallelMeasurement> {
    let engine = QueryEngine::builder(system.clone())
        .strategy(strategy)
        .workers(workers)
        .build();
    let start = Instant::now();
    let results = engine.answer_batch(batch);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let mut answers = 0usize;
    let mut worlds = 0usize;
    let mut grounded_rules = 0usize;
    for result in results {
        let a = result.ok()?;
        answers += a.len();
        worlds += a.stats.worlds;
        grounded_rules += a.stats.grounded_rules;
    }
    Some(ParallelMeasurement {
        workers,
        params: params.to_string(),
        queries: batch.len(),
        answers,
        worlds,
        grounded_rules,
        millis,
        queries_per_sec: if millis > 0.0 {
            batch.len() as f64 / (millis / 1e3)
        } else {
            f64::INFINITY
        },
        speedup: 1.0,
    })
}

/// B9 — the batch workload at each worker count, with speedups relative to
/// the first (1-worker) row. Every row answers the identical batch, so the
/// `answers`/`worlds` columns double as an equal-output check.
pub fn table_b9(worker_counts: &[usize]) -> Vec<ParallelMeasurement> {
    let clusters = 6;
    let (tuples, conflicts, repeat) = (16, 6, 3);
    let system = cluster_system(clusters, tuples, conflicts);
    let batch = cluster_batch(clusters, repeat);
    let params = format!("clusters={clusters} tuples={tuples} conflicts={conflicts}");
    let mut rows: Vec<ParallelMeasurement> = Vec::new();
    for &workers in worker_counts {
        if let Some(m) = run_batch(&system, &batch, Strategy::Asp, workers, &params) {
            rows.push(m);
        }
    }
    if let Some(base) = rows.first().map(|r| r.millis) {
        for row in &mut rows {
            row.speedup = if row.millis > 0.0 {
                base / row.millis
            } else {
                f64::INFINITY
            };
        }
    }
    rows
}

/// Render batch measurements as an aligned text table.
pub fn render_parallel_table(title: &str, rows: &[ParallelMeasurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    out.push_str(&format!(
        "{:<40} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>8}\n",
        "parameters",
        "workers",
        "queries",
        "answers",
        "worlds",
        "time (ms)",
        "queries/s",
        "speedup"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<40} {:>8} {:>8} {:>8} {:>8} {:>12.3} {:>12.1} {:>7.2}x\n",
            row.params,
            row.workers,
            row.queries,
            row.answers,
            row.worlds,
            row.millis,
            row.queries_per_sec,
            row.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_system_has_disjoint_closures_and_planted_worlds() {
        let sys = cluster_system(3, 5, 2);
        assert_eq!(sys.peer_count(), 6);
        for i in 0..3 {
            let closure = sys.dependencies_of(&PeerId::new(format!("A{i}")));
            assert_eq!(closure.len(), 2, "cluster {i} closure is its own pair");
        }
        let engine = QueryEngine::builder(sys).strategy(Strategy::Asp).build();
        let answers = engine
            .answer_named(
                &PeerId::new("A0"),
                &Formula::atom("RA0", vec!["X", "Y"]),
                &["X", "Y"],
            )
            .unwrap();
        assert_eq!(answers.stats.worlds, 4, "2^2 planted solutions");
        // Conflicting keys are uncertain, the rest survive.
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn batch_runs_agree_across_worker_counts() {
        let system = cluster_system(3, 5, 2);
        let batch = cluster_batch(3, 2);
        let rows: Vec<ParallelMeasurement> = [1usize, 4]
            .iter()
            .filter_map(|&w| run_batch(&system, &batch, Strategy::Asp, w, "t"))
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].answers, rows[1].answers);
        assert_eq!(rows[0].worlds, rows[1].worlds);
        assert_eq!(rows[0].queries, batch.len());
    }

    #[test]
    fn b9_table_reports_speedups() {
        let rows = table_b9(&[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup - 1.0).abs() < f64::EPSILON);
        let table = render_parallel_table("B9", &rows);
        assert!(table.contains("speedup"));
        assert!(table.contains("workers"));
    }
}

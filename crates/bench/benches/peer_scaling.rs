//! B2 — peer consistent answering latency vs. number of peers (star topology).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::runners::{engine_for, run_asp};
use pdes_core::engine::Strategy;
use std::time::Duration;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_peer_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &peers in &[2usize, 4, 6] {
        let w = generate(&WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::Mixed,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        group.bench_with_input(BenchmarkId::new("asp_cold", peers), &w, |b, w| {
            b.iter(|| run_asp(w, "bench").unwrap().answers)
        });
        let warm = engine_for(&w, Strategy::Asp);
        group.bench_with_input(BenchmarkId::new("asp_warm", peers), &w, |b, w| {
            b.iter(|| {
                warm.answer(&w.queried_peer, &w.query, &w.free_vars)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! B5 — direct vs. transitive (Section 4.3) answering over chains of peers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::runners::{engine_for, run_asp, run_transitive_asp};
use pdes_core::engine::Strategy;
use std::time::Duration;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_transitive_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &len in &[2usize, 3, 4] {
        let w = generate(&WorkloadSpec {
            peers: len,
            tuples_per_relation: 8,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Chain,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        group.bench_with_input(BenchmarkId::new("direct", len), &w, |b, w| {
            b.iter(|| run_asp(w, "bench").unwrap().answers)
        });
        group.bench_with_input(BenchmarkId::new("transitive_cold", len), &w, |b, w| {
            b.iter(|| run_transitive_asp(w, "bench").unwrap().answers)
        });
        let warm = engine_for(&w, Strategy::TransitiveAsp);
        group.bench_with_input(BenchmarkId::new("transitive_warm", len), &w, |b, w| {
            b.iter(|| {
                warm.answer(&w.queried_peer, &w.query, &w.free_vars)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! B3 — peer consistent answering latency vs. the number of planted
//! key-conflict violations (the number of solutions grows exponentially).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::runners::{engine_for, run_asp, run_naive};
use pdes_core::engine::Strategy;
use std::time::Duration;
use workload::{generate, TrustMix, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_violation_ratio");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &v in &[1usize, 2, 4] {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: 12,
            violations_per_dec: v,
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        group.bench_with_input(BenchmarkId::new("asp_cold", v), &w, |b, w| {
            b.iter(|| run_asp(w, "bench").unwrap().answers)
        });
        let warm = engine_for(&w, Strategy::Asp);
        group.bench_with_input(BenchmarkId::new("asp_warm", v), &w, |b, w| {
            b.iter(|| {
                warm.answer(&w.queried_peer, &w.query, &w.free_vars)
                    .unwrap()
                    .len()
            })
        });
        if v <= 2 {
            group.bench_with_input(BenchmarkId::new("naive", v), &w, |b, w| {
                b.iter(|| run_naive(w, "bench").unwrap().answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

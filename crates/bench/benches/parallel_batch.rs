//! B9 — batched answering over closure-disjoint clusters at increasing
//! worker counts. Complements the harness table with statistically
//! repeated timings; on a single-core machine the worker counts tie, on
//! multi-core hardware the disjoint partitions overlap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::parallel::{cluster_batch, cluster_system, run_batch};
use pdes_core::engine::Strategy;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_parallel_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let system = cluster_system(4, 10, 4);
    let batch = cluster_batch(4, 2);
    for &workers in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_batch(&system, &batch, Strategy::Asp, workers, "bench")
                        .expect("batch run")
                        .answers
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

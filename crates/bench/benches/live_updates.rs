//! B8 — sustained query throughput under a mutation stream, comparing the
//! three cache regimes: fresh engines per commit (cold), a single engine
//! whose cache is fully flushed on every commit, and the engine's
//! closure-based incremental invalidation (only artifacts whose
//! relevant-peer closure intersects the touched peers are recomputed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::live::{run_live, LiveMode};
use pdes_core::engine::Strategy;
use std::time::Duration;
use workload::{generate, generate_updates, Topology, TrustMix, UpdateSpec, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_live_updates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &peers in &[3usize, 5] {
        let w = generate(&WorkloadSpec {
            peers,
            tuples_per_relation: 10,
            violations_per_dec: 1,
            trust_mix: TrustMix::AllLess,
            topology: Topology::Star,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        let stream = generate_updates(
            &w,
            &UpdateSpec {
                batches: 6,
                batch_size: 2,
                ..UpdateSpec::default()
            },
        )
        .expect("valid update spec");
        for mode in [LiveMode::Cold, LiveMode::FullFlush, LiveMode::Incremental] {
            group.bench_with_input(
                BenchmarkId::new(mode.label(), peers),
                &(&w, &stream),
                |b, (w, stream)| {
                    b.iter(|| {
                        run_live(w, stream, Strategy::Asp, mode, peers, "bench")
                            .expect("live run")
                            .queries
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

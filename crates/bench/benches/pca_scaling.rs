//! B1 — peer consistent answering latency vs. instance size, for the three
//! mechanisms (rewriting / ASP specification / naive solution enumeration),
//! cold (fresh engine, preparation included) and warm (memoized engine:
//! repeat queries skip re-grounding and re-solving).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::runners::{engine_for, run_asp, run_naive, run_rewriting};
use pdes_core::engine::Strategy;
use std::time::Duration;
use workload::{generate, TrustMix, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_pca_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &n in &[10usize, 20, 40] {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        group.bench_with_input(BenchmarkId::new("rewriting", n), &w, |b, w| {
            b.iter(|| run_rewriting(w, "bench").unwrap().answers)
        });
        group.bench_with_input(BenchmarkId::new("asp_cold", n), &w, |b, w| {
            b.iter(|| run_asp(w, "bench").unwrap().answers)
        });
        let warm = engine_for(&w, Strategy::Asp);
        group.bench_with_input(BenchmarkId::new("asp_warm", n), &w, |b, w| {
            b.iter(|| {
                warm.answer(&w.queried_peer, &w.query, &w.free_vars)
                    .unwrap()
                    .len()
            })
        });
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("naive", n), &w, |b, w| {
                b.iter(|| run_naive(w, "bench").unwrap().answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

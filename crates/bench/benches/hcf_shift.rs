//! B4 — HCF shifting + normal solving vs. the generic disjunctive solver on
//! the Section 3.1 specification program (the Section 4.1 optimization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::solve::{solve_ground, DisjunctiveSolver, SolverConfig};
use datalog::Grounder;
use pdes_core::asp::paper::section31_program;
use relalg::Tuple;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_hcf_shift");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &witnesses in &[2usize, 4, 6] {
        let s2: Vec<Tuple> = (0..witnesses)
            .map(|i| Tuple::strs(["c", &format!("w{i}")]))
            .collect();
        let program = section31_program(
            &[Tuple::strs(["a", "b"])],
            &[],
            &[Tuple::strs(["c", "b"])],
            &s2,
        );
        let ground = Grounder::new(&program).ground().unwrap();
        group.bench_with_input(BenchmarkId::new("hcf_shift", witnesses), &ground, |b, g| {
            b.iter(|| {
                solve_ground(g.clone(), SolverConfig::default())
                    .unwrap()
                    .answer_sets
                    .len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("disjunctive", witnesses),
            &ground,
            |b, g| {
                b.iter(|| {
                    DisjunctiveSolver::new(g, SolverConfig::default())
                        .answer_sets()
                        .unwrap()
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! B6 — peer consistent answering vs. the single-database CQA baseline on
//! the same data and constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdes_bench::runners::{run_asp, run_cqa_baseline};
use std::time::Duration;
use workload::{generate, TrustMix, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_cqa_baseline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for &n in &[10usize, 20, 40] {
        let w = generate(&WorkloadSpec {
            peers: 2,
            tuples_per_relation: n,
            violations_per_dec: 2,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::default()
        })
        .expect("valid workload spec");
        group.bench_with_input(BenchmarkId::new("p2p_asp", n), &w, |b, w| {
            b.iter(|| run_asp(w, "bench").unwrap().answers)
        });
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("single_db_cqa", n), &w, |b, w| {
                b.iter(|| run_cqa_baseline(w, "bench").unwrap().answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! B7 — answer-set engine micro-benchmarks: grounding and solving of the
//! generated specification programs.

use criterion::{criterion_group, criterion_main, Criterion};
use datalog::{solve, Grounder, SolverConfig};
use pdes_bench::experiments::small_spec_program;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_datalog_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let program = small_spec_program();
    group.bench_function("grounding", |b| {
        b.iter(|| Grounder::new(&program).ground().unwrap().rule_count())
    });
    group.bench_function("solve_end_to_end", |b| {
        b.iter(|| {
            solve(&program, SolverConfig::default())
                .unwrap()
                .answer_sets
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

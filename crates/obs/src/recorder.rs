//! The [`Recorder`] sink trait, the zero-cost [`NullRecorder`], and the
//! RAII [`Span`] guard that instrumented code creates around each phase.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A structured key/value payload attached to a span at enter time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (a static label such as `"peer"` or `"worlds"`).
    pub key: &'static str,
    /// Field payload.
    pub value: FieldValue,
}

/// The payload of a [`Field`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integral payload (counts, sizes, versions).
    U64(u64),
    /// A textual payload (peer names, strategy names, slice keys).
    Text(String),
}

impl Field {
    /// A numeric field.
    #[must_use]
    pub fn u64(key: &'static str, value: u64) -> Self {
        Field {
            key,
            value: FieldValue::U64(value),
        }
    }

    /// A textual field.
    #[must_use]
    pub fn text(key: &'static str, value: impl Into<String>) -> Self {
        Field {
            key,
            value: FieldValue::Text(value.into()),
        }
    }
}

/// The sink every instrumented layer reports to.
///
/// All hooks default to no-ops, so a recorder only implements what it needs.
/// The trait is object-safe and `Send + Sync`: engines store an
/// `Arc<dyn Recorder>` and share it across worker threads.
///
/// Span timing protocol: [`Span`] reads the clock **once** at enter and
/// hands that same [`Instant`] to both `span_enter` and `span_exit` (the
/// exit additionally carries the measured duration). A recorder therefore
/// derives `end = enter + duration` in one monotonic timebase, which makes
/// child/parent containment exact rather than subject to clock-read skew.
pub trait Recorder: Send + Sync {
    /// Does this recorder want events at all?
    ///
    /// Instrumented code may use this to skip building field payloads; the
    /// hooks below are safe to call regardless.
    fn is_enabled(&self) -> bool {
        false
    }

    /// A span labelled `label` was entered at `at`.
    fn span_enter(&self, label: &'static str, at: Instant, fields: &[Field]) {
        let _ = (label, at, fields);
    }

    /// The span labelled `label` entered at `at` finished after `dur`.
    ///
    /// `at` is the *enter* instant (the one previously given to
    /// [`Recorder::span_enter`]), not the exit time.
    fn span_exit(&self, label: &'static str, at: Instant, dur: Duration) {
        let _ = (label, at, dur);
    }

    /// Add `delta` to the named monotonic counter.
    fn count(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Record one observation of `value` in the named histogram.
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

impl<R: Recorder + ?Sized> Recorder for &R {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    fn span_enter(&self, label: &'static str, at: Instant, fields: &[Field]) {
        (**self).span_enter(label, at, fields);
    }
    fn span_exit(&self, label: &'static str, at: Instant, dur: Duration) {
        (**self).span_exit(label, at, dur);
    }
    fn count(&self, name: &'static str, delta: u64) {
        (**self).count(name, delta);
    }
    fn observe(&self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }
}

impl<R: Recorder + ?Sized> Recorder for Arc<R> {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
    fn span_enter(&self, label: &'static str, at: Instant, fields: &[Field]) {
        (**self).span_enter(label, at, fields);
    }
    fn span_exit(&self, label: &'static str, at: Instant, dur: Duration) {
        (**self).span_exit(label, at, dur);
    }
    fn count(&self, name: &'static str, delta: u64) {
        (**self).count(name, delta);
    }
    fn observe(&self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }
}

/// The default recorder: every hook is a no-op.
///
/// Instrumentation through a `NullRecorder` costs one pair of monotonic
/// clock reads per span (the measurement the caller keeps) and nothing
/// else — no allocation, no locking, no buffering. The smoke gate holds
/// this path to the same wall-time budget as the uninstrumented engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// An RAII guard measuring one phase.
///
/// Created by [`Span::enter`]; ended explicitly by [`Span::finish`] (which
/// returns the measured [`Duration`], the *identical* value reported to the
/// recorder) or implicitly on drop. The guard reads the clock exactly once
/// at enter and once at exit.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span<'r> {
    recorder: &'r dyn Recorder,
    label: &'static str,
    start: Instant,
    active: bool,
}

impl<'r> Span<'r> {
    /// Enter a span with no fields.
    pub fn enter(recorder: &'r dyn Recorder, label: &'static str) -> Self {
        Self::enter_with(recorder, label, &[])
    }

    /// Enter a span carrying structured fields.
    pub fn enter_with(recorder: &'r dyn Recorder, label: &'static str, fields: &[Field]) -> Self {
        let start = Instant::now();
        recorder.span_enter(label, start, fields);
        Span {
            recorder,
            label,
            start,
            active: true,
        }
    }

    /// The instant the span was entered.
    #[must_use]
    pub fn started_at(&self) -> Instant {
        self.start
    }

    /// Finish the span, returning the measured duration.
    ///
    /// The returned duration is bit-for-bit the one reported to the
    /// recorder, so statistics built from it agree exactly with the trace.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.active = false;
        self.recorder.span_exit(self.label, self.start, dur);
        dur
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.active {
            let dur = self.start.elapsed();
            self.recorder.span_exit(self.label, self.start, dur);
        }
    }
}

/// Narrow a [`Duration`] to whole nanoseconds in a `u64`.
///
/// Saturates at `u64::MAX` (≈584 years), which no real measurement reaches;
/// the engine stores all phase timings in this form.
#[must_use]
pub fn duration_nanos(dur: Duration) -> u64 {
    u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    struct Probe {
        enters: AtomicU64,
        exits: AtomicU64,
        last: Mutex<Option<(&'static str, Instant, Duration)>>,
    }

    impl Recorder for Probe {
        fn is_enabled(&self) -> bool {
            true
        }
        fn span_enter(&self, _label: &'static str, _at: Instant, _fields: &[Field]) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn span_exit(&self, label: &'static str, at: Instant, dur: Duration) {
            self.exits.fetch_add(1, Ordering::Relaxed);
            *self.last.lock().unwrap() = Some((label, at, dur));
        }
    }

    #[test]
    fn finish_reports_the_returned_duration() {
        let probe = Probe::default();
        let span = Span::enter(&probe, "phase");
        let start = span.started_at();
        let dur = span.finish();
        let (label, at, reported) = probe.last.lock().unwrap().take().unwrap();
        assert_eq!(label, "phase");
        assert_eq!(at, start);
        assert_eq!(reported, dur);
        assert_eq!(probe.enters.load(Ordering::Relaxed), 1);
        assert_eq!(probe.exits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_emits_exit_exactly_once() {
        let probe = Probe::default();
        {
            let _span = Span::enter(&probe, "scoped");
        }
        assert_eq!(probe.exits.load(Ordering::Relaxed), 1);
        let span = Span::enter(&probe, "finished");
        span.finish();
        assert_eq!(probe.exits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn null_recorder_spans_still_measure() {
        let span = Span::enter(&NullRecorder, "anything");
        assert!(!NullRecorder.is_enabled());
        let dur = span.finish();
        assert!(dur <= Duration::from_secs(60));
    }

    #[test]
    fn forwarding_impls_delegate() {
        let probe = Arc::new(Probe::default());
        assert!(probe.is_enabled());
        let as_dyn: Arc<dyn Recorder> = probe.clone();
        as_dyn.count("noop", 1);
        let span = Span::enter(&as_dyn, "via-arc");
        span.finish();
        assert_eq!(probe.exits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duration_nanos_narrowing() {
        assert_eq!(duration_nanos(Duration::from_nanos(1234)), 1234);
        assert_eq!(duration_nanos(Duration::from_secs(2)), 2_000_000_000);
        assert_eq!(duration_nanos(Duration::MAX), u64::MAX);
    }
}

//! Named counters and HDR-style histograms behind a [`MetricsRegistry`],
//! plus the Prometheus-style text exporter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of linear buckets per power-of-two range (2^4 sub-buckets keeps
/// the relative quantile error at or below 1/16 = 6.25%).
const SUB_BUCKETS: usize = 16;
/// Values below `SUB_BUCKETS` get one exact bucket each.
const LINEAR_CUTOFF: u64 = SUB_BUCKETS as u64;
/// Total bucket count: 16 exact low buckets + 60 ranges × 16 sub-buckets
/// (exponents 4..=63).
const BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// An HDR-style log-linear histogram of `u64` observations (the engine
/// records durations as whole nanoseconds).
///
/// Values below 16 are exact; larger values land in one of 16 linear
/// sub-buckets per power-of-two range, bounding the relative error of any
/// reported quantile by 6.25%. Recording is a single relaxed atomic
/// increment, so histograms can be shared freely across threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize; // 4..=63
    let mantissa = ((value >> (exp - 4)) & 0xF) as usize;
    (exp - 4) * SUB_BUCKETS + SUB_BUCKETS + mantissa
}

/// Midpoint of the value range covered by `index` (exact below the linear
/// cutoff).
fn bucket_value(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let exp = (index - SUB_BUCKETS) / SUB_BUCKETS + 4;
    let mantissa = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let lower = (LINEAR_CUTOFF + mantissa) << (exp - 4);
    let width = 1u64 << (exp - 4);
    lower + (width - 1) / 2
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded distribution, within
    /// the histogram's 6.25% bucket resolution. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * total), at least 1.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_value(index).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary (count/sum/min/max and the standard
    /// percentiles).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Arithmetic mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Metrics are created on first use and shared via `Arc`, so hot paths can
/// resolve a metric once and update it lock-free afterwards.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the named counter.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Get or create the named histogram.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Current value of the named counter (0 when it was never touched).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
            .map_or(0, |c| c.get())
    }

    /// Snapshot of every counter, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, counter)| (*name, counter.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSummary)> {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(name, histogram)| (*name, histogram.summary()))
            .collect()
    }

    /// Render every metric as Prometheus text exposition format.
    ///
    /// Metric names have non-alphanumeric characters folded to `_` and get
    /// a `pdes_` prefix; histograms render as summaries with
    /// `quantile="0.5|0.95|0.99"` labels plus `_sum`/`_count` series.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, s) in self.histograms() {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", s.p50));
            out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", s.p95));
            out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", s.p99));
            out.push_str(&format!("{name}_sum {}\n", s.sum));
            out.push_str(&format!("{name}_count {}\n", s.count));
        }
        out
    }
}

fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pdes_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_is_order_preserving_and_bounded() {
        let mut last = 0usize;
        for value in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "index {index} out of range for {value}");
            assert!(index >= last, "bucketing must be monotone");
            last = index;
            // The representative value stays within 6.25% of the original.
            let rep = bucket_value(index);
            if value >= LINEAR_CUTOFF {
                let err = rep.abs_diff(value) as f64 / value as f64;
                assert!(err <= 0.0625, "value {value} rep {rep} err {err}");
            } else {
                assert_eq!(rep, value);
            }
        }
    }

    #[test]
    fn exact_quantiles_below_linear_cutoff() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantile_error_is_bounded_on_wide_ranges() {
        let h = Histogram::new();
        for v in (1..=10_000u64).map(|v| v * 97) {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let exact = 5_000.0 * 97.0;
        assert!(
            (p50 - exact).abs() / exact <= 0.0625,
            "p50 {p50} vs {exact}"
        );
        let p99 = h.quantile(0.99) as f64;
        let exact = 9_900.0 * 97.0;
        assert!(
            (p99 - exact).abs() / exact <= 0.0625,
            "p99 {p99} vs {exact}"
        );
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_shares_metrics_by_name() {
        let registry = MetricsRegistry::new();
        registry.counter("cache.hit").add(2);
        registry.counter("cache.hit").add(3);
        assert_eq!(registry.counter_value("cache.hit"), 5);
        assert_eq!(registry.counter_value("never"), 0);
        registry.histogram("span.query").record(7);
        registry.histogram("span.query").record(9);
        let histograms = registry.histograms();
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms[0].1.count, 2);
        assert_eq!(registry.counters(), vec![("cache.hit", 5)]);
    }

    #[test]
    fn prometheus_text_renders_counters_and_summaries() {
        let registry = MetricsRegistry::new();
        registry.counter("cache.hit").add(4);
        registry.histogram("span.query_nanos").record(8);
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE pdes_cache_hit counter\npdes_cache_hit 4\n"));
        assert!(text.contains("# TYPE pdes_span_query_nanos summary"));
        assert!(text.contains("pdes_span_query_nanos{quantile=\"0.5\"} 8"));
        assert!(text.contains("pdes_span_query_nanos_count 1"));
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for v in 0..1_000u64 {
                        h.record(v);
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
        assert_eq!(c.get(), 4_000);
    }
}

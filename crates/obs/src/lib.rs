//! Observability primitives for the peer-to-peer data-exchange engine.
//!
//! The crate is dependency-free (like `pdes-exec`) and provides three
//! layers that the rest of the workspace threads through its hot paths:
//!
//! - [`Recorder`]: the sink trait. The default [`NullRecorder`] keeps every
//!   hook a no-op so instrumented code pays only an `Instant::now()` pair
//!   per span; [`TraceRecorder`] buffers structured events per thread and
//!   feeds a shared [`MetricsRegistry`].
//! - [`Span`]: an RAII guard that measures a phase once and reports the
//!   *same* [`std::time::Duration`] to both the caller (via
//!   [`Span::finish`]) and the recorder — so engine statistics rebuilt from
//!   span durations can never disagree with the exported trace.
//! - Exporters: Chrome trace-event JSON ([`Trace::chrome_json`], loadable
//!   in `chrome://tracing` / Perfetto), a flat self/total text profile
//!   ([`Trace::text_profile`]), and a Prometheus-style text snapshot
//!   ([`MetricsRegistry::prometheus_text`]).
//!
//! # Wiring example
//!
//! ```
//! use pdes_obs::{NullRecorder, Recorder, Span, TraceRecorder};
//!
//! let recorder = TraceRecorder::new();
//! {
//!     let outer = Span::enter(&recorder, "query");
//!     {
//!         let inner = Span::enter(&recorder, "ground");
//!         recorder.count("cache.miss", 1);
//!         inner.finish();
//!     }
//!     outer.finish();
//! }
//! let trace = recorder.trace();
//! assert_eq!(trace.span_count(), 2);
//! assert_eq!(trace.malformed(), 0);
//! // The same code instrumented with the null recorder records nothing.
//! let span = Span::enter(&NullRecorder, "query");
//! assert!(span.finish() >= std::time::Duration::ZERO);
//! ```
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{Counter, Histogram, HistogramSummary, MetricsRegistry};
pub use recorder::{duration_nanos, Field, FieldValue, NullRecorder, Recorder, Span};
pub use trace::{parse_chrome_trace, ChromeEvent, SpanRecord, Trace, TraceRecorder};

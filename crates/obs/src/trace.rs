//! The buffering [`TraceRecorder`], the replayed [`Trace`] snapshot, and
//! the Chrome trace-event / text-profile exporters.

use crate::metrics::MetricsRegistry;
use crate::recorder::{duration_nanos, Field, FieldValue, Recorder};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One buffered raw event.
#[derive(Debug, Clone)]
enum Event {
    Enter {
        label: &'static str,
        at_nanos: u64,
        fields: Vec<Field>,
    },
    Exit {
        label: &'static str,
        dur_nanos: u64,
    },
}

/// Per-thread event buffer. Only its owning thread appends, so the mutex
/// is uncontended on the hot path; snapshots lock it briefly to copy.
#[derive(Debug)]
struct ThreadLog {
    tid: u64,
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct TraceShared {
    /// Distinguishes recorders in the thread-local buffer cache even when
    /// an allocation address is reused.
    id: u64,
    registry: MetricsRegistry,
    threads: Mutex<Vec<Arc<ThreadLog>>>,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Cache of this thread's buffer per recorder id — each event then
    /// locks only the calling thread's own (uncontended) buffer mutex.
    static THREAD_LOGS: RefCell<Vec<(u64, Arc<ThreadLog>)>> = const { RefCell::new(Vec::new()) };
}

/// A buffering [`Recorder`]: structured span events land in per-thread
/// buffers stamped against one shared monotonic epoch, and every counter /
/// histogram update feeds the recorder's [`MetricsRegistry`].
///
/// On span exit the recorder additionally observes the span's duration in a
/// histogram named after the span label, so per-phase percentiles fall out
/// of the same machinery as explicit [`Recorder::observe`] calls.
///
/// Cloning is cheap and shares all state; hand the engine an
/// `Arc::new(recorder.clone())` and keep a clone to export from.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    epoch: Instant,
    shared: Arc<TraceShared>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A fresh recorder; its epoch (trace time zero) is "now".
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder {
            epoch: Instant::now(),
            shared: Arc::new(TraceShared {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                registry: MetricsRegistry::new(),
                threads: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The metrics registry fed by this recorder's counter/histogram hooks.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    fn log(&self) -> Arc<ThreadLog> {
        let id = self.shared.id;
        THREAD_LOGS.with(|cache| {
            if let Some((_, log)) = cache.borrow().iter().find(|(k, _)| *k == id) {
                return Arc::clone(log);
            }
            let mut threads = self.shared.threads.lock().expect("trace recorder poisoned");
            let log = Arc::new(ThreadLog {
                tid: threads.len() as u64,
                events: Mutex::new(Vec::new()),
            });
            threads.push(Arc::clone(&log));
            cache.borrow_mut().push((id, Arc::clone(&log)));
            log
        })
    }

    fn push(&self, event: Event) {
        let log = self.log();
        log.events
            .lock()
            .expect("trace buffer poisoned")
            .push(event);
    }

    /// Replay the buffered events into a structured [`Trace`] snapshot.
    ///
    /// Non-destructive: recording may continue afterwards (spans still open
    /// at snapshot time count as malformed in the snapshot).
    #[must_use]
    pub fn trace(&self) -> Trace {
        let threads: Vec<Arc<ThreadLog>> = self
            .shared
            .threads
            .lock()
            .expect("trace recorder poisoned")
            .clone();
        let mut spans = Vec::new();
        let mut malformed = 0usize;
        let mut event_count = 0usize;
        for log in threads {
            let events = log.events.lock().expect("trace buffer poisoned").clone();
            event_count += events.len();
            // Stack replay: spans are RAII guards, so within one thread the
            // exits must match the enters in LIFO order.
            let mut stack: Vec<usize> = Vec::new();
            for event in events {
                match event {
                    Event::Enter {
                        label,
                        at_nanos,
                        fields,
                    } => {
                        let index = spans.len();
                        spans.push(SpanRecord {
                            label,
                            tid: log.tid,
                            start_nanos: at_nanos,
                            dur_nanos: 0,
                            depth: stack.len(),
                            parent: stack.last().copied(),
                            fields,
                            closed: false,
                        });
                        stack.push(index);
                    }
                    Event::Exit { label, dur_nanos } => {
                        match stack.last().copied() {
                            Some(top) if spans[top].label == label => {
                                stack.pop();
                                spans[top].dur_nanos = dur_nanos;
                                spans[top].closed = true;
                            }
                            _ => malformed += 1,
                        };
                    }
                }
            }
            malformed += stack.len();
        }
        spans.sort_by_key(|s| (s.tid, s.start_nanos, s.depth));
        Trace {
            spans,
            malformed,
            event_count,
        }
    }

    /// Drop all buffered events (the registry is left untouched).
    pub fn clear(&self) {
        let threads = self.shared.threads.lock().expect("trace recorder poisoned");
        for log in threads.iter() {
            log.events.lock().expect("trace buffer poisoned").clear();
        }
    }
}

impl Recorder for TraceRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, label: &'static str, at: Instant, fields: &[Field]) {
        self.push(Event::Enter {
            label,
            at_nanos: duration_nanos(at.duration_since(self.epoch)),
            fields: fields.to_vec(),
        });
    }

    fn span_exit(&self, label: &'static str, _at: Instant, dur: Duration) {
        let dur_nanos = duration_nanos(dur);
        self.push(Event::Exit { label, dur_nanos });
        self.shared.registry.histogram(label).record(dur_nanos);
    }

    fn count(&self, name: &'static str, delta: u64) {
        self.shared.registry.counter(name).add(delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.shared.registry.histogram(name).record(value);
    }
}

/// One completed (or, if `closed` is false, dangling) span in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The label the span was entered with.
    pub label: &'static str,
    /// Recorder-local thread index the span ran on.
    pub tid: u64,
    /// Start offset from the recorder's epoch, in nanoseconds.
    pub start_nanos: u64,
    /// Measured duration in nanoseconds (0 for unclosed spans).
    pub dur_nanos: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: usize,
    /// Index (into [`Trace::spans`]) of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Structured fields attached at enter time.
    pub fields: Vec<Field>,
    /// Whether a matching exit was seen.
    pub closed: bool,
}

impl SpanRecord {
    /// End offset from the recorder's epoch, in nanoseconds.
    ///
    /// Exact by construction: the recorder derives both the start and the
    /// duration from the same enter [`Instant`], so a child's `end_nanos`
    /// can never exceed its parent's.
    #[must_use]
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos + self.dur_nanos
    }
}

/// A replayed snapshot of everything a [`TraceRecorder`] buffered.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, sorted by `(tid, start, depth)`.
    pub spans: Vec<SpanRecord>,
    malformed: usize,
    event_count: usize,
}

impl Trace {
    /// Number of spans in the snapshot (including unclosed ones).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of raw enter/exit events the recorder buffered.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// Number of protocol violations seen during replay: exits that match
    /// no open span plus spans still open at snapshot time.
    #[must_use]
    pub fn malformed(&self) -> usize {
        self.malformed
    }

    /// All spans with the given label.
    #[must_use]
    pub fn spans_labelled(&self, label: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.label == label).collect()
    }

    /// Render the snapshot as Chrome trace-event JSON (the "JSON array
    /// format" with complete `ph:"X"` events), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// Timestamps and durations are microseconds with three decimal places,
    /// i.e. exact nanosecond precision survives the round trip through
    /// [`parse_chrome_trace`].
    #[must_use]
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (index, span) in self.spans.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"pdes\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(span.label),
                micros_decimal(span.start_nanos),
                micros_decimal(span.dur_nanos),
                span.tid
            );
            if !span.fields.is_empty() {
                out.push_str(",\"args\":{");
                for (findex, field) in span.fields.iter().enumerate() {
                    if findex > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:", json_string(field.key));
                    match &field.value {
                        FieldValue::U64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        FieldValue::Text(v) => out.push_str(&json_string(v)),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Render a flat per-label profile: call count, total (inclusive) time,
    /// and self time (total minus direct children), sorted by self time.
    #[must_use]
    pub fn text_profile(&self) -> String {
        #[derive(Default)]
        struct Row {
            count: u64,
            total: u64,
            child: u64,
        }
        let mut rows: BTreeMap<&'static str, Row> = BTreeMap::new();
        for span in &self.spans {
            let row = rows.entry(span.label).or_default();
            row.count += 1;
            row.total += span.dur_nanos;
            if let Some(parent) = span.parent {
                rows.entry(self.spans[parent].label).or_default().child += span.dur_nanos;
            }
        }
        let mut sorted: Vec<(&'static str, Row)> = rows.into_iter().collect();
        sorted.sort_by_key(|(label, row)| {
            (
                std::cmp::Reverse(row.total.saturating_sub(row.child)),
                *label,
            )
        });
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>12} {:>12}",
            "span", "count", "total", "self"
        );
        for (label, row) in sorted {
            let _ = writeln!(
                out,
                "{:<24} {:>7} {:>12} {:>12}",
                label,
                row.count,
                fmt_nanos(row.total),
                fmt_nanos(row.total.saturating_sub(row.child))
            );
        }
        out
    }
}

/// Format nanoseconds for the text profile with a readable unit.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}us", nanos as f64 / 1e3)
    }
}

/// Nanoseconds rendered as a decimal microsecond literal with exact
/// thousandths (`1234567` → `"1234.567"`).
fn micros_decimal(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One event parsed back out of Chrome trace-event JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (the span label).
    pub name: String,
    /// Phase — `"X"` for the complete events this crate emits.
    pub ph: String,
    /// Start offset in nanoseconds.
    pub ts_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
    /// Process id.
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
    /// `args` payload, stringified per value.
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    /// End offset in nanoseconds.
    #[must_use]
    pub fn end_nanos(&self) -> u64 {
        self.ts_nanos + self.dur_nanos
    }
}

/// Parse Chrome trace-event JSON (either the bare event array or the
/// `{"traceEvents": [...]}` object form) back into events.
///
/// Built for round-tripping [`Trace::chrome_json`] output in tests and
/// tooling; it accepts any standard JSON but only extracts the fields
/// [`ChromeEvent`] carries.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let value = json::parse(text)?;
    let events = match &value {
        json::Value::Array(items) => items.clone(),
        json::Value::Object(members) => match members.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, json::Value::Array(items))) => items.clone(),
            _ => return Err("missing traceEvents array".to_string()),
        },
        _ => return Err("expected a trace object or event array".to_string()),
    };
    let mut out = Vec::with_capacity(events.len());
    for event in events {
        let json::Value::Object(members) = event else {
            return Err("trace event is not an object".to_string());
        };
        let get = |key: &str| members.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = match get("name") {
            Some(json::Value::String(s)) => s.clone(),
            _ => return Err("trace event missing name".to_string()),
        };
        let ph = match get("ph") {
            Some(json::Value::String(s)) => s.clone(),
            _ => return Err("trace event missing ph".to_string()),
        };
        let micros = |key: &str| -> Result<u64, String> {
            match get(key) {
                Some(json::Value::Number(n)) => Ok((n * 1000.0).round() as u64),
                None => Ok(0),
                _ => Err(format!("trace event field {key} is not a number")),
            }
        };
        let int = |key: &str| -> Result<u64, String> {
            match get(key) {
                Some(json::Value::Number(n)) => Ok(n.round() as u64),
                None => Ok(0),
                _ => Err(format!("trace event field {key} is not a number")),
            }
        };
        let args = match get("args") {
            Some(json::Value::Object(members)) => members
                .iter()
                .map(|(k, v)| (k.clone(), v.to_display_string()))
                .collect(),
            _ => Vec::new(),
        };
        out.push(ChromeEvent {
            name,
            ph,
            ts_nanos: micros("ts")?,
            dur_nanos: micros("dur")?,
            pid: int("pid")?,
            tid: int("tid")?,
            args,
        });
    }
    Ok(out)
}

/// A minimal JSON parser — just enough to round-trip the crate's own
/// exports without external dependencies.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Stringify a scalar for the `args` map.
        pub fn to_display_string(&self) -> String {
            match self {
                Value::Null => "null".to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Number(n) => {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
                Value::String(s) => s.clone(),
                Value::Array(_) | Value::Object(_) => "<nested>".to_string(),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_keyword(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            members.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Span;

    #[test]
    fn nested_spans_replay_with_parents_and_exact_containment() {
        let recorder = TraceRecorder::new();
        {
            let outer = Span::enter_with(&recorder, "query", &[Field::text("peer", "p1")]);
            {
                let inner = Span::enter(&recorder, "ground");
                inner.finish();
            }
            {
                let inner = Span::enter(&recorder, "solve");
                inner.finish();
            }
            outer.finish();
        }
        let trace = recorder.trace();
        assert_eq!(trace.span_count(), 3);
        assert_eq!(trace.event_count(), 6);
        assert_eq!(trace.malformed(), 0);
        let query = trace.spans_labelled("query")[0];
        assert_eq!(query.depth, 0);
        assert_eq!(query.fields, vec![Field::text("peer", "p1")]);
        let mut child_total = 0;
        for label in ["ground", "solve"] {
            let child = trace.spans_labelled(label)[0];
            assert!(child.closed);
            assert!(child.start_nanos >= query.start_nanos);
            assert!(child.end_nanos() <= query.end_nanos(), "exact containment");
            assert_eq!(trace.spans[child.parent.unwrap()].label, "query");
            child_total += child.dur_nanos;
        }
        assert!(child_total <= query.dur_nanos);
    }

    #[test]
    fn exit_durations_feed_per_label_histograms() {
        let recorder = TraceRecorder::new();
        Span::enter(&recorder, "phase").finish();
        Span::enter(&recorder, "phase").finish();
        let histograms = recorder.registry().histograms();
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms[0].0, "phase");
        assert_eq!(histograms[0].1.count, 2);
    }

    #[test]
    fn dangling_spans_count_as_malformed() {
        let recorder = TraceRecorder::new();
        let span = Span::enter(&recorder, "open");
        let trace = recorder.trace();
        assert_eq!(trace.span_count(), 1);
        assert_eq!(trace.malformed(), 1);
        assert!(!trace.spans[0].closed);
        span.finish();
        assert_eq!(recorder.trace().malformed(), 0);
    }

    #[test]
    fn clear_drops_events_but_keeps_metrics() {
        let recorder = TraceRecorder::new();
        recorder.count("cache.hit", 1);
        Span::enter(&recorder, "phase").finish();
        recorder.clear();
        assert_eq!(recorder.trace().span_count(), 0);
        assert_eq!(recorder.registry().counter_value("cache.hit"), 1);
    }

    #[test]
    fn threads_get_distinct_buffers() {
        let recorder = TraceRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let recorder = recorder.clone();
                scope.spawn(move || {
                    Span::enter(&recorder, "worker").finish();
                });
            }
        });
        Span::enter(&recorder, "main").finish();
        let trace = recorder.trace();
        assert_eq!(trace.span_count(), 4);
        assert_eq!(trace.malformed(), 0);
        let tids: std::collections::BTreeSet<u64> = trace.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4, "each thread owns a buffer");
    }

    #[test]
    fn distinct_recorders_do_not_share_thread_buffers() {
        let a = TraceRecorder::new();
        let b = TraceRecorder::new();
        Span::enter(&a, "only-a").finish();
        Span::enter(&b, "only-b").finish();
        assert_eq!(a.trace().span_count(), 1);
        assert_eq!(b.trace().span_count(), 1);
        assert_eq!(a.trace().spans[0].label, "only-a");
        assert_eq!(b.trace().spans[0].label, "only-b");
    }

    #[test]
    fn chrome_json_round_trips_exact_nanos() {
        let recorder = TraceRecorder::new();
        {
            let outer = Span::enter_with(
                &recorder,
                "query",
                &[Field::text("peer", "p\"1\""), Field::u64("worlds", 3)],
            );
            Span::enter(&recorder, "eval").finish();
            outer.finish();
        }
        let trace = recorder.trace();
        let json = trace.chrome_json();
        let events = parse_chrome_trace(&json).expect("parse own export");
        assert_eq!(events.len(), trace.span_count());
        for (event, span) in events.iter().zip(trace.spans.iter()) {
            assert_eq!(event.name, span.label);
            assert_eq!(event.ph, "X");
            assert_eq!(event.ts_nanos, span.start_nanos, "exact ts round trip");
            assert_eq!(event.dur_nanos, span.dur_nanos, "exact dur round trip");
            assert_eq!(event.pid, 1);
            assert_eq!(event.tid, span.tid);
        }
        let query = events.iter().find(|e| e.name == "query").unwrap();
        assert_eq!(
            query.args,
            vec![
                ("peer".to_string(), "p\"1\"".to_string()),
                ("worlds".to_string(), "3".to_string())
            ]
        );
    }

    #[test]
    fn text_profile_accounts_self_vs_total() {
        let recorder = TraceRecorder::new();
        {
            let outer = Span::enter(&recorder, "query");
            Span::enter(&recorder, "solve").finish();
            outer.finish();
        }
        let profile = recorder.trace().text_profile();
        assert!(profile.contains("span"), "{profile}");
        assert!(profile.contains("query"), "{profile}");
        assert!(profile.contains("solve"), "{profile}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"other\":1}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
    }
}

//! # pdes-store — the peer-sharded serving runtime
//!
//! The paper models a network of *autonomous* peers; this crate makes the
//! reproduction serve like one. It builds on the [`PeerStore`] trait (defined
//! in `pdes-core`, re-exported here): the single API through which the
//! engine, the session layer and the tooling reach peer state.
//!
//! * [`InProcessStore`] (re-exported) — the canonical single-process
//!   implementation: one authoritative `P2PSystem` behind a lock.
//! * [`ShardedStore`] — peers partitioned across N worker shards by
//!   *closure-connected components*, served over an in-process loopback
//!   transport ([`transport`]). Peers that never share a relevant-peer
//!   closure never share a shard queue, so closure-disjoint reads and
//!   commits execute on their owning shards concurrently; a query whose
//!   closure spans shards fans out and reassembles deterministically.
//!
//! ## Partitioning
//!
//! Two peers belong to the same *closure-connected component* when a chain
//! of DECs links them (direction ignored — the same union-find construction
//! the engine's `answer_batch` uses to split independent queries). A
//! component is the unit of placement: splitting one across shards would
//! turn every query over it into a fan-out. Components are assigned
//! round-robin, in order of their lexicographically smallest peer, so the
//! assignment is deterministic and reproducible.
//!
//! ## Determinism
//!
//! Shard worker threads process their queues in order; the coordinator
//! collects fan-out replies in shard-index order through
//! [`pdes_exec::Executor::try_map_indexed`], so answers and version stamps
//! are byte-identical across [`pdes_exec::ExecConfig`] pool sizes — the
//! same contract the engine makes for parallel query answering.
//!
//! ## Observability
//!
//! With a recorder installed ([`ShardedStoreBuilder::recorder`]), every
//! transport round-trip emits a `transport.roundtrip` span tagged with its
//! shard, multi-shard fan-outs emit a `shard.dispatch` span, and the
//! `shard.local` / `shard.remote` counters classify every store operation
//! (single-shard vs. cross-shard). The same tallies are always available
//! pull-style via [`ShardedStore::metrics`].

#![warn(missing_docs)]

pub use pdes_core::store::{InProcessStore, MvccStats, PeerStore, Snapshot, VersionMap};

use pdes_core::system::{P2PSystem, PeerId};
use pdes_core::{CoreError, Result};
use pdes_exec::{ExecConfig, Executor};
use pdes_obs::{Field, NullRecorder, Recorder, Span};
use relalg::{Database, Delta, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub mod transport;

use transport::{Envelope, ShardRequest, ShardResponse};

/// A snapshot of a [`ShardedStore`]'s operation counters.
///
/// Marked `#[non_exhaustive]`: obtain it via [`ShardedStore::metrics`]; new
/// counters can be added without a breaking release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreMetrics {
    /// Store operations served by a single shard (the operation's peers all
    /// lived on one shard — no cross-shard fan-out).
    pub local: u64,
    /// Store operations that fanned out across two or more shards.
    pub remote: u64,
}

/// Live counters behind [`StoreMetrics`] (atomics: operations may be issued
/// from concurrent batch workers).
#[derive(Debug, Default)]
struct Counters {
    local: AtomicU64,
    remote: AtomicU64,
}

/// One worker shard, as seen from the coordinator: its request queue and
/// its thread (joined on drop).
struct ShardHandle {
    sender: Sender<Envelope>,
    thread: Option<JoinHandle<()>>,
}

/// A [`PeerStore`] that partitions peers across worker shards by
/// closure-connected components, served over an in-process loopback
/// transport.
///
/// Construct with [`ShardedStore::builder`]. Observationally equivalent to
/// [`InProcessStore`] over the same system — same answers, same version
/// stamps — apart from [`CoreError::Transport`] surfacing transport
/// failures; the workspace's `tests/sharding.rs` property-checks that
/// equivalence across strategies, shard counts and live commits.
pub struct ShardedStore {
    /// Topology replica served locally (instances empty).
    topology: P2PSystem,
    /// Peer → shard index (total over the system's peers).
    assignment: BTreeMap<PeerId, usize>,
    shards: Vec<ShardHandle>,
    exec: Executor,
    recorder: Arc<dyn Recorder>,
    counters: Counters,
    /// Coordinator-side epoch mirror: an [`InProcessStore`] over the same
    /// system, replaying every worker-confirmed mutation. [`PeerStore::pin`]
    /// serves snapshots from it without a transport round-trip, and because
    /// the mirror sees the identical mutation sequence, its epochs and
    /// version stamps are bit-identical to a single-store oracle (checked by
    /// `tests/sharding.rs`).
    mirror: InProcessStore,
    /// Serializes mutations across shards so the mirror replays them in the
    /// exact order the workers applied them. Reads and pins never take it.
    commit: Mutex<()>,
}

/// Builder for [`ShardedStore`].
#[must_use = "a builder does nothing until `build` is called"]
pub struct ShardedStoreBuilder {
    system: P2PSystem,
    shards: usize,
    exec: ExecConfig,
    recorder: Option<Arc<dyn Recorder>>,
}

impl ShardedStoreBuilder {
    /// Number of worker shards (clamped to at least 1). Components are
    /// assigned round-robin, so shard counts beyond the component count
    /// leave the extra shards empty (but running).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The execution configuration for cross-shard fan-outs: round-trips to
    /// distinct shards are collected through
    /// [`pdes_exec::Executor::try_map_indexed`] under this configuration.
    /// Defaults to [`ExecConfig::sequential`]; answers are identical for
    /// every pool size.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Install an observability recorder for `transport.roundtrip` /
    /// `shard.dispatch` spans and the `shard.{local,remote}` counters.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Partition the system and spawn the shard workers.
    pub fn build(self) -> ShardedStore {
        let recorder = self
            .recorder
            .unwrap_or_else(|| Arc::new(NullRecorder) as Arc<dyn Recorder>);
        let topology = self.system.topology_only();
        let assignment = assign_components(&self.system, self.shards);
        let mut shards = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            // Each worker owns the topology replica plus the *real*
            // instances of exactly its peers.
            let mut state = topology.clone();
            let mut versions = VersionMap::new();
            for (peer, &owner) in &assignment {
                if owner == shard {
                    let instance = self
                        .system
                        .peer(peer)
                        .expect("assignment only maps existing peers")
                        .instance
                        .clone();
                    state
                        .set_instance(peer, instance)
                        .expect("replica shares the system's peers");
                    versions.insert(peer.clone(), 0);
                }
            }
            let (sender, receiver) = std::sync::mpsc::channel::<Envelope>();
            let thread = std::thread::spawn(move || shard_worker(state, versions, receiver));
            shards.push(ShardHandle {
                sender,
                thread: Some(thread),
            });
        }
        ShardedStore {
            topology,
            assignment,
            shards,
            exec: Executor::new(self.exec),
            recorder,
            counters: Counters::default(),
            mirror: InProcessStore::new(self.system),
            commit: Mutex::new(()),
        }
    }
}

impl ShardedStore {
    /// Start building a sharded store over `system` (1 shard, sequential
    /// fan-out, no recorder by default).
    pub fn builder(system: P2PSystem) -> ShardedStoreBuilder {
        ShardedStoreBuilder {
            system,
            shards: 1,
            exec: ExecConfig::sequential(),
            recorder: None,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning a peer.
    pub fn shard_of(&self, peer: &PeerId) -> Result<usize> {
        self.assignment
            .get(peer)
            .copied()
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// The full peer → shard assignment (deterministic for a given system
    /// and shard count).
    pub fn assignment(&self) -> &BTreeMap<PeerId, usize> {
        &self.assignment
    }

    /// Snapshot of the local/remote operation counters.
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            local: self.counters.local.load(Ordering::Relaxed),
            remote: self.counters.remote.load(Ordering::Relaxed),
        }
    }

    /// Count an operation that touched `shards_touched` distinct shards.
    fn count_op(&self, shards_touched: usize) {
        if shards_touched > 1 {
            self.counters.remote.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("shard.remote", 1);
        } else {
            self.counters.local.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("shard.local", 1);
        }
    }

    /// One send + receive against a shard, wrapped in a
    /// `transport.roundtrip` span. Channel failures (a dead worker) surface
    /// as [`CoreError::Transport`].
    fn roundtrip(&self, shard: usize, request: ShardRequest) -> Result<ShardResponse> {
        let span = Span::enter_with(
            self.recorder.as_ref(),
            "transport.roundtrip",
            &[Field::u64("shard", shard as u64)],
        );
        let result = self.roundtrip_inner(shard, request);
        span.finish();
        result
    }

    fn roundtrip_inner(&self, shard: usize, request: ShardRequest) -> Result<ShardResponse> {
        let handle = &self.shards[shard];
        let (reply, response) = std::sync::mpsc::channel();
        handle
            .sender
            .send(Envelope { request, reply })
            .map_err(|_| CoreError::Transport {
                shard,
                source: "request channel disconnected (worker thread gone)".to_string(),
            })?;
        response.recv().map_err(|_| CoreError::Transport {
            shard,
            source: "reply channel disconnected before a response arrived".to_string(),
        })
    }

    /// Group a peer set by owning shard (shard-index order — `BTreeMap`).
    /// Unknown peers fail here, at the coordinator, before any transport.
    fn group_by_shard(
        &self,
        peers: &BTreeSet<PeerId>,
    ) -> Result<BTreeMap<usize, BTreeSet<PeerId>>> {
        let mut groups: BTreeMap<usize, BTreeSet<PeerId>> = BTreeMap::new();
        for peer in peers {
            groups
                .entry(self.shard_of(peer)?)
                .or_default()
                .insert(peer.clone());
        }
        Ok(groups)
    }

    /// Fan an instance fetch out to every owning shard and reassemble the
    /// replies in shard-index order. The executor bounds the concurrency;
    /// the output order never depends on it.
    fn fetch_instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        let groups: Vec<(usize, BTreeSet<PeerId>)> =
            self.group_by_shard(peers)?.into_iter().collect();
        self.count_op(groups.len());
        let dispatch = (groups.len() > 1).then(|| {
            Span::enter_with(
                self.recorder.as_ref(),
                "shard.dispatch",
                &[Field::u64("shards", groups.len() as u64)],
            )
        });
        let replies = self.exec.try_map_indexed(&groups, |_, (shard, group)| {
            match self.roundtrip(*shard, ShardRequest::Instances(group.clone()))? {
                ShardResponse::Instances(result) => result,
                other => Err(unexpected_reply(*shard, &other)),
            }
        });
        if let Some(span) = dispatch {
            span.finish();
        }
        let mut out = BTreeMap::new();
        for group in replies? {
            out.extend(group);
        }
        Ok(out)
    }
}

impl PeerStore for ShardedStore {
    fn topology(&self) -> &P2PSystem {
        &self.topology
    }

    fn instance_of(&self, peer: &PeerId) -> Result<Database> {
        let shard = self.shard_of(peer)?;
        self.count_op(1);
        match self.roundtrip(shard, ShardRequest::InstanceOf(peer.clone()))? {
            ShardResponse::Instance(result) => result,
            other => Err(unexpected_reply(shard, &other)),
        }
    }

    fn instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        self.fetch_instances(peers)
    }

    fn snapshot(&self) -> Result<P2PSystem> {
        let all: BTreeSet<PeerId> = self.topology.peer_ids().cloned().collect();
        let mut system = self.topology.clone();
        for (peer, instance) in self.fetch_instances(&all)? {
            system.set_instance(&peer, instance)?;
        }
        Ok(system)
    }

    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> Result<u64> {
        let shard = self.shard_of(peer)?;
        let _commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
        self.count_op(1);
        let version =
            match self.roundtrip(shard, ShardRequest::ApplyDelta(peer.clone(), delta.clone()))? {
                ShardResponse::Version(result) => result?,
                other => return Err(unexpected_reply(shard, &other)),
            };
        // Replay the worker-confirmed mutation on the epoch mirror; identical
        // validation means the stamps cannot diverge.
        let mirrored = self.mirror.apply_delta(peer, delta)?;
        debug_assert_eq!(mirrored, version, "mirror diverged from shard {shard}");
        Ok(version)
    }

    fn insert(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<u64> {
        let shard = self.shard_of(peer)?;
        let _commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
        self.count_op(1);
        let version = match self.roundtrip(
            shard,
            ShardRequest::Insert(peer.clone(), relation.to_string(), tuple.clone()),
        )? {
            ShardResponse::Version(result) => result?,
            other => return Err(unexpected_reply(shard, &other)),
        };
        let mirrored = self.mirror.insert(peer, relation, tuple)?;
        debug_assert_eq!(mirrored, version, "mirror diverged from shard {shard}");
        Ok(version)
    }

    fn delete(&self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<bool> {
        let shard = self.shard_of(peer)?;
        let _commit = self.commit.lock().unwrap_or_else(|p| p.into_inner());
        self.count_op(1);
        let present = match self.roundtrip(
            shard,
            ShardRequest::Delete(peer.clone(), relation.to_string(), tuple.clone()),
        )? {
            ShardResponse::Deleted(result) => result?,
            other => return Err(unexpected_reply(shard, &other)),
        };
        let mirrored = self.mirror.delete(peer, relation, tuple)?;
        debug_assert_eq!(mirrored, present, "mirror diverged from shard {shard}");
        Ok(present)
    }

    fn version_of(&self, peer: &PeerId) -> Result<u64> {
        let shard = self.shard_of(peer)?;
        self.count_op(1);
        match self.roundtrip(shard, ShardRequest::VersionOf(peer.clone()))? {
            ShardResponse::Version(result) => result,
            other => Err(unexpected_reply(shard, &other)),
        }
    }

    fn versions(&self) -> Result<VersionMap> {
        let shards: Vec<usize> = (0..self.shards.len()).collect();
        self.count_op(shards.len());
        let replies = self.exec.try_map_indexed(&shards, |_, &shard| {
            match self.roundtrip(shard, ShardRequest::Versions)? {
                ShardResponse::Versions(result) => result,
                other => Err(unexpected_reply(shard, &other)),
            }
        })?;
        let mut out = VersionMap::new();
        for versions in replies {
            out.extend(versions);
        }
        Ok(out)
    }

    fn pin(&self) -> Result<Snapshot> {
        // Served from the coordinator's epoch mirror: no transport
        // round-trip, no waiting on an in-flight commit. Still a store
        // operation — counted local, since it never fans out to a shard.
        self.count_op(1);
        self.mirror.pin()
    }

    fn mvcc_stats(&self) -> MvccStats {
        self.mirror.mvcc_stats()
    }

    fn symbols(&self) -> Arc<relalg::SymbolTable> {
        // The coordinator's epoch mirror replays every worker-confirmed
        // mutation, so its table covers exactly what the shards store.
        self.mirror.symbols()
    }
}

impl Drop for ShardedStore {
    fn drop(&mut self) {
        for handle in &self.shards {
            // A worker that already died just leaves a closed channel.
            let _ = handle.sender.send(Envelope::shutdown());
        }
        for handle in &mut self.shards {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// A mismatched reply variant: a transport-level protocol violation, not a
/// domain error.
fn unexpected_reply(shard: usize, got: &ShardResponse) -> CoreError {
    CoreError::Transport {
        shard,
        source: format!("unexpected reply variant {got:?}"),
    }
}

/// Assign every peer to a shard: closure-connected components (union-find
/// over undirected DEC edges), round-robin in order of each component's
/// smallest peer.
fn assign_components(system: &P2PSystem, shards: usize) -> BTreeMap<PeerId, usize> {
    let peers: Vec<PeerId> = system.peer_ids().cloned().collect();
    let index: BTreeMap<&PeerId, usize> = peers.iter().zip(0..).collect();
    let mut parent: Vec<usize> = (0..peers.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut walk = i;
        while parent[walk] != root {
            let next = parent[walk];
            parent[walk] = root;
            walk = next;
        }
        root
    }
    for dec in system.decs() {
        let (Some(&a), Some(&b)) = (index.get(&dec.owner), index.get(&dec.other)) else {
            continue;
        };
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        // Union towards the smaller root, keeping each component labelled
        // by its lexicographically smallest peer.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi] = lo;
    }
    // Components in root order = order of their smallest member (peer ids
    // are sorted); round-robin them across the shards.
    let mut component_shard: BTreeMap<usize, usize> = BTreeMap::new();
    let mut assignment = BTreeMap::new();
    for (i, peer) in peers.iter().enumerate() {
        let root = find(&mut parent, i);
        let next = component_shard.len() % shards;
        let shard = *component_shard.entry(root).or_insert(next);
        assignment.insert(peer.clone(), shard);
    }
    assignment
}

/// The shard worker loop: owns the shard's slice of the system (topology
/// replica + its peers' real instances + their version stamps, seeded at 0)
/// and serves requests in queue order.
fn shard_worker(mut state: P2PSystem, mut versions: VersionMap, receiver: Receiver<Envelope>) {
    while let Ok(Envelope { request, reply }) = receiver.recv() {
        let response = match request {
            ShardRequest::InstanceOf(peer) => {
                ShardResponse::Instance(state.peer(&peer).map(|p| p.instance.clone()))
            }
            ShardRequest::Instances(peers) => ShardResponse::Instances(
                peers
                    .iter()
                    .map(|p| Ok((p.clone(), state.peer(p)?.instance.clone())))
                    .collect(),
            ),
            ShardRequest::ApplyDelta(peer, delta) => {
                ShardResponse::Version(state.apply_delta(&peer, &delta).map(|()| {
                    let v = versions.entry(peer.clone()).or_insert(0);
                    *v += 1;
                    *v
                }))
            }
            ShardRequest::Insert(peer, relation, tuple) => {
                ShardResponse::Version(state.insert(&peer, &relation, tuple).map(|()| {
                    let v = versions.entry(peer.clone()).or_insert(0);
                    *v += 1;
                    *v
                }))
            }
            ShardRequest::Delete(peer, relation, tuple) => {
                ShardResponse::Deleted(state.delete(&peer, &relation, &tuple).inspect(|&present| {
                    if present {
                        *versions.entry(peer.clone()).or_insert(0) += 1;
                    }
                }))
            }
            ShardRequest::VersionOf(peer) => ShardResponse::Version(
                state
                    .peer(&peer)
                    .map(|_| versions.get(&peer).copied().unwrap_or(0)),
            ),
            ShardRequest::Versions => ShardResponse::Versions(Ok(versions.clone())),
            ShardRequest::Shutdown => break,
        };
        // A dropped reply receiver means the coordinator gave up on this
        // request; the worker keeps serving the queue.
        let _ = reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::example1_system;
    use relalg::database::GroundAtom;
    use relalg::{Delta, RelationSchema, Tuple};

    /// `n` peers, no DECs: every peer is its own closure-connected
    /// component, so sharding has maximal freedom to spread them out.
    fn disjoint_system(n: usize) -> P2PSystem {
        let mut sys = P2PSystem::new();
        for i in 1..=n {
            let peer = PeerId::new(format!("P{i}"));
            sys.add_peer(peer.clone()).unwrap();
            sys.add_relation(&peer, RelationSchema::new(format!("R{i}"), &["x", "y"]))
                .unwrap();
            sys.insert(
                &peer,
                &format!("R{i}"),
                Tuple::strs([format!("a{i}"), format!("b{i}")]),
            )
            .unwrap();
        }
        sys
    }

    fn peer(name: &str) -> PeerId {
        PeerId::new(name)
    }

    #[test]
    fn closure_connected_components_share_a_shard() {
        // Example 1 is one connected component (P1—P2—P3 via DECs), so no
        // shard count may split it.
        let store = ShardedStore::builder(example1_system()).shards(4).build();
        let shards: BTreeSet<usize> = store.assignment().values().copied().collect();
        assert_eq!(shards.len(), 1, "one component must live on one shard");
    }

    #[test]
    fn disjoint_components_round_robin_across_shards() {
        let store = ShardedStore::builder(disjoint_system(4)).shards(2).build();
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.shard_of(&peer("P1")).unwrap(), 0);
        assert_eq!(store.shard_of(&peer("P2")).unwrap(), 1);
        assert_eq!(store.shard_of(&peer("P3")).unwrap(), 0);
        assert_eq!(store.shard_of(&peer("P4")).unwrap(), 1);
    }

    #[test]
    fn sharded_store_matches_in_process_store() {
        for shards in [1, 2, 4] {
            let oracle = InProcessStore::new(example1_system());
            let sharded = ShardedStore::builder(example1_system())
                .shards(shards)
                .build();
            assert_eq!(sharded.topology(), oracle.topology());
            for p in ["P1", "P2", "P3"].map(peer) {
                assert_eq!(
                    sharded.instance_of(&p).unwrap(),
                    oracle.instance_of(&p).unwrap(),
                    "instance_of({p}) diverged at {shards} shards"
                );
                assert_eq!(sharded.version_of(&p).unwrap(), 0);
            }
            assert_eq!(sharded.snapshot().unwrap(), oracle.snapshot().unwrap());
            assert_eq!(sharded.versions().unwrap(), oracle.versions().unwrap());
        }
    }

    #[test]
    fn mutations_stamp_versions_like_the_in_process_store() {
        for shards in [1, 3] {
            let oracle = InProcessStore::new(disjoint_system(3));
            let sharded = ShardedStore::builder(disjoint_system(3))
                .shards(shards)
                .build();
            let p1 = peer("P1");
            for store in [&sharded as &dyn PeerStore, &oracle] {
                assert_eq!(store.insert(&p1, "R1", Tuple::strs(["x", "y"])).unwrap(), 1);
                assert!(store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
                // Deleting an absent tuple reports absence without a bump.
                assert!(!store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
                let delta = Delta::from_changes(
                    vec![GroundAtom::new("R1", Tuple::strs(["c", "d"]))],
                    vec![],
                );
                assert_eq!(store.apply_delta(&p1, &delta).unwrap(), 3);
                assert_eq!(store.version_of(&p1).unwrap(), 3);
                // A failing delta leaves the stamp alone.
                let bad = Delta::from_changes(
                    vec![GroundAtom::new("NoSuch", Tuple::strs(["c", "d"]))],
                    vec![],
                );
                assert!(store.apply_delta(&p1, &bad).is_err());
                assert_eq!(store.version_of(&p1).unwrap(), 3);
            }
            assert_eq!(sharded.snapshot().unwrap(), oracle.snapshot().unwrap());
        }
    }

    #[test]
    fn pinned_epochs_match_the_in_process_oracle() {
        for shards in [1, 2] {
            let oracle = InProcessStore::new(example1_system());
            let sharded = ShardedStore::builder(example1_system())
                .shards(shards)
                .build();
            let p1 = peer("P1");
            let pinned = sharded.pin().unwrap();
            for store in [&sharded as &dyn PeerStore, &oracle] {
                store.insert(&p1, "R1", Tuple::strs(["x", "y"])).unwrap();
                assert!(store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
                // No-op delete: no epoch published on either side.
                assert!(!store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
            }
            // The pre-commit pin is stable; fresh pins agree bit-identically
            // with the oracle's epoch, stamps and materialized instances.
            assert_eq!(pinned.epoch(), 0);
            assert_eq!(pinned.system().unwrap(), example1_system());
            let (a, b) = (sharded.pin().unwrap(), oracle.pin().unwrap());
            assert_eq!(a.epoch(), b.epoch());
            assert_eq!(a.versions(), b.versions());
            assert_eq!(a.system().unwrap(), b.system().unwrap());
            assert_eq!(
                sharded.mvcc_stats().publishes,
                oracle.mvcc_stats().publishes
            );
        }
    }

    #[test]
    fn answers_are_deterministic_across_fanout_pools() {
        let baseline = ShardedStore::builder(disjoint_system(6))
            .shards(3)
            .exec(ExecConfig::sequential())
            .build();
        let pooled = ShardedStore::builder(disjoint_system(6))
            .shards(3)
            .exec(ExecConfig::with_workers(4))
            .build();
        assert_eq!(baseline.snapshot().unwrap(), pooled.snapshot().unwrap());
        assert_eq!(baseline.versions().unwrap(), pooled.versions().unwrap());
        let all: BTreeSet<PeerId> = (1..=6).map(|i| peer(&format!("P{i}"))).collect();
        assert_eq!(
            baseline.instances(&all).unwrap(),
            pooled.instances(&all).unwrap()
        );
    }

    #[test]
    fn unknown_peers_fail_at_the_coordinator() {
        let store = ShardedStore::builder(example1_system()).shards(2).build();
        let ghost = peer("P9");
        assert!(matches!(
            store.instance_of(&ghost),
            Err(CoreError::UnknownPeer(_))
        ));
        let before = store.metrics();
        assert!(store.version_of(&ghost).is_err());
        // Validation failures never reach the transport or the counters.
        assert_eq!(store.metrics(), before);
    }

    #[test]
    fn dead_worker_surfaces_as_transport_error() {
        let store = ShardedStore::builder(example1_system()).shards(1).build();
        // Kill the worker out from under the coordinator.
        store.shards[0].sender.send(Envelope::shutdown()).unwrap();
        // The worker drains the shutdown and exits; whether our request is
        // enqueued before or after that, the round-trip must fail cleanly.
        let err = loop {
            match store.instance_of(&peer("P1")) {
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        match err {
            CoreError::Transport { shard, source } => {
                assert_eq!(shard, 0);
                assert!(source.contains("disconnected"), "source: {source}");
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn metrics_classify_local_and_remote_operations() {
        let store = ShardedStore::builder(disjoint_system(4)).shards(2).build();
        assert_eq!(store.metrics(), StoreMetrics::default());
        // Single-peer read: one shard touched.
        store.instance_of(&peer("P1")).unwrap();
        assert_eq!(store.metrics().local, 1);
        assert_eq!(store.metrics().remote, 0);
        // A fan-out whose peers all live on shard 0 stays local.
        let same_shard: BTreeSet<PeerId> = [peer("P1"), peer("P3")].into();
        store.instances(&same_shard).unwrap();
        assert_eq!(store.metrics().local, 2);
        assert_eq!(store.metrics().remote, 0);
        // Snapshot spans both shards: remote.
        store.snapshot().unwrap();
        assert_eq!(store.metrics().local, 2);
        assert_eq!(store.metrics().remote, 1);
        // With one shard, nothing is ever remote.
        let single = ShardedStore::builder(disjoint_system(4)).shards(1).build();
        single.snapshot().unwrap();
        single.versions().unwrap();
        assert_eq!(single.metrics().remote, 0);
    }

    #[test]
    fn spans_and_counters_reach_the_recorder() {
        let recorder = Arc::new(pdes_obs::TraceRecorder::new());
        let store = ShardedStore::builder(disjoint_system(4))
            .shards(2)
            .recorder(recorder.clone())
            .build();
        store.snapshot().unwrap();
        let trace = recorder.trace();
        assert_eq!(trace.spans_labelled("shard.dispatch").len(), 1);
        assert!(trace.spans_labelled("transport.roundtrip").len() >= 2);
        assert_eq!(recorder.registry().counter_value("shard.remote"), 1);
    }
}

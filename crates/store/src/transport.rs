//! The loopback transport between a [`ShardedStore`](crate::ShardedStore)
//! coordinator and its shard workers.
//!
//! The wire vocabulary is deliberately small and value-oriented: a
//! [`ShardRequest`] carries owned data down to a worker, a
//! [`ShardResponse`] carries an owned result (or the shard-local
//! [`CoreError`](pdes_core::CoreError)) back up through the per-request reply channel in the
//! [`Envelope`]. Nothing here assumes the in-process channel pair — a
//! networked transport would serialize exactly these frames — but the
//! reproduction ships only the deterministic in-process loopback.
//!
//! Both enums are `#[non_exhaustive]`: the protocol can grow verbs (bulk
//! closure reads, shard rebalancing) without a breaking release, so match
//! them with a wildcard arm.

use pdes_core::store::VersionMap;
use pdes_core::system::PeerId;
use relalg::{Database, Delta, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::Sender;

/// A request from the coordinator to one shard worker.
///
/// Every peer named in a request is validated against the coordinator's
/// assignment *before* transport, so a worker only ever sees peers it owns
/// (a violation surfaces as the shard-local `UnknownPeer`, not a hang).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ShardRequest {
    /// Read one peer's local instance.
    InstanceOf(PeerId),
    /// Read several owned peers' instances in one round-trip (the per-shard
    /// slice of a closure fan-out).
    Instances(BTreeSet<PeerId>),
    /// Validate-then-apply a delta against a peer's instance.
    ApplyDelta(PeerId, Delta),
    /// Insert one tuple into a peer's relation.
    Insert(PeerId, String, Tuple),
    /// Delete one tuple from a peer's relation.
    Delete(PeerId, String, Tuple),
    /// Read one peer's version stamp.
    VersionOf(PeerId),
    /// Read the version stamps of every peer this shard owns.
    Versions,
    /// Drain-and-exit: the worker stops after this frame (sent by the
    /// coordinator's `Drop`).
    Shutdown,
}

/// A reply from a shard worker.
///
/// Domain failures travel *inside* the variant as the shard-local
/// [`CoreError`](pdes_core::CoreError); only a dead channel is a transport
/// failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardResponse {
    /// Reply to [`ShardRequest::InstanceOf`].
    Instance(pdes_core::Result<Database>),
    /// Reply to [`ShardRequest::Instances`].
    Instances(pdes_core::Result<BTreeMap<PeerId, Database>>),
    /// Reply to the mutating and version-reading requests: the peer's
    /// version stamp after (or at) the operation.
    Version(pdes_core::Result<u64>),
    /// Reply to [`ShardRequest::Delete`]: whether the tuple was present.
    Deleted(pdes_core::Result<bool>),
    /// Reply to [`ShardRequest::Versions`].
    Versions(pdes_core::Result<VersionMap>),
}

/// One frame on a shard's request queue: the request plus the channel the
/// worker answers on. Each round-trip gets a fresh reply channel, so
/// replies can never cross between interleaved coordinator threads.
pub struct Envelope {
    /// The request to serve.
    pub request: ShardRequest,
    /// Where the worker sends the (single) response.
    pub reply: Sender<ShardResponse>,
}

impl Envelope {
    /// A [`ShardRequest::Shutdown`] frame with a reply channel nobody
    /// listens on (the worker exits instead of answering).
    pub fn shutdown() -> Self {
        let (reply, _discard) = std::sync::mpsc::channel();
        Envelope {
            request: ShardRequest::Shutdown,
            reply,
        }
    }
}

//! Shifting of head-cycle-free disjunctive programs into normal programs.
//!
//! Section 4.1 of the paper: "it is known that a disjunctive program can be
//! transformed into a non disjunctive program if the program is head-cycle
//! free" (Ben-Eliyahu & Dechter). The transformation replaces each rule
//!
//! ```text
//! a1 ∨ … ∨ ak ← body
//! ```
//!
//! by the k rules
//!
//! ```text
//! ai ← body, not a1, …, not a{i-1}, not a{i+1}, …, not ak      (1 ≤ i ≤ k)
//! ```
//!
//! For HCF programs the answer sets are preserved exactly; Example 3 shows
//! the transformation applied to rule (9) of the Section 3.1 program.

use crate::ground::{GroundProgram, GroundRule};
use crate::syntax::{BodyItem, Program, Rule};

/// Shift a ground disjunctive program into a ground normal program.
///
/// The caller is responsible for checking head-cycle-freeness (see
/// [`crate::graph::is_head_cycle_free`]); applying the shift to a non-HCF
/// program may lose answer sets.
pub fn shift_ground(program: &GroundProgram) -> GroundProgram {
    let mut out = program.clone_atoms();
    for rule in program.rules() {
        if rule.heads.len() <= 1 {
            out.add_rule(rule.clone());
            continue;
        }
        for (i, &head) in rule.heads.iter().enumerate() {
            let mut neg = rule.neg.clone();
            for (j, &other) in rule.heads.iter().enumerate() {
                if i != j {
                    neg.push(other);
                }
            }
            out.add_rule(GroundRule {
                heads: vec![head],
                pos: rule.pos.clone(),
                neg,
            });
        }
    }
    out
}

/// Shift a non-ground disjunctive program into a normal program
/// (rule-by-rule, same construction as [`shift_ground`]).
pub fn shift_program(program: &Program) -> Program {
    let mut out = Program::new();
    for rule in program.rules() {
        if rule.head.len() <= 1 {
            out.add_rule(rule.clone());
            continue;
        }
        for (i, head) in rule.head.iter().enumerate() {
            let mut body = rule.body.clone();
            for (j, other) in rule.head.iter().enumerate() {
                if i != j {
                    body.push(BodyItem::Naf(other.clone()));
                }
            }
            out.add_rule(Rule::new(vec![head.clone()], body));
        }
    }
    out
}

impl GroundProgram {
    /// A copy of this program's atom table with no rules — used by the
    /// shifting transformation so atom ids remain stable.
    pub(crate) fn clone_atoms(&self) -> GroundProgram {
        let mut out = GroundProgram::default();
        for (_, atom) in self.atoms() {
            out.intern(atom.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::syntax::Atom;

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn normal_rules_pass_through() {
        let mut p = Program::new();
        p.add_fact(atom("a", &["x"]));
        p.add_rule(Rule::new(
            vec![atom("b", &["X"])],
            vec![BodyItem::Pos(atom("a", &["X"]))],
        ));
        let shifted = shift_program(&p);
        assert_eq!(shifted.len(), p.len());
        assert!(!shifted.is_disjunctive());
    }

    #[test]
    fn disjunctive_rule_becomes_k_normal_rules() {
        let mut p = Program::new();
        p.add_fact(atom("c", &["x"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        let shifted = shift_program(&p);
        assert_eq!(shifted.len(), 3);
        assert!(!shifted.is_disjunctive());
        let text = shifted.to_string();
        assert!(text.contains("a(X) :- c(X), not b(X)."));
        assert!(text.contains("b(X) :- c(X), not a(X)."));
    }

    #[test]
    fn example3_shape_shift_of_rule_9() {
        // ¬r1p(X,Y) ∨ r2p(X,W) ← r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W).
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![
                atom("r1p", &["X", "Y"]).strongly_negated(),
                atom("r2p", &["X", "W"]),
            ],
            vec![
                BodyItem::Pos(atom("r1", &["X", "Y"])),
                BodyItem::Pos(atom("s1", &["Z", "Y"])),
                BodyItem::Naf(atom("aux1", &["X", "Z"])),
                BodyItem::Pos(atom("s2", &["Z", "W"])),
            ],
        ));
        let shifted = shift_program(&p);
        assert_eq!(shifted.len(), 2);
        let text = shifted.to_string();
        // The two rules of Example 3 (modulo the choice literal, which the
        // paper carries along unchanged).
        assert!(text.contains(
            "-r1p(X, Y) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), s2(Z, W), not r2p(X, W)."
        ));
        assert!(text.contains(
            "r2p(X, W) :- r1(X, Y), s1(Z, Y), not aux1(X, Z), s2(Z, W), not -r1p(X, Y)."
        ));
    }

    #[test]
    fn ground_shift_preserves_atom_table() {
        let mut p = Program::new();
        p.add_fact(atom("c", &["x"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        let ground = Grounder::new(&p).ground().unwrap();
        let shifted = shift_ground(&ground);
        assert_eq!(shifted.atom_count(), ground.atom_count());
        assert!(!shifted.is_disjunctive());
        // fact + two shifted rules
        assert_eq!(shifted.rule_count(), 3);
        for rule in shifted.rules() {
            assert!(rule.heads.len() <= 1);
        }
    }
}

//! Errors raised by the datalog / answer-set engine.

use std::fmt;

/// Errors raised by grounding and solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule uses a variable that no positive body atom binds.
    UnsafeRule(String),
    /// The solver exceeded its configured search limits.
    SearchLimitExceeded {
        /// Limit description (e.g. "branch nodes").
        what: String,
        /// The configured limit value.
        limit: usize,
    },
    /// The program is inconsistent in the classical-negation sense:
    /// a candidate answer set would contain both `p` and `¬p`.
    Incoherent(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnsafeRule(rule) => write!(f, "unsafe rule: {rule}"),
            DatalogError::SearchLimitExceeded { what, limit } => {
                write!(f, "answer-set search exceeded the {what} limit ({limit})")
            }
            DatalogError::Incoherent(atom) => {
                write!(
                    f,
                    "incoherent model: both {atom} and its complement derived"
                )
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DatalogError::UnsafeRule("p(X).".into())
            .to_string()
            .contains("unsafe"));
        assert!(DatalogError::SearchLimitExceeded {
            what: "branch nodes".into(),
            limit: 10
        }
        .to_string()
        .contains("10"));
        assert!(DatalogError::Incoherent("p(a)".into())
            .to_string()
            .contains("p(a)"));
    }
}

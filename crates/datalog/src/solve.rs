//! Stable-model (answer-set) computation for ground programs.
//!
//! The solver has three layers:
//!
//! * [`NormalSolver`] — stable models of ground *normal* programs (single-atom
//!   heads) by DPLL-style search: unit/forward propagation, unsupported-atom
//!   and unfounded-set pruning, branching on undetermined atoms, and a final
//!   Gelfond–Lifschitz reduct check on every complete candidate.
//! * [`DisjunctiveSolver`] — answer sets of arbitrary ground disjunctive
//!   programs by candidate-model enumeration plus a reduct-minimality check.
//!   This is only used for programs that are *not* head-cycle-free; the
//!   paper's specification programs are HCF (Section 4.1), so the common path
//!   is shifting + [`NormalSolver`].
//! * [`solve`] — the front door: unfolds choices, grounds, picks the
//!   appropriate solver (normal / shifted-HCF / generic disjunctive) and
//!   enforces coherence of classical negation.

use crate::error::DatalogError;
use crate::graph::is_head_cycle_free;
use crate::ground::{AtomId, GroundProgram, GroundRule, Grounder};
use crate::shift::shift_ground;
use crate::syntax::Program;
use std::collections::BTreeSet;

/// Search limits and options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Stop after this many answer sets (`usize::MAX` = all).
    pub max_answer_sets: usize,
    /// Abort after this many branch nodes.
    pub max_branch_nodes: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_answer_sets: usize::MAX,
            max_branch_nodes: 5_000_000,
        }
    }
}

/// Result of an answer-set computation.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The ground program that was solved (after choice unfolding and, when
    /// applicable, HCF shifting of the original).
    pub ground: GroundProgram,
    /// The answer sets, as sets of atom ids of `ground`.
    pub answer_sets: Vec<BTreeSet<AtomId>>,
    /// Number of branch nodes explored.
    pub branch_nodes: usize,
    /// Whether the disjunctive program was solved by HCF shifting.
    pub used_shift: bool,
}

/// Compute the answer sets of a (non-ground) program.
///
/// Choice atoms are unfolded, the program is grounded, and the appropriate
/// solver is selected: normal programs and head-cycle-free disjunctive
/// programs go through the [`NormalSolver`] (the latter after shifting),
/// other disjunctive programs go through the [`DisjunctiveSolver`].
pub fn solve(program: &Program, config: SolverConfig) -> Result<SolveResult, DatalogError> {
    let ground = Grounder::new(program).ground()?;
    solve_ground(ground, config)
}

/// Compute the answer sets of an already-ground program.
pub fn solve_ground(
    ground: GroundProgram,
    config: SolverConfig,
) -> Result<SolveResult, DatalogError> {
    if !ground.is_disjunctive() {
        let solver = NormalSolver::new(&ground, config);
        let (answer_sets, branch_nodes) = solver.answer_sets()?;
        return Ok(SolveResult {
            ground,
            answer_sets,
            branch_nodes,
            used_shift: false,
        });
    }
    if is_head_cycle_free(&ground) {
        let shifted = shift_ground(&ground);
        let solver = NormalSolver::new(&shifted, config);
        let (answer_sets, branch_nodes) = solver.answer_sets()?;
        return Ok(SolveResult {
            ground: shifted,
            answer_sets,
            branch_nodes,
            used_shift: true,
        });
    }
    let solver = DisjunctiveSolver::new(&ground, config);
    let (answer_sets, branch_nodes) = solver.answer_sets()?;
    Ok(SolveResult {
        ground,
        answer_sets,
        branch_nodes,
        used_shift: false,
    })
}

/// Truth assignment used during search.
type Assignment = Vec<Option<bool>>;

/// Is the candidate coherent, i.e. free of `p` / `¬p` clashes?
fn is_coherent(program: &GroundProgram, model: &BTreeSet<AtomId>) -> bool {
    for &id in model {
        let atom = program.atom(id);
        if atom.strong_neg {
            continue;
        }
        let complement = atom.complement();
        if let Some(comp_id) = program.atom_id(&complement) {
            if model.contains(&comp_id) {
                return false;
            }
        }
    }
    true
}

/// Stable-model enumeration for normal ground programs.
pub struct NormalSolver<'a> {
    program: &'a GroundProgram,
    config: SolverConfig,
    /// For each atom, the indices of rules having it as head.
    rules_by_head: Vec<Vec<usize>>,
}

impl<'a> NormalSolver<'a> {
    /// Create a solver. Panics if the program is disjunctive (callers shift
    /// first).
    pub fn new(program: &'a GroundProgram, config: SolverConfig) -> Self {
        assert!(
            !program.is_disjunctive(),
            "NormalSolver requires a non-disjunctive program"
        );
        let mut rules_by_head = vec![Vec::new(); program.atom_count()];
        for (idx, rule) in program.rules().iter().enumerate() {
            for &h in &rule.heads {
                rules_by_head[h].push(idx);
            }
        }
        NormalSolver {
            program,
            config,
            rules_by_head,
        }
    }

    /// Enumerate all stable models. Returns (models, branch node count).
    pub fn answer_sets(&self) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        let mut models = Vec::new();
        let mut nodes = 0usize;
        let assign: Assignment = vec![None; self.program.atom_count()];
        self.search(assign, &mut models, &mut nodes)?;
        // Deterministic order for reproducibility.
        models.sort();
        models.dedup();
        Ok((models, nodes))
    }

    fn search(
        &self,
        mut assign: Assignment,
        models: &mut Vec<BTreeSet<AtomId>>,
        nodes: &mut usize,
    ) -> Result<(), DatalogError> {
        if models.len() >= self.config.max_answer_sets {
            return Ok(());
        }
        *nodes += 1;
        if *nodes > self.config.max_branch_nodes {
            return Err(DatalogError::SearchLimitExceeded {
                what: "branch nodes".to_string(),
                limit: self.config.max_branch_nodes,
            });
        }
        if !self.propagate(&mut assign) {
            return Ok(());
        }
        match self.pick_branch_atom(&assign) {
            None => {
                let model: BTreeSet<AtomId> = assign
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| if *v == Some(true) { Some(i) } else { None })
                    .collect();
                if self.is_stable(&model) && is_coherent(self.program, &model) {
                    models.push(model);
                }
                Ok(())
            }
            Some(atom) => {
                for value in [true, false] {
                    let mut next = assign.clone();
                    next[atom] = Some(value);
                    self.search(next, models, nodes)?;
                    if models.len() >= self.config.max_answer_sets {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Deterministic propagation. Returns `false` on conflict.
    fn propagate(&self, assign: &mut Assignment) -> bool {
        loop {
            let mut changed = false;

            // Forward propagation and constraint checking.
            for rule in self.program.rules() {
                match self.body_status(rule, assign) {
                    BodyStatus::Satisfied => {
                        if let Some(&head) = rule.heads.first() {
                            match assign[head] {
                                Some(false) => return false,
                                Some(true) => {}
                                None => {
                                    assign[head] = Some(true);
                                    changed = true;
                                }
                            }
                        } else {
                            // Satisfied constraint body.
                            return false;
                        }
                    }
                    BodyStatus::Dead | BodyStatus::Open => {}
                }
            }

            // Unsupported atoms must be false; true atoms whose every rule is
            // dead are a conflict.
            for atom in 0..self.program.atom_count() {
                if assign[atom] == Some(false) {
                    continue;
                }
                let alive = self.rules_by_head[atom].iter().any(|&r| {
                    self.body_status(&self.program.rules()[r], assign) != BodyStatus::Dead
                });
                if !alive {
                    match assign[atom] {
                        Some(true) => return false,
                        Some(false) => {}
                        None => {
                            assign[atom] = Some(false);
                            changed = true;
                        }
                    }
                }
            }

            // Unfounded-set pruning: atoms outside the optimistic derivable
            // set cannot be true.
            let derivable = self.optimistic_derivable(assign);
            for (atom, slot) in assign.iter_mut().enumerate() {
                if derivable.contains(&atom) {
                    continue;
                }
                match *slot {
                    Some(true) => return false,
                    Some(false) => {}
                    None => {
                        *slot = Some(false);
                        changed = true;
                    }
                }
            }

            if !changed {
                return true;
            }
        }
    }

    /// Least fixpoint of atoms still derivable given the current assignment,
    /// reading unassigned default-negated literals optimistically.
    fn optimistic_derivable(&self, assign: &Assignment) -> BTreeSet<AtomId> {
        let mut derivable: BTreeSet<AtomId> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let head = match rule.heads.first() {
                    Some(&h) => h,
                    None => continue,
                };
                if derivable.contains(&head) || assign[head] == Some(false) {
                    continue;
                }
                let pos_ok = rule
                    .pos
                    .iter()
                    .all(|&p| derivable.contains(&p) && assign[p] != Some(false));
                let neg_ok = rule.neg.iter().all(|&n| assign[n] != Some(true));
                if pos_ok && neg_ok {
                    derivable.insert(head);
                    changed = true;
                }
            }
            if !changed {
                return derivable;
            }
        }
    }

    /// Pick the next atom to branch on: prefer atoms occurring under default
    /// negation in rules that are still open.
    fn pick_branch_atom(&self, assign: &Assignment) -> Option<AtomId> {
        let mut fallback = None;
        for rule in self.program.rules() {
            if self.body_status(rule, assign) != BodyStatus::Open {
                continue;
            }
            for &n in &rule.neg {
                if assign[n].is_none() {
                    return Some(n);
                }
            }
            for &p in &rule.pos {
                if assign[p].is_none() && fallback.is_none() {
                    fallback = Some(p);
                }
            }
            for &h in &rule.heads {
                if assign[h].is_none() && fallback.is_none() {
                    fallback = Some(h);
                }
            }
        }
        if fallback.is_some() {
            return fallback;
        }
        assign.iter().position(|v| v.is_none())
    }

    fn body_status(&self, rule: &GroundRule, assign: &Assignment) -> BodyStatus {
        let mut open = false;
        for &p in &rule.pos {
            match assign[p] {
                Some(false) => return BodyStatus::Dead,
                Some(true) => {}
                None => open = true,
            }
        }
        for &n in &rule.neg {
            match assign[n] {
                Some(true) => return BodyStatus::Dead,
                Some(false) => {}
                None => open = true,
            }
        }
        if open {
            BodyStatus::Open
        } else {
            BodyStatus::Satisfied
        }
    }

    /// Gelfond–Lifschitz check: is the candidate the least model of its own
    /// reduct, and does it satisfy every constraint?
    fn is_stable(&self, model: &BTreeSet<AtomId>) -> bool {
        // Constraints must be classically satisfied.
        for rule in self.program.rules() {
            if !rule.heads.is_empty() {
                continue;
            }
            let body_true = rule.pos.iter().all(|p| model.contains(p))
                && rule.neg.iter().all(|n| !model.contains(n));
            if body_true {
                return false;
            }
        }
        // Least model of the reduct.
        let mut least: BTreeSet<AtomId> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let head = match rule.heads.first() {
                    Some(&h) => h,
                    None => continue,
                };
                if least.contains(&head) {
                    continue;
                }
                if rule.neg.iter().any(|n| model.contains(n)) {
                    continue; // removed by the reduct
                }
                if rule.pos.iter().all(|p| least.contains(p)) {
                    least.insert(head);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        &least == model
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyStatus {
    /// Some body literal is definitely false.
    Dead,
    /// All body literals are definitely true.
    Satisfied,
    /// Neither dead nor satisfied yet.
    Open,
}

/// Generic answer-set enumeration for (possibly non-HCF) disjunctive ground
/// programs: enumerate classical models of the rules, then keep those that
/// are minimal models of their Gelfond–Lifschitz reduct.
pub struct DisjunctiveSolver<'a> {
    program: &'a GroundProgram,
    config: SolverConfig,
}

impl<'a> DisjunctiveSolver<'a> {
    /// Create a solver.
    pub fn new(program: &'a GroundProgram, config: SolverConfig) -> Self {
        DisjunctiveSolver { program, config }
    }

    /// Enumerate all answer sets. Returns (models, branch node count).
    pub fn answer_sets(&self) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        let mut models = Vec::new();
        let mut nodes = 0usize;
        let assign: Assignment = vec![None; self.program.atom_count()];
        self.search(assign, &mut models, &mut nodes)?;
        models.sort();
        models.dedup();
        Ok((models, nodes))
    }

    fn search(
        &self,
        mut assign: Assignment,
        models: &mut Vec<BTreeSet<AtomId>>,
        nodes: &mut usize,
    ) -> Result<(), DatalogError> {
        if models.len() >= self.config.max_answer_sets {
            return Ok(());
        }
        *nodes += 1;
        if *nodes > self.config.max_branch_nodes {
            return Err(DatalogError::SearchLimitExceeded {
                what: "branch nodes".to_string(),
                limit: self.config.max_branch_nodes,
            });
        }
        if !self.propagate(&mut assign) {
            return Ok(());
        }
        match assign.iter().position(|v| v.is_none()) {
            None => {
                let model: BTreeSet<AtomId> = assign
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| if *v == Some(true) { Some(i) } else { None })
                    .collect();
                if self.is_answer_set(&model) && is_coherent(self.program, &model) {
                    models.push(model);
                }
                Ok(())
            }
            Some(atom) => {
                for value in [false, true] {
                    let mut next = assign.clone();
                    next[atom] = Some(value);
                    self.search(next, models, nodes)?;
                    if models.len() >= self.config.max_answer_sets {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Weak propagation for classical-model enumeration.
    fn propagate(&self, assign: &mut Assignment) -> bool {
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let mut body_open = false;
                let mut body_dead = false;
                for &p in &rule.pos {
                    match assign[p] {
                        Some(false) => body_dead = true,
                        Some(true) => {}
                        None => body_open = true,
                    }
                }
                for &n in &rule.neg {
                    match assign[n] {
                        Some(true) => body_dead = true,
                        Some(false) => {}
                        None => body_open = true,
                    }
                }
                if body_dead || body_open {
                    continue;
                }
                // Body is satisfied: at least one head atom must be true.
                let mut undecided = Vec::new();
                let mut any_true = false;
                for &h in &rule.heads {
                    match assign[h] {
                        Some(true) => any_true = true,
                        Some(false) => {}
                        None => undecided.push(h),
                    }
                }
                if any_true {
                    continue;
                }
                match undecided.len() {
                    0 => return false,
                    1 => {
                        assign[undecided[0]] = Some(true);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Answer-set test: the candidate must be a model of the program and a
    /// *minimal* model of its reduct.
    fn is_answer_set(&self, model: &BTreeSet<AtomId>) -> bool {
        // Model check (including constraints).
        for rule in self.program.rules() {
            let body_true = rule.pos.iter().all(|p| model.contains(p))
                && rule.neg.iter().all(|n| !model.contains(n));
            if body_true && !rule.heads.iter().any(|h| model.contains(h)) {
                return false;
            }
        }
        !self.has_smaller_reduct_model(model)
    }

    /// Search for a proper subset of `model` that is still a model of the
    /// Gelfond–Lifschitz reduct. Atoms outside `model` stay false.
    fn has_smaller_reduct_model(&self, model: &BTreeSet<AtomId>) -> bool {
        // Reduct rules restricted to the atoms of the candidate.
        let mut reduct: Vec<(Vec<AtomId>, Vec<AtomId>)> = Vec::new(); // (pos, heads)
        for rule in self.program.rules() {
            if rule.heads.is_empty() {
                continue;
            }
            if rule.neg.iter().any(|n| model.contains(n)) {
                continue;
            }
            if rule.pos.iter().any(|p| !model.contains(p)) {
                // Some positive body atom is false in the candidate and stays
                // false in any subset: the rule can never fire.
                continue;
            }
            let heads: Vec<AtomId> = rule
                .heads
                .iter()
                .copied()
                .filter(|h| model.contains(h))
                .collect();
            // If no head atom is in the model the rule is violated by the
            // candidate itself; `is_answer_set` already rejected that case.
            reduct.push((rule.pos.clone(), heads));
        }
        let atoms: Vec<AtomId> = model.iter().copied().collect();
        let mut truth: std::collections::BTreeMap<AtomId, Option<bool>> =
            atoms.iter().map(|&a| (a, None)).collect();
        self.subset_search(&reduct, &atoms, &mut truth, 0, model)
    }

    /// Try to build a model of the reduct that is a proper subset of the
    /// candidate.
    fn subset_search(
        &self,
        reduct: &[(Vec<AtomId>, Vec<AtomId>)],
        atoms: &[AtomId],
        truth: &mut std::collections::BTreeMap<AtomId, Option<bool>>,
        idx: usize,
        model: &BTreeSet<AtomId>,
    ) -> bool {
        if idx == atoms.len() {
            // Full assignment: check all reduct rules and properness.
            let assigned: BTreeSet<AtomId> = truth
                .iter()
                .filter_map(|(&a, &v)| if v == Some(true) { Some(a) } else { None })
                .collect();
            if assigned.len() == model.len() {
                return false; // not a proper subset
            }
            for (pos, heads) in reduct {
                let body_true = pos.iter().all(|p| assigned.contains(p));
                if body_true && !heads.iter().any(|h| assigned.contains(h)) {
                    return false;
                }
            }
            return true;
        }
        let atom = atoms[idx];
        for value in [false, true] {
            truth.insert(atom, Some(value));
            // Early pruning: check rules whose atoms are all assigned.
            let consistent = reduct.iter().all(|(pos, heads)| {
                let body_status: Option<bool> = {
                    let mut all_true = true;
                    let mut unknown = false;
                    for p in pos {
                        match truth.get(p).copied().flatten() {
                            Some(true) => {}
                            Some(false) => {
                                all_true = false;
                                break;
                            }
                            None => unknown = true,
                        }
                    }
                    if !all_true {
                        Some(false)
                    } else if unknown {
                        None
                    } else {
                        Some(true)
                    }
                };
                match body_status {
                    Some(false) | None => true,
                    Some(true) => heads
                        .iter()
                        .any(|h| matches!(truth.get(h).copied().flatten(), Some(true) | None)),
                }
            });
            if consistent && self.subset_search(reduct, atoms, truth, idx + 1, model) {
                truth.insert(atom, None);
                return true;
            }
        }
        truth.insert(atom, None);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundAtom;
    use crate::syntax::{Atom, BodyItem, Rule};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    fn names(result: &SolveResult, set_idx: usize) -> BTreeSet<String> {
        result.answer_sets[set_idx]
            .iter()
            .map(|&id| result.ground.atom(id).to_string())
            .collect()
    }

    #[test]
    fn definite_program_has_single_minimal_model() {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Y"])],
            vec![BodyItem::Pos(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("reach", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("reach(a, c)"));
        assert_eq!(model.len(), 2 + 3);
    }

    #[test]
    fn even_negation_cycle_has_two_answer_sets() {
        // p :- dom, not q.   q :- dom, not p.
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
    }

    #[test]
    fn odd_negation_cycle_has_no_answer_set() {
        // p :- dom, not p.
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.answer_sets.is_empty());
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // a :- b.  b :- a.  — neither is derivable.
        let mut p = Program::new();
        p.add_fact(atom("seed", &[] as &[&str]));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str])],
            vec![BodyItem::Pos(atom("b", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("a", &[] as &[&str]))],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        assert_eq!(result.answer_sets[0].len(), 1); // only `seed`
    }

    #[test]
    fn constraints_filter_answer_sets() {
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        p.add_constraint(vec![BodyItem::Pos(atom("p", &["a"]))]);
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("q(a)"));
    }

    #[test]
    fn hcf_disjunction_is_shifted_and_split() {
        // a v b :- c.  with fact c: two answer sets {c,a} and {c,b}.
        let mut p = Program::new();
        p.add_fact(atom("c", &["1"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.used_shift);
        assert_eq!(result.answer_sets.len(), 2);
    }

    #[test]
    fn non_hcf_disjunction_uses_minimality_check() {
        // a v b.   a :- b.   b :- a.  — answer sets are {a,b}? No: candidate
        // models {a,b} (from disjunction + closure). Minimal models of the
        // reduct (= program, no negation): {a, b} is a model, but so are
        // neither {a} nor {b} alone (each forces the other), and {} violates
        // the disjunctive fact. Hence the single answer set is {a, b}.
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![],
        ));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str])],
            vec![BodyItem::Pos(atom("b", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("a", &[] as &[&str]))],
        ));
        let ground = Grounder::new(&p).ground().unwrap();
        assert!(!is_head_cycle_free(&ground));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(!result.used_shift);
        assert_eq!(result.answer_sets.len(), 1);
        assert_eq!(result.answer_sets[0].len(), 2);
    }

    #[test]
    fn plain_disjunctive_fact_has_two_minimal_models() {
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
        for m in &result.answer_sets {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn choice_selects_exactly_one_witness() {
        use crate::syntax::{ChoiceAtom, Term};
        let mut p = Program::new();
        p.add_fact(atom("cand", &["k", "v1"]));
        p.add_fact(atom("cand", &["k", "v2"]));
        p.add_rule(Rule::new(
            vec![atom("pick", &["X", "W"])],
            vec![
                BodyItem::Pos(atom("cand", &["X", "W"])),
                BodyItem::Choice(ChoiceAtom::new(vec![Term::var("X")], vec![Term::var("W")])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
        for (i, _) in result.answer_sets.iter().enumerate() {
            let model = names(&result, i);
            let picks: Vec<&String> = model.iter().filter(|a| a.starts_with("pick(")).collect();
            assert_eq!(picks.len(), 1, "exactly one pick per answer set: {model:?}");
        }
    }

    #[test]
    fn incoherent_candidates_are_rejected() {
        // p.  -p.  — no coherent answer set.
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_fact(atom("p", &["a"]).strongly_negated());
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.answer_sets.is_empty());
    }

    #[test]
    fn classical_negation_in_heads_behaves_like_fresh_predicate() {
        // -q(X) :- p(X), not q(X).   with p(a): answer set contains -q(a).
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"]).strongly_negated()],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("-q(a)"));
    }

    #[test]
    fn max_answer_sets_limits_enumeration() {
        let mut p = Program::new();
        for v in ["a", "b", "c"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: 3,
            ..SolverConfig::default()
        };
        let result = solve(&p, config).unwrap();
        assert_eq!(result.answer_sets.len(), 3);
    }

    #[test]
    fn branch_node_limit_is_enforced() {
        let mut p = Program::new();
        for v in ["a", "b", "c", "d", "e", "f"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: usize::MAX,
            max_branch_nodes: 3,
        };
        assert!(matches!(
            solve(&p, config),
            Err(DatalogError::SearchLimitExceeded { .. })
        ));
    }

    #[test]
    fn hcf_and_generic_solvers_agree_on_hcf_programs() {
        // a v b :- c.   b v d :- c.  :- a, d.
        let mut p = Program::new();
        p.add_fact(atom("c", &["1"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &["X"]), atom("d", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        p.add_constraint(vec![
            BodyItem::Pos(atom("a", &["X"])),
            BodyItem::Pos(atom("d", &["X"])),
        ]);
        let ground = Grounder::new(&p).ground().unwrap();
        assert!(is_head_cycle_free(&ground));

        let shifted_result = solve(&p, SolverConfig::default()).unwrap();
        let generic = DisjunctiveSolver::new(&ground, SolverConfig::default());
        let (generic_sets, _) = generic.answer_sets().unwrap();

        let shifted_models: BTreeSet<BTreeSet<GroundAtom>> = shifted_result
            .answer_sets
            .iter()
            .map(|s| shifted_result.ground.decode(s))
            .collect();
        let generic_models: BTreeSet<BTreeSet<GroundAtom>> =
            generic_sets.iter().map(|s| ground.decode(s)).collect();
        assert_eq!(shifted_models, generic_models);
        // Minimal models of the rule part are {c,b} and {c,a,d}; the
        // constraint rules out the latter, leaving a single answer set.
        assert_eq!(shifted_models.len(), 1);
    }
}

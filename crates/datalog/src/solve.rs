//! Stable-model (answer-set) computation for ground programs.
//!
//! The solver has three layers:
//!
//! * [`NormalSolver`] — stable models of ground *normal* programs (single-atom
//!   heads) by DPLL-style search: unit/forward propagation, unsupported-atom
//!   and unfounded-set pruning, branching on undetermined atoms, and a final
//!   Gelfond–Lifschitz reduct check on every complete candidate.
//! * [`DisjunctiveSolver`] — answer sets of arbitrary ground disjunctive
//!   programs by candidate-model enumeration plus a reduct-minimality check.
//!   This is only used for programs that are *not* head-cycle-free; the
//!   paper's specification programs are HCF (Section 4.1), so the common path
//!   is shifting + [`NormalSolver`].
//! * [`solve`] — the front door: unfolds choices, grounds, picks the
//!   appropriate solver (normal / shifted-HCF / generic disjunctive) and
//!   enforces coherence of classical negation.
//!
//! ## Parallel model search
//!
//! Stable-model enumeration branches on undetermined atoms, and the two
//! subtrees under a branch never observe each other: the search is a pure
//! function of the assignment prefix. [`solve_ground_with`] exploits this by
//! expanding the first few levels of the search tree breadth-first into
//! independent *seed* assignments and fanning the subtree searches out across
//! a [`pdes_exec::Executor`] pool. Models are merged, sorted and deduplicated
//! exactly like the sequential path, so the answer sets are identical for any
//! worker count; the branch-node counter is shared (one atomic) so the
//! search-limit guard spans the whole pool. Enumeration with a finite
//! `max_answer_sets` falls back to the sequential path — "the first k models
//! in search order" is only well-defined sequentially.

use crate::error::DatalogError;
use crate::graph::is_head_cycle_free;
use crate::ground::{AtomId, GroundProgram, GroundRule, Grounder};
use crate::shift::shift_ground;
use crate::syntax::Program;
use pdes_exec::Executor;
use pdes_obs::{Recorder, Span};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Search limits and options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Stop after this many answer sets (`usize::MAX` = all).
    pub max_answer_sets: usize,
    /// Abort after this many branch nodes.
    pub max_branch_nodes: usize,
    /// Ground programs with fewer atoms than this solve sequentially even
    /// when a worker pool is supplied: below it, per-subtree work is so
    /// small that thread spawning dominates. Set to 0 to always fan out
    /// (used by the equivalence tests).
    pub parallel_min_atoms: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_answer_sets: usize::MAX,
            max_branch_nodes: 5_000_000,
            parallel_min_atoms: 128,
        }
    }
}

/// Result of an answer-set computation.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The ground program that was solved (after choice unfolding and, when
    /// applicable, HCF shifting of the original).
    pub ground: GroundProgram,
    /// The answer sets, as sets of atom ids of `ground`.
    pub answer_sets: Vec<BTreeSet<AtomId>>,
    /// Number of branch nodes explored.
    pub branch_nodes: usize,
    /// Whether the disjunctive program was solved by HCF shifting.
    pub used_shift: bool,
}

/// Compute the answer sets of a (non-ground) program.
///
/// Choice atoms are unfolded, the program is grounded, and the appropriate
/// solver is selected: normal programs and head-cycle-free disjunctive
/// programs go through the [`NormalSolver`] (the latter after shifting),
/// other disjunctive programs go through the [`DisjunctiveSolver`].
pub fn solve(program: &Program, config: SolverConfig) -> Result<SolveResult, DatalogError> {
    solve_with(program, config, &Executor::sequential())
}

/// [`solve`], fanning the stable-model search out across `exec`'s workers.
pub fn solve_with(
    program: &Program,
    config: SolverConfig,
    exec: &Executor,
) -> Result<SolveResult, DatalogError> {
    let ground = Grounder::new(program).ground()?;
    solve_ground_with(ground, config, exec)
}

/// [`solve_with`], grounding only the query-relevant slice of the program
/// (see [`crate::relevance`]). The answer sets of the pruned program agree
/// with the full program's on every relevant predicate; their *count* may be
/// lower, because dropped rules can only multiply models without changing
/// the relevant atoms.
pub fn solve_relevant_with(
    program: &Program,
    seeds: &[crate::relevance::QuerySeed],
    config: SolverConfig,
    exec: &Executor,
) -> Result<SolveResult, DatalogError> {
    let ground = Grounder::new(program).ground_relevant(seeds)?;
    solve_ground_with(ground, config, exec)
}

/// Compute the answer sets of an already-ground program.
pub fn solve_ground(
    ground: GroundProgram,
    config: SolverConfig,
) -> Result<SolveResult, DatalogError> {
    solve_ground_with(ground, config, &Executor::sequential())
}

/// [`solve_ground`], fanning the stable-model search out across `exec`'s
/// workers. The answer sets are identical to the sequential path for every
/// pool size (see the module docs); only normal and shifted-HCF programs
/// parallelize — the generic disjunctive solver's subset-minimality check is
/// the rare path and stays sequential.
pub fn solve_ground_with(
    ground: GroundProgram,
    config: SolverConfig,
    exec: &Executor,
) -> Result<SolveResult, DatalogError> {
    solve_ground_recorded(ground, config, exec, &pdes_obs::NullRecorder)
}

/// [`solve_ground_with`], reporting search telemetry to `recorder`: every
/// explored branch node counts towards the `solver.branch_nodes` counter,
/// and each parallel search subtree runs under a `solve.subtree` span (so a
/// trace shows the fan-out shape and per-subtree time).
pub fn solve_ground_recorded(
    ground: GroundProgram,
    config: SolverConfig,
    exec: &Executor,
    recorder: &dyn Recorder,
) -> Result<SolveResult, DatalogError> {
    if !ground.is_disjunctive() {
        let solver = NormalSolver::new(&ground, config);
        let (answer_sets, branch_nodes) = solver.answer_sets_recorded(exec, recorder)?;
        return Ok(SolveResult {
            ground,
            answer_sets,
            branch_nodes,
            used_shift: false,
        });
    }
    if is_head_cycle_free(&ground) {
        let shifted = shift_ground(&ground);
        let solver = NormalSolver::new(&shifted, config);
        let (answer_sets, branch_nodes) = solver.answer_sets_recorded(exec, recorder)?;
        return Ok(SolveResult {
            ground: shifted,
            answer_sets,
            branch_nodes,
            used_shift: true,
        });
    }
    let solver = DisjunctiveSolver::new(&ground, config);
    let (answer_sets, branch_nodes) = solver.answer_sets()?;
    recorder.count("solver.branch_nodes", branch_nodes as u64);
    Ok(SolveResult {
        ground,
        answer_sets,
        branch_nodes,
        used_shift: false,
    })
}

/// The branch-node budget of one enumeration, shared by every worker of a
/// parallel search so the global limit holds across the whole pool.
struct NodeBudget<'a> {
    counter: &'a AtomicUsize,
    limit: usize,
}

impl NodeBudget<'_> {
    /// Count one search node; error once the global limit is exceeded.
    fn tick(&self) -> Result<(), DatalogError> {
        let nodes = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if nodes > self.limit {
            return Err(DatalogError::SearchLimitExceeded {
                what: "branch nodes".to_string(),
                limit: self.limit,
            });
        }
        Ok(())
    }
}

/// Truth assignment used during search.
type Assignment = Vec<Option<bool>>;

/// Is the candidate coherent, i.e. free of `p` / `¬p` clashes?
fn is_coherent(program: &GroundProgram, model: &BTreeSet<AtomId>) -> bool {
    for &id in model {
        let atom = program.atom(id);
        if atom.strong_neg {
            continue;
        }
        let complement = atom.complement();
        if let Some(comp_id) = program.atom_id(&complement) {
            if model.contains(&comp_id) {
                return false;
            }
        }
    }
    true
}

/// Stable-model enumeration for normal ground programs.
pub struct NormalSolver<'a> {
    program: &'a GroundProgram,
    config: SolverConfig,
    /// For each atom, the indices of rules having it as head.
    rules_by_head: Vec<Vec<usize>>,
}

impl<'a> NormalSolver<'a> {
    /// Create a solver. Panics if the program is disjunctive (callers shift
    /// first).
    pub fn new(program: &'a GroundProgram, config: SolverConfig) -> Self {
        assert!(
            !program.is_disjunctive(),
            "NormalSolver requires a non-disjunctive program"
        );
        let mut rules_by_head = vec![Vec::new(); program.atom_count()];
        for (idx, rule) in program.rules().iter().enumerate() {
            for &h in &rule.heads {
                rules_by_head[h].push(idx);
            }
        }
        NormalSolver {
            program,
            config,
            rules_by_head,
        }
    }

    /// Enumerate all stable models. Returns (models, branch node count).
    pub fn answer_sets(&self) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        self.answer_sets_with(&Executor::sequential())
    }

    /// Enumerate all stable models, fanning independent search subtrees out
    /// across `exec`'s workers. The first few tree levels are expanded
    /// breadth-first into seed assignments (a few per worker, so an
    /// unbalanced tree still load-balances); each seed's subtree is searched
    /// sequentially by one worker. Results are merged, sorted and
    /// deduplicated, which makes the output identical to [`Self::answer_sets`]
    /// for every pool size. A finite `max_answer_sets` forces the sequential
    /// path (see the module docs). Returns (models, branch node count).
    pub fn answer_sets_with(
        &self,
        exec: &Executor,
    ) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        self.answer_sets_recorded(exec, &pdes_obs::NullRecorder)
    }

    /// [`Self::answer_sets_with`], reporting search telemetry to `recorder`
    /// (`solver.branch_nodes` counter; one `solve.subtree` span per parallel
    /// search subtree).
    pub fn answer_sets_recorded(
        &self,
        exec: &Executor,
        recorder: &dyn Recorder,
    ) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        let counter = AtomicUsize::new(0);
        let budget = NodeBudget {
            counter: &counter,
            limit: self.config.max_branch_nodes,
        };
        let root: Assignment = vec![None; self.program.atom_count()];
        let workers = exec.config().workers;
        let mut models = Vec::new();
        if workers <= 1
            || self.config.max_answer_sets != usize::MAX
            || self.program.atom_count() < self.config.parallel_min_atoms
        {
            self.search(root, &mut models, &budget)?;
        } else {
            let seeds = self.expand_seeds(root, workers * 4, &mut models, &budget)?;
            recorder.count("solver.subtrees", seeds.len() as u64);
            let found = exec.try_map(&seeds, |seed| {
                let span = Span::enter(recorder, "solve.subtree");
                let mut local = Vec::new();
                self.search(seed.clone(), &mut local, &budget)?;
                span.finish();
                Ok::<_, DatalogError>(local)
            })?;
            models.extend(found.into_iter().flatten());
        }
        // Deterministic order for reproducibility.
        models.sort();
        models.dedup();
        let branch_nodes = counter.load(Ordering::Relaxed);
        recorder.count("solver.branch_nodes", branch_nodes as u64);
        Ok((models, branch_nodes))
    }

    /// Expand the search tree breadth-first until at least `target` open
    /// nodes exist (or the tree is exhausted). Complete nodes encountered on
    /// the way are model-checked into `models` directly; the returned seeds
    /// are exactly the open frontier, so seeds ∪ visited covers the same
    /// tree the sequential search walks.
    fn expand_seeds(
        &self,
        root: Assignment,
        target: usize,
        models: &mut Vec<BTreeSet<AtomId>>,
        budget: &NodeBudget<'_>,
    ) -> Result<Vec<Assignment>, DatalogError> {
        let mut frontier: VecDeque<Assignment> = VecDeque::from([root]);
        while frontier.len() < target {
            let Some(mut assign) = frontier.pop_front() else {
                break;
            };
            budget.tick()?;
            if !self.propagate(&mut assign) {
                continue;
            }
            match self.pick_branch_atom(&assign) {
                None => self.collect_if_stable(&assign, models),
                Some(atom) => {
                    for value in [true, false] {
                        let mut next = assign.clone();
                        next[atom] = Some(value);
                        frontier.push_back(next);
                    }
                }
            }
        }
        Ok(frontier.into_iter().collect())
    }

    /// Model-check a complete assignment and keep it when stable+coherent.
    fn collect_if_stable(&self, assign: &Assignment, models: &mut Vec<BTreeSet<AtomId>>) {
        let model: BTreeSet<AtomId> = assign
            .iter()
            .enumerate()
            .filter_map(|(i, v)| if *v == Some(true) { Some(i) } else { None })
            .collect();
        if self.is_stable(&model) && is_coherent(self.program, &model) {
            models.push(model);
        }
    }

    fn search(
        &self,
        mut assign: Assignment,
        models: &mut Vec<BTreeSet<AtomId>>,
        budget: &NodeBudget<'_>,
    ) -> Result<(), DatalogError> {
        if models.len() >= self.config.max_answer_sets {
            return Ok(());
        }
        budget.tick()?;
        if !self.propagate(&mut assign) {
            return Ok(());
        }
        match self.pick_branch_atom(&assign) {
            None => {
                self.collect_if_stable(&assign, models);
                Ok(())
            }
            Some(atom) => {
                for value in [true, false] {
                    let mut next = assign.clone();
                    next[atom] = Some(value);
                    self.search(next, models, budget)?;
                    if models.len() >= self.config.max_answer_sets {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Deterministic propagation. Returns `false` on conflict.
    fn propagate(&self, assign: &mut Assignment) -> bool {
        loop {
            let mut changed = false;

            // Forward propagation and constraint checking.
            for rule in self.program.rules() {
                match self.body_status(rule, assign) {
                    BodyStatus::Satisfied => {
                        if let Some(&head) = rule.heads.first() {
                            match assign[head] {
                                Some(false) => return false,
                                Some(true) => {}
                                None => {
                                    assign[head] = Some(true);
                                    changed = true;
                                }
                            }
                        } else {
                            // Satisfied constraint body.
                            return false;
                        }
                    }
                    BodyStatus::Dead | BodyStatus::Open => {}
                }
            }

            // Unsupported atoms must be false; true atoms whose every rule is
            // dead are a conflict.
            for atom in 0..self.program.atom_count() {
                if assign[atom] == Some(false) {
                    continue;
                }
                let alive = self.rules_by_head[atom].iter().any(|&r| {
                    self.body_status(&self.program.rules()[r], assign) != BodyStatus::Dead
                });
                if !alive {
                    match assign[atom] {
                        Some(true) => return false,
                        Some(false) => {}
                        None => {
                            assign[atom] = Some(false);
                            changed = true;
                        }
                    }
                }
            }

            // Unfounded-set pruning: atoms outside the optimistic derivable
            // set cannot be true.
            let derivable = self.optimistic_derivable(assign);
            for (atom, slot) in assign.iter_mut().enumerate() {
                if derivable.contains(&atom) {
                    continue;
                }
                match *slot {
                    Some(true) => return false,
                    Some(false) => {}
                    None => {
                        *slot = Some(false);
                        changed = true;
                    }
                }
            }

            if !changed {
                return true;
            }
        }
    }

    /// Least fixpoint of atoms still derivable given the current assignment,
    /// reading unassigned default-negated literals optimistically.
    fn optimistic_derivable(&self, assign: &Assignment) -> BTreeSet<AtomId> {
        let mut derivable: BTreeSet<AtomId> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let head = match rule.heads.first() {
                    Some(&h) => h,
                    None => continue,
                };
                if derivable.contains(&head) || assign[head] == Some(false) {
                    continue;
                }
                let pos_ok = rule
                    .pos
                    .iter()
                    .all(|&p| derivable.contains(&p) && assign[p] != Some(false));
                let neg_ok = rule.neg.iter().all(|&n| assign[n] != Some(true));
                if pos_ok && neg_ok {
                    derivable.insert(head);
                    changed = true;
                }
            }
            if !changed {
                return derivable;
            }
        }
    }

    /// Pick the next atom to branch on: prefer atoms occurring under default
    /// negation in rules that are still open.
    fn pick_branch_atom(&self, assign: &Assignment) -> Option<AtomId> {
        let mut fallback = None;
        for rule in self.program.rules() {
            if self.body_status(rule, assign) != BodyStatus::Open {
                continue;
            }
            for &n in &rule.neg {
                if assign[n].is_none() {
                    return Some(n);
                }
            }
            for &p in &rule.pos {
                if assign[p].is_none() && fallback.is_none() {
                    fallback = Some(p);
                }
            }
            for &h in &rule.heads {
                if assign[h].is_none() && fallback.is_none() {
                    fallback = Some(h);
                }
            }
        }
        if fallback.is_some() {
            return fallback;
        }
        assign.iter().position(|v| v.is_none())
    }

    fn body_status(&self, rule: &GroundRule, assign: &Assignment) -> BodyStatus {
        let mut open = false;
        for &p in &rule.pos {
            match assign[p] {
                Some(false) => return BodyStatus::Dead,
                Some(true) => {}
                None => open = true,
            }
        }
        for &n in &rule.neg {
            match assign[n] {
                Some(true) => return BodyStatus::Dead,
                Some(false) => {}
                None => open = true,
            }
        }
        if open {
            BodyStatus::Open
        } else {
            BodyStatus::Satisfied
        }
    }

    /// Gelfond–Lifschitz check: is the candidate the least model of its own
    /// reduct, and does it satisfy every constraint?
    fn is_stable(&self, model: &BTreeSet<AtomId>) -> bool {
        // Constraints must be classically satisfied.
        for rule in self.program.rules() {
            if !rule.heads.is_empty() {
                continue;
            }
            let body_true = rule.pos.iter().all(|p| model.contains(p))
                && rule.neg.iter().all(|n| !model.contains(n));
            if body_true {
                return false;
            }
        }
        // Least model of the reduct.
        let mut least: BTreeSet<AtomId> = BTreeSet::new();
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let head = match rule.heads.first() {
                    Some(&h) => h,
                    None => continue,
                };
                if least.contains(&head) {
                    continue;
                }
                if rule.neg.iter().any(|n| model.contains(n)) {
                    continue; // removed by the reduct
                }
                if rule.pos.iter().all(|p| least.contains(p)) {
                    least.insert(head);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        &least == model
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyStatus {
    /// Some body literal is definitely false.
    Dead,
    /// All body literals are definitely true.
    Satisfied,
    /// Neither dead nor satisfied yet.
    Open,
}

/// Generic answer-set enumeration for (possibly non-HCF) disjunctive ground
/// programs: enumerate classical models of the rules, then keep those that
/// are minimal models of their Gelfond–Lifschitz reduct.
pub struct DisjunctiveSolver<'a> {
    program: &'a GroundProgram,
    config: SolverConfig,
}

impl<'a> DisjunctiveSolver<'a> {
    /// Create a solver.
    pub fn new(program: &'a GroundProgram, config: SolverConfig) -> Self {
        DisjunctiveSolver { program, config }
    }

    /// Enumerate all answer sets. Returns (models, branch node count).
    pub fn answer_sets(&self) -> Result<(Vec<BTreeSet<AtomId>>, usize), DatalogError> {
        let mut models = Vec::new();
        let mut nodes = 0usize;
        let assign: Assignment = vec![None; self.program.atom_count()];
        self.search(assign, &mut models, &mut nodes)?;
        models.sort();
        models.dedup();
        Ok((models, nodes))
    }

    fn search(
        &self,
        mut assign: Assignment,
        models: &mut Vec<BTreeSet<AtomId>>,
        nodes: &mut usize,
    ) -> Result<(), DatalogError> {
        if models.len() >= self.config.max_answer_sets {
            return Ok(());
        }
        *nodes += 1;
        if *nodes > self.config.max_branch_nodes {
            return Err(DatalogError::SearchLimitExceeded {
                what: "branch nodes".to_string(),
                limit: self.config.max_branch_nodes,
            });
        }
        if !self.propagate(&mut assign) {
            return Ok(());
        }
        match assign.iter().position(|v| v.is_none()) {
            None => {
                let model: BTreeSet<AtomId> = assign
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| if *v == Some(true) { Some(i) } else { None })
                    .collect();
                if self.is_answer_set(&model) && is_coherent(self.program, &model) {
                    models.push(model);
                }
                Ok(())
            }
            Some(atom) => {
                for value in [false, true] {
                    let mut next = assign.clone();
                    next[atom] = Some(value);
                    self.search(next, models, nodes)?;
                    if models.len() >= self.config.max_answer_sets {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Weak propagation for classical-model enumeration.
    fn propagate(&self, assign: &mut Assignment) -> bool {
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                let mut body_open = false;
                let mut body_dead = false;
                for &p in &rule.pos {
                    match assign[p] {
                        Some(false) => body_dead = true,
                        Some(true) => {}
                        None => body_open = true,
                    }
                }
                for &n in &rule.neg {
                    match assign[n] {
                        Some(true) => body_dead = true,
                        Some(false) => {}
                        None => body_open = true,
                    }
                }
                if body_dead || body_open {
                    continue;
                }
                // Body is satisfied: at least one head atom must be true.
                let mut undecided = Vec::new();
                let mut any_true = false;
                for &h in &rule.heads {
                    match assign[h] {
                        Some(true) => any_true = true,
                        Some(false) => {}
                        None => undecided.push(h),
                    }
                }
                if any_true {
                    continue;
                }
                match undecided.len() {
                    0 => return false,
                    1 => {
                        assign[undecided[0]] = Some(true);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Answer-set test: the candidate must be a model of the program and a
    /// *minimal* model of its reduct.
    fn is_answer_set(&self, model: &BTreeSet<AtomId>) -> bool {
        // Model check (including constraints).
        for rule in self.program.rules() {
            let body_true = rule.pos.iter().all(|p| model.contains(p))
                && rule.neg.iter().all(|n| !model.contains(n));
            if body_true && !rule.heads.iter().any(|h| model.contains(h)) {
                return false;
            }
        }
        !self.has_smaller_reduct_model(model)
    }

    /// Search for a proper subset of `model` that is still a model of the
    /// Gelfond–Lifschitz reduct. Atoms outside `model` stay false.
    fn has_smaller_reduct_model(&self, model: &BTreeSet<AtomId>) -> bool {
        // Reduct rules restricted to the atoms of the candidate.
        let mut reduct: Vec<(Vec<AtomId>, Vec<AtomId>)> = Vec::new(); // (pos, heads)
        for rule in self.program.rules() {
            if rule.heads.is_empty() {
                continue;
            }
            if rule.neg.iter().any(|n| model.contains(n)) {
                continue;
            }
            if rule.pos.iter().any(|p| !model.contains(p)) {
                // Some positive body atom is false in the candidate and stays
                // false in any subset: the rule can never fire.
                continue;
            }
            let heads: Vec<AtomId> = rule
                .heads
                .iter()
                .copied()
                .filter(|h| model.contains(h))
                .collect();
            // If no head atom is in the model the rule is violated by the
            // candidate itself; `is_answer_set` already rejected that case.
            reduct.push((rule.pos.clone(), heads));
        }
        let atoms: Vec<AtomId> = model.iter().copied().collect();
        let mut truth: std::collections::BTreeMap<AtomId, Option<bool>> =
            atoms.iter().map(|&a| (a, None)).collect();
        self.subset_search(&reduct, &atoms, &mut truth, 0, model)
    }

    /// Try to build a model of the reduct that is a proper subset of the
    /// candidate.
    fn subset_search(
        &self,
        reduct: &[(Vec<AtomId>, Vec<AtomId>)],
        atoms: &[AtomId],
        truth: &mut std::collections::BTreeMap<AtomId, Option<bool>>,
        idx: usize,
        model: &BTreeSet<AtomId>,
    ) -> bool {
        if idx == atoms.len() {
            // Full assignment: check all reduct rules and properness.
            let assigned: BTreeSet<AtomId> = truth
                .iter()
                .filter_map(|(&a, &v)| if v == Some(true) { Some(a) } else { None })
                .collect();
            if assigned.len() == model.len() {
                return false; // not a proper subset
            }
            for (pos, heads) in reduct {
                let body_true = pos.iter().all(|p| assigned.contains(p));
                if body_true && !heads.iter().any(|h| assigned.contains(h)) {
                    return false;
                }
            }
            return true;
        }
        let atom = atoms[idx];
        for value in [false, true] {
            truth.insert(atom, Some(value));
            // Early pruning: check rules whose atoms are all assigned.
            let consistent = reduct.iter().all(|(pos, heads)| {
                let body_status: Option<bool> = {
                    let mut all_true = true;
                    let mut unknown = false;
                    for p in pos {
                        match truth.get(p).copied().flatten() {
                            Some(true) => {}
                            Some(false) => {
                                all_true = false;
                                break;
                            }
                            None => unknown = true,
                        }
                    }
                    if !all_true {
                        Some(false)
                    } else if unknown {
                        None
                    } else {
                        Some(true)
                    }
                };
                match body_status {
                    Some(false) | None => true,
                    Some(true) => heads
                        .iter()
                        .any(|h| matches!(truth.get(h).copied().flatten(), Some(true) | None)),
                }
            });
            if consistent && self.subset_search(reduct, atoms, truth, idx + 1, model) {
                truth.insert(atom, None);
                return true;
            }
        }
        truth.insert(atom, None);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundAtom;
    use crate::syntax::{Atom, BodyItem, Rule};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    fn names(result: &SolveResult, set_idx: usize) -> BTreeSet<String> {
        result.answer_sets[set_idx]
            .iter()
            .map(|&id| result.ground.atom(id).to_string())
            .collect()
    }

    #[test]
    fn definite_program_has_single_minimal_model() {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Y"])],
            vec![BodyItem::Pos(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("reach", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("reach(a, c)"));
        assert_eq!(model.len(), 2 + 3);
    }

    #[test]
    fn even_negation_cycle_has_two_answer_sets() {
        // p :- dom, not q.   q :- dom, not p.
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
    }

    #[test]
    fn odd_negation_cycle_has_no_answer_set() {
        // p :- dom, not p.
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.answer_sets.is_empty());
    }

    #[test]
    fn positive_loop_is_unfounded() {
        // a :- b.  b :- a.  — neither is derivable.
        let mut p = Program::new();
        p.add_fact(atom("seed", &[] as &[&str]));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str])],
            vec![BodyItem::Pos(atom("b", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("a", &[] as &[&str]))],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        assert_eq!(result.answer_sets[0].len(), 1); // only `seed`
    }

    #[test]
    fn constraints_filter_answer_sets() {
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        p.add_constraint(vec![BodyItem::Pos(atom("p", &["a"]))]);
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("q(a)"));
    }

    #[test]
    fn hcf_disjunction_is_shifted_and_split() {
        // a v b :- c.  with fact c: two answer sets {c,a} and {c,b}.
        let mut p = Program::new();
        p.add_fact(atom("c", &["1"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.used_shift);
        assert_eq!(result.answer_sets.len(), 2);
    }

    #[test]
    fn non_hcf_disjunction_uses_minimality_check() {
        // a v b.   a :- b.   b :- a.  — answer sets are {a,b}? No: candidate
        // models {a,b} (from disjunction + closure). Minimal models of the
        // reduct (= program, no negation): {a, b} is a model, but so are
        // neither {a} nor {b} alone (each forces the other), and {} violates
        // the disjunctive fact. Hence the single answer set is {a, b}.
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![],
        ));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str])],
            vec![BodyItem::Pos(atom("b", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("a", &[] as &[&str]))],
        ));
        let ground = Grounder::new(&p).ground().unwrap();
        assert!(!is_head_cycle_free(&ground));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(!result.used_shift);
        assert_eq!(result.answer_sets.len(), 1);
        assert_eq!(result.answer_sets[0].len(), 2);
    }

    #[test]
    fn plain_disjunctive_fact_has_two_minimal_models() {
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
        for m in &result.answer_sets {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn choice_selects_exactly_one_witness() {
        use crate::syntax::{ChoiceAtom, Term};
        let mut p = Program::new();
        p.add_fact(atom("cand", &["k", "v1"]));
        p.add_fact(atom("cand", &["k", "v2"]));
        p.add_rule(Rule::new(
            vec![atom("pick", &["X", "W"])],
            vec![
                BodyItem::Pos(atom("cand", &["X", "W"])),
                BodyItem::Choice(ChoiceAtom::new(vec![Term::var("X")], vec![Term::var("W")])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 2);
        for (i, _) in result.answer_sets.iter().enumerate() {
            let model = names(&result, i);
            let picks: Vec<&String> = model.iter().filter(|a| a.starts_with("pick(")).collect();
            assert_eq!(picks.len(), 1, "exactly one pick per answer set: {model:?}");
        }
    }

    #[test]
    fn incoherent_candidates_are_rejected() {
        // p.  -p.  — no coherent answer set.
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_fact(atom("p", &["a"]).strongly_negated());
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert!(result.answer_sets.is_empty());
    }

    #[test]
    fn classical_negation_in_heads_behaves_like_fresh_predicate() {
        // -q(X) :- p(X), not q(X).   with p(a): answer set contains -q(a).
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"]).strongly_negated()],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        let result = solve(&p, SolverConfig::default()).unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let model = names(&result, 0);
        assert!(model.contains("-q(a)"));
    }

    #[test]
    fn max_answer_sets_limits_enumeration() {
        let mut p = Program::new();
        for v in ["a", "b", "c"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: 3,
            ..SolverConfig::default()
        };
        let result = solve(&p, config).unwrap();
        assert_eq!(result.answer_sets.len(), 3);
    }

    #[test]
    fn branch_node_limit_is_enforced() {
        let mut p = Program::new();
        for v in ["a", "b", "c", "d", "e", "f"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: usize::MAX,
            max_branch_nodes: 3,
            ..SolverConfig::default()
        };
        assert!(matches!(
            solve(&p, config),
            Err(DatalogError::SearchLimitExceeded { .. })
        ));
    }

    #[test]
    fn parallel_search_matches_sequential_for_every_pool_size() {
        use pdes_exec::ExecConfig;
        // A program with many independent even negation cycles: 2^6 answer
        // sets, enough branching to exercise seed expansion and fan-out.
        let mut p = Program::new();
        for v in ["a", "b", "c", "d", "e", "f"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        p.add_constraint(vec![
            BodyItem::Pos(atom("in", &["a"])),
            BodyItem::Pos(atom("in", &["b"])),
        ]);
        // Threshold 0 so the tiny test program still takes the parallel
        // path (the default keeps small programs sequential on purpose).
        let config = SolverConfig {
            parallel_min_atoms: 0,
            ..SolverConfig::default()
        };
        let sequential = solve(&p, config).unwrap();
        assert_eq!(sequential.answer_sets.len(), 48); // 2^6 minus in(a)∧in(b)
        let decode = |r: &SolveResult| -> Vec<BTreeSet<GroundAtom>> {
            r.answer_sets.iter().map(|s| r.ground.decode(s)).collect()
        };
        for workers in [2, 4, 8] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            let parallel = solve_with(&p, config, &exec).unwrap();
            assert_eq!(
                decode(&parallel),
                decode(&sequential),
                "{workers} workers must reproduce the sequential answer sets"
            );
            assert!(parallel.branch_nodes > 0);
        }
    }

    #[test]
    fn parallel_search_enforces_the_shared_branch_limit() {
        use pdes_exec::ExecConfig;
        let mut p = Program::new();
        for i in 0..8 {
            p.add_fact(atom("dom", &[&format!("v{i}")]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: usize::MAX,
            max_branch_nodes: 5,
            parallel_min_atoms: 0,
        };
        let exec = Executor::new(ExecConfig::with_workers(4));
        assert!(matches!(
            solve_with(&p, config, &exec),
            Err(DatalogError::SearchLimitExceeded { .. })
        ));
    }

    #[test]
    fn bounded_enumeration_falls_back_to_the_sequential_path() {
        use pdes_exec::ExecConfig;
        let mut p = Program::new();
        for v in ["a", "b", "c"] {
            p.add_fact(atom("dom", &[v]));
        }
        p.add_rule(Rule::new(
            vec![atom("in", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("out", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("out", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("in", &["X"])),
            ],
        ));
        let config = SolverConfig {
            max_answer_sets: 3,
            ..SolverConfig::default()
        };
        let sequential = solve(&p, config).unwrap();
        let exec = Executor::new(ExecConfig::with_workers(8));
        let parallel = solve_with(&p, config, &exec).unwrap();
        assert_eq!(parallel.answer_sets, sequential.answer_sets);
        assert_eq!(parallel.answer_sets.len(), 3);
    }

    #[test]
    fn hcf_and_generic_solvers_agree_on_hcf_programs() {
        // a v b :- c.   b v d :- c.  :- a, d.
        let mut p = Program::new();
        p.add_fact(atom("c", &["1"]));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &["X"]), atom("d", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        ));
        p.add_constraint(vec![
            BodyItem::Pos(atom("a", &["X"])),
            BodyItem::Pos(atom("d", &["X"])),
        ]);
        let ground = Grounder::new(&p).ground().unwrap();
        assert!(is_head_cycle_free(&ground));

        let shifted_result = solve(&p, SolverConfig::default()).unwrap();
        let generic = DisjunctiveSolver::new(&ground, SolverConfig::default());
        let (generic_sets, _) = generic.answer_sets().unwrap();

        let shifted_models: BTreeSet<BTreeSet<GroundAtom>> = shifted_result
            .answer_sets
            .iter()
            .map(|s| shifted_result.ground.decode(s))
            .collect();
        let generic_models: BTreeSet<BTreeSet<GroundAtom>> =
            generic_sets.iter().map(|s| ground.decode(s)).collect();
        assert_eq!(shifted_models, generic_models);
        // Minimal models of the rule part are {c,b} and {c,a,d}; the
        // constraint rules out the latter, leaving a single answer set.
        assert_eq!(shifted_models.len(), 1);
    }
}

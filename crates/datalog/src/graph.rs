//! Dependency graphs: strongly connected components, head-cycle-freeness and
//! stratification.
//!
//! Section 4.1 of the paper relies on the notion of *head-cycle-free* (HCF)
//! disjunctive programs (Ben-Eliyahu & Dechter): a disjunctive program is HCF
//! when no two atoms occurring in the same rule head share a cycle of the
//! positive dependency graph. HCF programs can be *shifted* into equivalent
//! non-disjunctive programs (see [`crate::shift`]), which is the optimization
//! Example 3 illustrates.
//!
//! This module also provides predicate-level stratification checking, used by
//! the solver to take a deterministic fixpoint fast path for stratified
//! normal programs.

use crate::ground::{AtomId, GroundProgram};
use crate::syntax::{BodyItem, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Strongly connected components of a directed graph given as adjacency
/// lists over `0..n`. Returns, for each node, the index of its component;
/// components are numbered in reverse topological order (Kosaraju).
pub fn strongly_connected_components(n: usize, edges: &[Vec<usize>]) -> Vec<usize> {
    // Kosaraju with explicit stacks (no recursion).
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        visited[start] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < edges[node].len() {
                let next = edges[node][*idx];
                *idx += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
    }

    // Transpose.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, outs) in edges.iter().enumerate() {
        for &to in outs {
            reverse[to].push(from);
        }
    }

    let mut component = vec![usize::MAX; n];
    let mut current = 0;
    for &node in order.iter().rev() {
        if component[node] != usize::MAX {
            continue;
        }
        // DFS over the transposed graph.
        let mut stack = vec![node];
        component[node] = current;
        while let Some(v) = stack.pop() {
            for &w in &reverse[v] {
                if component[w] == usize::MAX {
                    component[w] = current;
                    stack.push(w);
                }
            }
        }
        current += 1;
    }
    component
}

/// The positive atom-dependency graph of a ground program: an edge from every
/// positive body atom to every head atom of the same rule.
pub fn positive_dependency_graph(program: &GroundProgram) -> Vec<Vec<AtomId>> {
    let mut edges: Vec<BTreeSet<AtomId>> = vec![BTreeSet::new(); program.atom_count()];
    for rule in program.rules() {
        for &b in &rule.pos {
            for &h in &rule.heads {
                edges[b].insert(h);
            }
        }
    }
    edges.into_iter().map(|s| s.into_iter().collect()).collect()
}

/// Is the ground program head-cycle-free?
///
/// A program is HCF iff no rule has two distinct head atoms lying in the same
/// strongly connected component of the positive dependency graph.
pub fn is_head_cycle_free(program: &GroundProgram) -> bool {
    if !program.is_disjunctive() {
        return true;
    }
    let edges = positive_dependency_graph(program);
    let component = strongly_connected_components(program.atom_count(), &edges);
    for rule in program.rules() {
        for (i, &a) in rule.heads.iter().enumerate() {
            for &b in &rule.heads[i + 1..] {
                if a != b && component[a] == component[b] {
                    return false;
                }
            }
        }
    }
    true
}

/// One recursion-through-negation component of a program, reported by
/// [`PredicateGraph::negation_loops`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NegationLoop {
    /// The signed predicates of the strongly connected component, sorted.
    pub predicates: Vec<String>,
    /// The members lying on a cycle with an *odd* number of negative edges
    /// (sorted). Empty when the component only has even recursion through
    /// negation.
    pub odd_core: Vec<String>,
}

/// Predicate-level dependency information of a non-ground program.
#[derive(Debug, Clone)]
pub struct PredicateGraph {
    predicates: Vec<String>,
    index: BTreeMap<String, usize>,
    /// Positive edges body → head.
    positive: Vec<BTreeSet<usize>>,
    /// Negative (default-negation) edges body → head.
    negative: Vec<BTreeSet<usize>>,
}

impl PredicateGraph {
    /// Build the predicate dependency graph of a program (signed predicates:
    /// `p` and `-p` are distinct nodes).
    pub fn new(program: &Program) -> Self {
        let mut index = BTreeMap::new();
        let mut predicates = Vec::new();
        let intern =
            |name: String, predicates: &mut Vec<String>, index: &mut BTreeMap<String, usize>| {
                *index.entry(name.clone()).or_insert_with(|| {
                    predicates.push(name);
                    predicates.len() - 1
                })
            };
        for p in program.predicates() {
            intern(p, &mut predicates, &mut index);
        }
        let mut positive = vec![BTreeSet::new(); predicates.len()];
        let mut negative = vec![BTreeSet::new(); predicates.len()];
        for rule in program.rules() {
            let heads: Vec<usize> = rule
                .head
                .iter()
                .map(|a| index[&a.signed_predicate()])
                .collect();
            for item in &rule.body {
                match item {
                    BodyItem::Pos(a) => {
                        let b = index[&a.signed_predicate()];
                        for &h in &heads {
                            positive[b].insert(h);
                        }
                    }
                    BodyItem::Naf(a) => {
                        let b = index[&a.signed_predicate()];
                        for &h in &heads {
                            negative[b].insert(h);
                        }
                    }
                    _ => {}
                }
            }
        }
        PredicateGraph {
            predicates,
            index,
            positive,
            negative,
        }
    }

    /// Number of (signed) predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when the graph has no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Is the program stratified (no cycle through a negative edge)?
    pub fn is_stratified(&self) -> bool {
        let n = self.len();
        let mut all_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, outs) in self.positive.iter().enumerate() {
            all_edges[from].extend(outs.iter().copied());
        }
        for (from, outs) in self.negative.iter().enumerate() {
            all_edges[from].extend(outs.iter().copied());
        }
        let component = strongly_connected_components(n, &all_edges);
        for (from, outs) in self.negative.iter().enumerate() {
            for &to in outs {
                if component[from] == component[to] {
                    return false;
                }
            }
        }
        true
    }

    /// The (signed) predicate names, in interning order.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.predicates.iter().map(|s| s.as_str())
    }

    /// The recursion-through-negation components of the program: one
    /// [`NegationLoop`] per strongly connected component (of the combined
    /// positive + negative dependency graph) that contains at least one
    /// internal negative edge. The program [`PredicateGraph::is_stratified`]
    /// exactly when this is empty.
    ///
    /// Each loop also reports its *odd core*: the member predicates lying on
    /// some cycle with an odd number of negative edges. Even loops (empty
    /// core) are the benign `p ← not q, q ← not p` pattern the stable-model
    /// semantics resolves by branching; odd loops can make atoms
    /// unsupportable and are what the static analyzer warns about.
    pub fn negation_loops(&self) -> Vec<NegationLoop> {
        let n = self.len();
        let mut all_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, outs) in self.positive.iter().enumerate() {
            all_edges[from].extend(outs.iter().copied());
        }
        for (from, outs) in self.negative.iter().enumerate() {
            all_edges[from].extend(outs.iter().copied());
        }
        let component = strongly_connected_components(n, &all_edges);

        // Components with at least one internal negative edge, in the order
        // of their smallest member index.
        let mut flagged: Vec<usize> = Vec::new();
        for (from, outs) in self.negative.iter().enumerate() {
            for &to in outs {
                if component[from] == component[to] && !flagged.contains(&component[from]) {
                    flagged.push(component[from]);
                }
            }
        }

        let mut loops = Vec::new();
        for comp in flagged {
            let members: Vec<usize> = (0..n).filter(|&v| component[v] == comp).collect();
            let local: BTreeMap<usize, usize> = members
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, local))
                .collect();
            // Parity-doubled graph restricted to the component: node `2v+p`
            // is "v reached with negative-edge parity p"; an edge of sign s
            // maps (v, p) → (w, p ⊕ s). A member lies on an odd negative
            // cycle exactly when both of its copies share an SCC.
            let m = members.len();
            let mut doubled: Vec<Vec<usize>> = vec![Vec::new(); 2 * m];
            for (&from, &lf) in &local {
                for (edges, sign) in [(&self.positive, 0usize), (&self.negative, 1usize)] {
                    for &to in &edges[from] {
                        if let Some(&lt) = local.get(&to) {
                            doubled[2 * lf].push(2 * lt + sign);
                            doubled[2 * lf + 1].push(2 * lt + (1 - sign));
                        }
                    }
                }
            }
            let dcomp = strongly_connected_components(2 * m, &doubled);
            let mut odd_core: Vec<String> = members
                .iter()
                .enumerate()
                .filter(|&(local_idx, _)| dcomp[2 * local_idx] == dcomp[2 * local_idx + 1])
                .map(|(_, &global)| self.predicates[global].clone())
                .collect();
            odd_core.sort();
            let mut predicates: Vec<String> = members
                .iter()
                .map(|&v| self.predicates[v].clone())
                .collect();
            predicates.sort();
            loops.push(NegationLoop {
                predicates,
                odd_core,
            });
        }
        loops.sort();
        loops
    }

    /// A stratification: predicate name → stratum number (0-based), lowest
    /// strata first. Returns `None` when the program is not stratified.
    pub fn stratification(&self) -> Option<BTreeMap<String, usize>> {
        if !self.is_stratified() {
            return None;
        }
        let n = self.len();
        // Longest-path layering over the condensation: iterate to fixpoint
        // (n iterations suffice because the condensation is acyclic w.r.t.
        // negative edges and positive cycles keep equal strata).
        let mut stratum = vec![0usize; n];
        let mut changed = true;
        let mut guard = 0;
        while changed && guard <= n + 1 {
            changed = false;
            guard += 1;
            for (from, outs) in self.positive.iter().enumerate() {
                for &to in outs {
                    if stratum[to] < stratum[from] {
                        stratum[to] = stratum[from];
                        changed = true;
                    }
                }
            }
            for (from, outs) in self.negative.iter().enumerate() {
                for &to in outs {
                    if stratum[to] < stratum[from] + 1 {
                        stratum[to] = stratum[from] + 1;
                        changed = true;
                    }
                }
            }
        }
        let mut out = BTreeMap::new();
        for (name, &idx) in &self.index {
            out.insert(name.clone(), stratum[idx]);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::syntax::{Atom, Rule};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn scc_identifies_cycles() {
        // 0 -> 1 -> 2 -> 0 (one SCC), 3 -> 0 (own SCC).
        let edges = vec![vec![1], vec![2], vec![0], vec![0]];
        let comp = strongly_connected_components(4, &edges);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
    }

    #[test]
    fn scc_handles_disconnected_nodes() {
        let edges = vec![vec![], vec![], vec![]];
        let comp = strongly_connected_components(3, &edges);
        let distinct: BTreeSet<usize> = comp.into_iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn non_disjunctive_programs_are_hcf() {
        let mut p = Program::new();
        p.add_fact(atom("a", &["x"]));
        p.add_rule(Rule::new(
            vec![atom("b", &["X"])],
            vec![BodyItem::Pos(atom("a", &["X"]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert!(is_head_cycle_free(&g));
    }

    #[test]
    fn disjunction_without_cycle_is_hcf() {
        // a v b :- c.   (no positive path between a and b)
        let mut p = Program::new();
        p.add_fact(atom("c", &[] as &[&str]));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("c", &[] as &[&str]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert!(is_head_cycle_free(&g));
    }

    #[test]
    fn head_cycle_is_detected() {
        // a v b :- c.   a :- b.   b :- a.   → a and b share an SCC.
        let mut p = Program::new();
        p.add_fact(atom("c", &[] as &[&str]));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str]), atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("c", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("a", &[] as &[&str])],
            vec![BodyItem::Pos(atom("b", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("b", &[] as &[&str])],
            vec![BodyItem::Pos(atom("a", &[] as &[&str]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert!(!is_head_cycle_free(&g));
    }

    #[test]
    fn stratified_program_detected() {
        // q(X) :- p(X), not r(X).   r(X) :- s(X).   — stratified.
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_fact(atom("s", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("r", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("r", &["X"])],
            vec![BodyItem::Pos(atom("s", &["X"]))],
        ));
        let graph = PredicateGraph::new(&p);
        assert!(graph.is_stratified());
        let strata = graph.stratification().unwrap();
        assert!(strata["r"] < strata["q"]);
    }

    #[test]
    fn unstratified_program_detected() {
        // p :- not q.  q :- not p.  — the classic even cycle through negation.
        let mut p = Program::new();
        p.add_fact(atom("dom", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let graph = PredicateGraph::new(&p);
        assert!(!graph.is_stratified());
        assert!(graph.stratification().is_none());
    }

    #[test]
    fn even_negation_loop_has_empty_odd_core() {
        // p :- not q.  q :- not p.  — a 2-cycle with two negative edges.
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("p", &[] as &[&str])],
            vec![BodyItem::Naf(atom("q", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &[] as &[&str])],
            vec![BodyItem::Naf(atom("p", &[] as &[&str]))],
        ));
        let graph = PredicateGraph::new(&p);
        let loops = graph.negation_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].predicates, vec!["p".to_string(), "q".to_string()]);
        assert!(loops[0].odd_core.is_empty());
    }

    #[test]
    fn odd_negation_loop_is_detected_with_its_core() {
        // p :- not p.  — the canonical odd loop (one negative edge).
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("p", &[] as &[&str])],
            vec![BodyItem::Naf(atom("p", &[] as &[&str]))],
        ));
        let graph = PredicateGraph::new(&p);
        let loops = graph.negation_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].odd_core, vec!["p".to_string()]);
    }

    #[test]
    fn odd_loop_through_a_positive_edge() {
        // p :- q.  q :- not p.  — cycle with exactly one negative edge.
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("p", &[] as &[&str])],
            vec![BodyItem::Pos(atom("q", &[] as &[&str]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &[] as &[&str])],
            vec![BodyItem::Naf(atom("p", &[] as &[&str]))],
        ));
        let graph = PredicateGraph::new(&p);
        let loops = graph.negation_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].odd_core, vec!["p".to_string(), "q".to_string()]);
    }

    #[test]
    fn negation_loops_agree_with_stratification() {
        let mut strat = Program::new();
        strat.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("r", &["X"])),
            ],
        ));
        let graph = PredicateGraph::new(&strat);
        assert!(graph.is_stratified());
        assert!(graph.negation_loops().is_empty());
    }

    #[test]
    fn paper_copy_rules_are_not_stratified() {
        // Rules (4)/(6)-style: r1p(X,Y) :- r1(X,Y), not -r1p(X,Y).
        // together with -r1p defined via r1p would be unstratified, but the
        // copy rule alone (with -r1p defined independently) is stratified.
        let mut p = Program::new();
        p.add_fact(atom("r1", &["a", "b"]));
        p.add_rule(Rule::new(
            vec![atom("r1p", &["X", "Y"])],
            vec![
                BodyItem::Pos(atom("r1", &["X", "Y"])),
                BodyItem::Naf(atom("r1p", &["X", "Y"]).strongly_negated()),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("r1p", &["X", "Y"]).strongly_negated()],
            vec![
                BodyItem::Pos(atom("r1", &["X", "Y"])),
                BodyItem::Naf(atom("r1p", &["X", "Y"])),
            ],
        ));
        let graph = PredicateGraph::new(&p);
        assert!(!graph.is_stratified());
    }
}

//! # datalog — a disjunctive datalog / answer set programming engine
//!
//! The paper specifies a peer's solutions as the stable models of a
//! disjunctive logic program with default negation, classical negation and
//! the `choice` operator (Sections 3 and 4), and computes peer consistent
//! answers by skeptical (cautious) reasoning over those models. The authors
//! use the DLV system for this; DLV is closed-source and external, so this
//! crate provides the required engine natively in Rust:
//!
//! * [`syntax`] — terms, atoms (with classical negation), default-negated
//!   literals, built-ins, choice atoms, disjunctive rules and programs;
//! * [`choice`] — unfolding of `choice((x̄),(w̄))` into its *stable version*
//!   (`chosen`/`diffchoice` rules), as done in the paper's appendix;
//! * [`ground`] — safety checking and intelligent grounding;
//! * [`relevance`] — magic-sets-style relevance analysis: prune a program to
//!   the slice that can influence a query before grounding it
//!   ([`ground::ground_relevant`]);
//! * [`incremental`] — delta-driven incremental re-grounding: keep the
//!   saturated possible-atom sets (with per-atom support counts) alive
//!   across base-fact updates and patch only the affected rules via
//!   semi-naive evaluation instead of re-grounding the slice;
//! * [`graph`] — dependency graphs, stratification and head-cycle-freeness;
//! * [`shift`] — the HCF disjunctive → normal shifting of Section 4.1;
//! * [`solve`](mod@solve) — stable-model enumeration (DPLL-style search with forward,
//!   support and unfounded-set propagation for normal programs; candidate
//!   enumeration plus reduct-minimality checking for non-HCF disjunctive
//!   programs);
//! * [`reason`] — cautious / brave consequences and query-predicate
//!   extraction.
//!
//! The engine handles exactly the program class the paper's generators emit
//! and is validated against every stable model listed in the paper.
//!
//! ## Example
//!
//! ```
//! use datalog::syntax::{Atom, BodyItem, Program, Rule};
//! use datalog::reason::AnswerSets;
//! use datalog::solve::SolverConfig;
//!
//! let mut program = Program::new();
//! program.add_fact(Atom::new("r1", &["a", "b"]));
//! // r1p(X, Y) :- r1(X, Y), not -r1p(X, Y).
//! program.add_rule(Rule::new(
//!     vec![Atom::new("r1p", &["X", "Y"])],
//!     vec![
//!         BodyItem::Pos(Atom::new("r1", &["X", "Y"])),
//!         BodyItem::Naf(Atom::new("r1p", &["X", "Y"]).strongly_negated()),
//!     ],
//! ));
//! let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
//! assert_eq!(sets.len(), 1);
//! assert_eq!(sets.cautious_tuples("r1p").len(), 1);
//! ```

#![warn(missing_docs)]

pub mod choice;
pub mod error;
pub mod graph;
pub mod ground;
pub mod incremental;
pub mod reason;
pub mod relevance;
pub mod shift;
pub mod solve;
pub mod syntax;

pub use error::DatalogError;
pub use graph::{NegationLoop, PredicateGraph};
pub use ground::{ground_relevant, GroundAtom, GroundProgram, Grounder};
pub use incremental::{IncrementalGround, PatchStats};
pub use reason::AnswerSets;
pub use relevance::{QuerySeed, RelevanceAnalysis};
pub use solve::{
    solve, solve_ground_recorded, solve_relevant_with, solve_with, SolveResult, SolverConfig,
};
pub use syntax::{Atom, BodyItem, Builtin, BuiltinOp, ChoiceAtom, Program, Rule, Term};

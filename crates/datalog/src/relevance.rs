//! Relevance analysis: magic-sets-style pruning of a program to the slice
//! that can influence a query.
//!
//! The paper's peer-consistent-answer semantics only ever consults the rules
//! transitively relevant to the query atom through DEC edges and local ICs
//! (Definitions 2–3): a query about `R1` cannot observe the repair
//! scaffolding — or the facts — of relations it is not connected to. The
//! grounder, however, instantiates the *whole* specification program, so
//! every query pays for every peer's data. This module computes, from a set
//! of [`QuerySeed`]s and the rule dependency structure, the subset of rules
//! that can influence the seeds, and [`crate::ground::ground_relevant`]
//! instantiates only that slice.
//!
//! ## Soundness
//!
//! Dropping rules from a program under the answer-set semantics is subtle:
//! an apparently unrelated rule can still veto models. The analysis is
//! conservative about exactly the three mechanisms by which that happens:
//!
//! 1. **Constraints** (empty-head rules) kill candidate models. Every
//!    constraint is kept, and its body predicates are part of the initial
//!    relevant set, so the rules defining them survive too.
//! 2. **Odd negative loops** (a dependency cycle through an odd number of
//!    default-negated edges, e.g. `p ← not p`) can make a program
//!    incoherent. Every predicate on such a loop is treated as relevant.
//! 3. **Classical-negation clashes**: the solver rejects models containing
//!    both `p(ā)` and `¬p(ā)`, which couples the two signed predicates.
//!    Whenever both signs of a predicate occur in rule heads, both are
//!    treated as relevant; and whenever a relevant predicate has a derivable
//!    complement, the complement becomes relevant as well.
//!
//! The rules that remain droppable therefore form a constraint-free,
//! odd-loop-free, clash-free *top layer* that only reads from the kept
//! slice: by the splitting-set theorem it extends every answer set of the
//! kept slice in at least one way and never adds or removes atoms over
//! relevant predicates. Cautious (and brave) consequences over the relevant
//! predicates — in particular the query answers — are identical to the full
//! program's.
//!
//! ## Binding restriction
//!
//! A [`QuerySeed`] may carry *bound constants* from the query (e.g. the `a`
//! of `R1(a, Y)`). When a seed predicate is **restrictable** — it is defined
//! by non-disjunctive kept rules, read by nothing else in the kept slice,
//! and has no derivable complement — instantiation of its defining rules is
//! seeded from the query bindings instead of the full active domain: head
//! variables at bound positions are substituted with the query constants
//! before grounding, and head constants that contradict a binding drop the
//! rule. Because nothing in the kept slice reads a restrictable seed, the
//! other atoms of every answer set are unaffected, and the seed's extension
//! is exactly the binding-compatible subset of its unrestricted extension —
//! which is all a query with those bindings can observe.

use crate::syntax::{Atom, BodyItem, Builtin, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One query seed: a (signed) predicate the query observes, with optional
/// per-position constant bindings from the query atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySeed {
    /// Signed predicate key (`p`, or `-p` for a classically negated atom),
    /// matching [`Atom::signed_predicate`].
    pub predicate: String,
    /// Per-position bindings: `Some(c)` when every occurrence of the
    /// predicate in the query has the constant `c` at that position. Empty
    /// when the arity is unknown (treated as fully unbound).
    pub bindings: Vec<Option<Arc<str>>>,
}

impl QuerySeed {
    /// An unbound seed (no constant restriction).
    pub fn new(predicate: impl Into<String>) -> Self {
        QuerySeed {
            predicate: predicate.into(),
            bindings: Vec::new(),
        }
    }

    /// A seed with per-position constant bindings.
    pub fn with_bindings(predicate: impl Into<String>, bindings: Vec<Option<Arc<str>>>) -> Self {
        QuerySeed {
            predicate: predicate.into(),
            bindings,
        }
    }

    /// True when no position is bound.
    pub fn is_unbound(&self) -> bool {
        self.bindings.iter().all(Option::is_none)
    }
}

/// The result of a relevance analysis over one program: which rules are
/// kept, which predicates are relevant, and which seeds admit binding
/// restriction.
#[derive(Debug, Clone)]
pub struct RelevanceAnalysis {
    seeds: Vec<QuerySeed>,
    /// Per rule of the analyzed program: survives pruning?
    kept: Vec<bool>,
    /// Signed predicate keys that can influence the seeds.
    relevant: BTreeSet<String>,
    /// Seed predicates whose defining rules may be binding-restricted.
    restrictable: BTreeSet<String>,
    total_rules: usize,
    /// Content hash of the kept *non-fact* rules plus the relevant
    /// predicate set — deliberately fact-insensitive, so a base-fact update
    /// leaves a slice's fingerprint (and therefore its cache key) stable
    /// and the incremental re-grounding can find the stale artifact.
    slice_hash: u64,
    /// Kept / total non-fact rules (the fact-insensitive shape counts shown
    /// in the fingerprint).
    kept_structural: usize,
    total_structural: usize,
}

impl RelevanceAnalysis {
    /// Analyze `program` for the given query seeds.
    ///
    /// The program must not contain choice atoms (unfold them first with
    /// [`crate::choice::unfold_choices`]; [`crate::ground::Grounder`] does
    /// this automatically).
    pub fn analyze(program: &Program, seeds: &[QuerySeed]) -> Self {
        let rules = program.rules();
        let shapes: Vec<RuleShape> = rules.iter().map(RuleShape::of).collect();

        // Heads derivable anywhere in the program, for complement coupling.
        let mut derivable: BTreeSet<&str> = BTreeSet::new();
        for shape in &shapes {
            derivable.extend(shape.heads.iter().map(String::as_str));
        }

        // The initial relevant set: the query seeds, every constraint body,
        // every predicate on an odd negative loop, and every predicate whose
        // two signs are both derivable.
        let mut relevant: BTreeSet<String> = seeds.iter().map(|s| s.predicate.clone()).collect();
        for shape in shapes.iter().filter(|s| s.is_constraint) {
            relevant.extend(shape.body.iter().map(|(pred, _)| pred.clone()));
        }
        relevant.extend(odd_loop_predicates(&shapes));
        for pred in &derivable {
            let comp = complement_key(pred);
            if derivable.contains(comp.as_str()) {
                relevant.insert((*pred).to_string());
                relevant.insert(comp);
            }
        }

        // Backward closure: a rule whose head intersects the relevant set
        // contributes all of its predicates; a relevant predicate with a
        // derivable complement contributes the complement (coherence).
        loop {
            let mut changed = false;
            let complements: Vec<String> = relevant
                .iter()
                .map(|p| complement_key(p))
                .filter(|c| derivable.contains(c.as_str()) && !relevant.contains(c))
                .collect();
            for comp in complements {
                relevant.insert(comp);
                changed = true;
            }
            for shape in &shapes {
                if shape.is_constraint || !shape.heads.iter().any(|h| relevant.contains(h)) {
                    continue;
                }
                for pred in shape.predicates() {
                    if relevant.insert(pred.clone()) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let kept: Vec<bool> = shapes
            .iter()
            .map(|s| s.is_constraint || s.heads.iter().any(|h| relevant.contains(h)))
            .collect();

        // A seed is binding-restrictable when nothing in the kept slice can
        // observe more of it than the query asks for: outside its own
        // defining rules it is read by no kept rule or constraint body, it
        // has no derivable or referenced complement, every kept rule
        // defining it has a single-atom head, and recursion — the seed in
        // the body of its own defining rule — passes every bound position
        // through unchanged (the textbook magic-sets condition: the head
        // variable at a bound position reappears verbatim in each recursive
        // body occurrence, so binding-matching derivations only ever consume
        // binding-matching atoms).
        let mut restrictable = BTreeSet::new();
        'seed: for seed in seeds {
            if seed.is_unbound() {
                continue;
            }
            let comp = complement_key(&seed.predicate);
            for ((shape, rule), keep) in shapes.iter().zip(rules).zip(&kept) {
                if !keep {
                    continue;
                }
                if shape.heads.contains(&comp) || shape.body.iter().any(|(pred, _)| *pred == comp) {
                    continue 'seed;
                }
                let defines = shape.heads.contains(&seed.predicate);
                let reads = shape.body.iter().any(|(pred, _)| *pred == seed.predicate);
                if defines {
                    if shape.heads.len() > 1 || !recursion_preserves_bindings(rule, seed) {
                        continue 'seed;
                    }
                } else if reads {
                    // Read by a rule (or constraint) that does not define
                    // the seed: restricting it would change what that reader
                    // observes.
                    continue 'seed;
                }
            }
            restrictable.insert(seed.predicate.clone());
        }

        // Fact-insensitive slice identity: kept non-fact rule content plus
        // the relevant predicate set (which determines the kept facts).
        let mut slice_hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                slice_hash ^= u64::from(b);
                slice_hash = slice_hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut kept_structural = 0;
        let mut total_structural = 0;
        for (rule, keep) in rules.iter().zip(&kept) {
            if rule.is_fact() {
                continue;
            }
            total_structural += 1;
            if *keep {
                kept_structural += 1;
                eat(rule.to_string().as_bytes());
                eat(b"\x00;");
            }
        }
        for pred in &relevant {
            eat(pred.as_bytes());
            eat(b"\x00,");
        }

        RelevanceAnalysis {
            seeds: seeds.to_vec(),
            kept,
            relevant,
            restrictable,
            total_rules: rules.len(),
            slice_hash,
            kept_structural,
            total_structural,
        }
    }

    /// Number of rules surviving the pruning.
    pub fn kept_rule_count(&self) -> usize {
        self.kept.iter().filter(|&&k| k).count()
    }

    /// Number of rules in the analyzed program.
    pub fn total_rule_count(&self) -> usize {
        self.total_rules
    }

    /// Is a signed predicate part of the relevant slice?
    pub fn is_relevant(&self, signed_predicate: &str) -> bool {
        self.relevant.contains(signed_predicate)
    }

    /// The relevant signed predicates.
    pub fn relevant_predicates(&self) -> &BTreeSet<String> {
        &self.relevant
    }

    /// Can the given seed predicate's instantiation be restricted to its
    /// query bindings?
    pub fn is_restrictable(&self, seed_predicate: &str) -> bool {
        self.restrictable.contains(seed_predicate)
    }

    /// A stable fingerprint of the pruned slice (kept structural rules,
    /// relevant predicates and effective bindings), suitable as a
    /// memo-cache key component: two queries share a fingerprint exactly
    /// when they ground the same program slice. Deliberately *fact-
    /// insensitive*: base-fact updates change what the slice grounds to,
    /// not which slice it is, so a stale artifact keeps its key across
    /// commits and the incremental re-grounding can find and repair it.
    pub fn fingerprint(&self) -> String {
        let mut hash: u64 = self.slice_hash;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for seed in &self.seeds {
            if !self.restrictable.contains(&seed.predicate) {
                continue;
            }
            eat(seed.predicate.as_bytes());
            for binding in &seed.bindings {
                match binding {
                    Some(c) => eat(c.as_bytes()),
                    None => eat(b"\x00*"),
                }
            }
        }
        format!(
            "{:016x}:{}/{}",
            hash, self.kept_structural, self.total_structural
        )
    }

    /// The pruned program: kept rules only, with the defining rules of
    /// restrictable seeds pre-instantiated to the query bindings.
    pub fn restrict(&self, program: &Program) -> Program {
        let bindings: BTreeMap<&str, &QuerySeed> = self
            .seeds
            .iter()
            .filter(|s| self.restrictable.contains(&s.predicate) && !s.is_unbound())
            .map(|s| (s.predicate.as_str(), s))
            .collect();
        let mut out = Program::new();
        for (rule, &keep) in program.rules().iter().zip(&self.kept) {
            if !keep {
                continue;
            }
            let seed = rule
                .head
                .first()
                .filter(|_| rule.head.len() == 1)
                .and_then(|h| bindings.get(h.signed_predicate().as_str()));
            match seed {
                Some(seed) => {
                    if let Some(bound) = bind_head(rule, seed) {
                        out.add_rule(bound);
                    }
                }
                None => {
                    out.add_rule(rule.clone());
                }
            }
        }
        out
    }
}

/// Pre-extracted signed-predicate sets of one rule.
struct RuleShape {
    heads: Vec<String>,
    /// Body predicates with their negation parity (`true` = default-negated).
    body: Vec<(String, bool)>,
    is_constraint: bool,
}

impl RuleShape {
    fn of(rule: &Rule) -> Self {
        let heads: Vec<String> = rule.head.iter().map(Atom::signed_predicate).collect();
        let body: Vec<(String, bool)> = rule
            .body
            .iter()
            .filter_map(|item| match item {
                BodyItem::Pos(a) => Some((a.signed_predicate(), false)),
                BodyItem::Naf(a) => Some((a.signed_predicate(), true)),
                _ => None,
            })
            .collect();
        RuleShape {
            is_constraint: heads.is_empty(),
            heads,
            body,
        }
    }

    /// Every predicate of the rule (heads then body).
    fn predicates(&self) -> impl Iterator<Item = &String> {
        self.heads.iter().chain(self.body.iter().map(|(p, _)| p))
    }
}

/// Does a seed-defining rule pass every bound position through its
/// recursive body occurrences unchanged? True when the rule is
/// non-recursive in the seed. Default-negated self-occurrences reject the
/// restriction outright (bindings do not propagate through negation).
fn recursion_preserves_bindings(rule: &Rule, seed: &QuerySeed) -> bool {
    let Some(head) = rule.head.first() else {
        return false;
    };
    if head.terms.len() != seed.bindings.len() {
        // Unknown binding arity: bind_head will leave the rule unrestricted,
        // so recursion through it would observe the full extension.
        return seed.bindings.is_empty();
    }
    let occurrences: Vec<&Atom> = rule
        .body
        .iter()
        .filter_map(|item| match item {
            BodyItem::Pos(a) if a.signed_predicate() == seed.predicate => Some(a),
            _ => None,
        })
        .collect();
    let negated_self = rule
        .body
        .iter()
        .any(|item| matches!(item, BodyItem::Naf(a) if a.signed_predicate() == seed.predicate));
    if negated_self {
        return false;
    }
    if occurrences.is_empty() {
        return true;
    }
    for (position, binding) in seed.bindings.iter().enumerate() {
        if binding.is_none() {
            continue;
        }
        let Some(Term::Var(head_var)) = head.terms.get(position) else {
            return false;
        };
        for occurrence in &occurrences {
            if occurrence.terms.get(position) != Some(&Term::Var(head_var.clone())) {
                return false;
            }
        }
    }
    true
}

/// The signed key of the complementary predicate (`p` ↔ `-p`).
fn complement_key(signed: &str) -> String {
    match signed.strip_prefix('-') {
        Some(positive) => positive.to_string(),
        None => format!("-{signed}"),
    }
}

/// Every predicate lying on a dependency cycle with an odd number of
/// default-negated edges (the incoherence hazard of item 2 in the module
/// docs). Detection: strongly connected components of the body→head
/// dependency graph, then parity 2-coloring of each component over its
/// internal edges — a coloring conflict means some cycle in the component
/// has odd negative parity.
fn odd_loop_predicates(shapes: &[RuleShape]) -> BTreeSet<String> {
    // Intern the signed predicates.
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    let mut names: Vec<&str> = Vec::new();
    for shape in shapes {
        for pred in shape.predicates() {
            index.entry(pred).or_insert_with(|| {
                names.push(pred);
                names.len() - 1
            });
        }
    }
    let n = names.len();
    // Edges body → head, labelled with the negation parity.
    let mut edges: Vec<BTreeSet<(usize, bool)>> = vec![BTreeSet::new(); n];
    for shape in shapes {
        let heads: Vec<usize> = shape.heads.iter().map(|h| index[h.as_str()]).collect();
        for (pred, negated) in &shape.body {
            let from = index[pred.as_str()];
            for &to in &heads {
                edges[from].insert((to, *negated));
            }
        }
    }
    let plain: Vec<Vec<usize>> = edges
        .iter()
        .map(|outs| outs.iter().map(|&(to, _)| to).collect())
        .collect();
    let component = crate::graph::strongly_connected_components(n, &plain);

    // Group members per component, then 2-color each component over its
    // internal edges (a component is strongly connected, so one BFS from
    // any member covers it).
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (node, &comp) in component.iter().enumerate() {
        members.entry(comp).or_default().push(node);
    }
    let mut odd: BTreeSet<String> = BTreeSet::new();
    let mut color: Vec<Option<bool>> = vec![None; n];
    for nodes in members.values() {
        let comp = component[nodes[0]];
        color[nodes[0]] = Some(false);
        let mut queue = vec![nodes[0]];
        let mut conflict = false;
        while let Some(v) = queue.pop() {
            let v_color = color[v].expect("colored before queueing");
            for &(to, negated) in &edges[v] {
                if component[to] != comp {
                    continue;
                }
                let want = v_color ^ negated;
                match color[to] {
                    None => {
                        color[to] = Some(want);
                        queue.push(to);
                    }
                    Some(have) if have != want => conflict = true,
                    Some(_) => {}
                }
            }
        }
        if conflict {
            odd.extend(nodes.iter().map(|&m| names[m].to_string()));
        }
    }
    odd
}

/// Instantiate a restrictable seed rule's head against the seed bindings:
/// head variables at bound positions are substituted throughout the rule,
/// contradicting constants drop the rule.
fn bind_head(rule: &Rule, seed: &QuerySeed) -> Option<Rule> {
    let head = rule.head.first()?;
    if head.terms.len() != seed.bindings.len() {
        // Arity mismatch (unknown binding arity): keep the rule unrestricted.
        return Some(rule.clone());
    }
    let mut subst: BTreeMap<&str, Arc<str>> = BTreeMap::new();
    for (term, binding) in head.terms.iter().zip(&seed.bindings) {
        let Some(constant) = binding else { continue };
        match term {
            Term::Const(c) => {
                if c != constant {
                    return None; // head constant contradicts the binding
                }
            }
            Term::Var(v) => match subst.get(v.as_str()) {
                Some(bound) if bound != constant => return None,
                _ => {
                    subst.insert(v, constant.clone());
                }
            },
        }
    }
    if subst.is_empty() {
        return Some(rule.clone());
    }
    let apply_term = |t: &Term| match t {
        Term::Var(v) => subst
            .get(v.as_str())
            .map(|c| Term::Const(c.clone()))
            .unwrap_or_else(|| t.clone()),
        Term::Const(_) => t.clone(),
    };
    let apply_atom = |atom: &Atom| Atom {
        predicate: atom.predicate.clone(),
        strong_neg: atom.strong_neg,
        terms: atom.terms.iter().map(apply_term).collect(),
    };
    Some(Rule {
        head: rule.head.iter().map(apply_atom).collect(),
        body: rule
            .body
            .iter()
            .map(|item| match item {
                BodyItem::Pos(a) => BodyItem::Pos(apply_atom(a)),
                BodyItem::Naf(a) => BodyItem::Naf(apply_atom(a)),
                BodyItem::Builtin(b) => BodyItem::Builtin(Builtin::new(
                    b.op,
                    apply_term(&b.left),
                    apply_term(&b.right),
                )),
                BodyItem::Choice(c) => BodyItem::Choice(c.clone()),
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground_relevant, GroundAtom, Grounder};
    use crate::reason::AnswerSets;
    use crate::solve::{solve, solve_relevant_with, SolverConfig};
    use pdes_exec::Executor;

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    /// Two disconnected fact+rule islands; only the queried island is kept.
    fn two_island_program() -> Program {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Y"])],
            vec![BodyItem::Pos(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("reach", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        // The unrelated island.
        p.add_fact(atom("color", &["a", "red"]));
        p.add_fact(atom("color", &["b", "blue"]));
        p.add_rule(Rule::new(
            vec![atom("colored", &["X"])],
            vec![BodyItem::Pos(atom("color", &["X", "C"]))],
        ));
        p
    }

    #[test]
    fn pruning_drops_disconnected_islands() {
        let program = two_island_program();
        let analysis = RelevanceAnalysis::analyze(&program, &[QuerySeed::new("reach")]);
        assert!(analysis.kept_rule_count() < analysis.total_rule_count());
        assert!(analysis.is_relevant("reach"));
        assert!(analysis.is_relevant("edge"));
        assert!(!analysis.is_relevant("colored"));
        assert!(!analysis.is_relevant("color"));

        let full = Grounder::new(&program).ground().unwrap();
        let pruned = ground_relevant(&program, &[QuerySeed::new("reach")]).unwrap();
        assert!(pruned.rule_count() < full.rule_count());
        assert!(pruned.atom_count() < full.atom_count());
        // The kept slice still derives the transitive edge.
        assert!(pruned
            .atom_id(&GroundAtom::new("reach", &["a", "c"]))
            .is_some());
        assert!(pruned
            .atom_id(&GroundAtom::new("colored", &["a"]))
            .is_none());
    }

    #[test]
    fn pruned_cautious_consequences_match_full() {
        let program = two_island_program();
        let full = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
        let result = solve_relevant_with(
            &program,
            &[QuerySeed::new("reach")],
            SolverConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(result.answer_sets.len(), 1);
        let pruned_reach: BTreeSet<GroundAtom> = result.answer_sets[0]
            .iter()
            .map(|&id| result.ground.atom(id).clone())
            .filter(|a| a.predicate == "reach")
            .collect();
        let full_reach: BTreeSet<GroundAtom> = full
            .cautious_consequences()
            .into_iter()
            .filter(|a| a.predicate == "reach")
            .collect();
        assert_eq!(pruned_reach, full_reach);
    }

    #[test]
    fn constraints_are_always_kept_with_their_support() {
        let mut p = two_island_program();
        // A constraint over the unrelated island: its support must survive,
        // because it can veto models globally.
        p.add_constraint(vec![
            BodyItem::Pos(atom("color", &["X", "red"])),
            BodyItem::Pos(atom("colored", &["X"])),
        ]);
        let analysis = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]);
        assert!(analysis.is_relevant("color"));
        assert!(analysis.is_relevant("colored"));
        assert_eq!(analysis.kept_rule_count(), analysis.total_rule_count());
    }

    #[test]
    fn odd_negative_loops_are_kept() {
        let mut p = two_island_program();
        // p(X) ← color(X, C), not p(X): an incoherence hazard — the full
        // program has no answer set, so the pruned one must not either.
        p.add_rule(Rule::new(
            vec![atom("podd", &["X"])],
            vec![
                BodyItem::Pos(atom("color", &["X", "C"])),
                BodyItem::Naf(atom("podd", &["X"])),
            ],
        ));
        let analysis = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]);
        assert!(analysis.is_relevant("podd"));
        let full = solve(&p, SolverConfig::default()).unwrap();
        let pruned = solve_relevant_with(
            &p,
            &[QuerySeed::new("reach")],
            SolverConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(full.answer_sets.len(), 0);
        assert_eq!(pruned.answer_sets.len(), 0);
    }

    #[test]
    fn even_negative_loops_outside_the_slice_are_dropped() {
        let mut p = two_island_program();
        // A classic even loop on the unrelated island: total (two stable
        // extensions), hence droppable.
        p.add_rule(Rule::new(
            vec![atom("pick", &["X"])],
            vec![
                BodyItem::Pos(atom("color", &["X", "C"])),
                BodyItem::Naf(atom("skip", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("skip", &["X"])],
            vec![
                BodyItem::Pos(atom("color", &["X", "C"])),
                BodyItem::Naf(atom("pick", &["X"])),
            ],
        ));
        let analysis = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]);
        assert!(!analysis.is_relevant("pick"));
        assert!(!analysis.is_relevant("skip"));
        // Cautious reach-consequences are unchanged; the pruned program has
        // fewer answer sets (the dropped even loop multiplied them).
        let full = solve(&p, SolverConfig::default()).unwrap();
        let pruned = solve_relevant_with(
            &p,
            &[QuerySeed::new("reach")],
            SolverConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert!(full.answer_sets.len() > pruned.answer_sets.len());
        let reach_of = |result: &crate::solve::SolveResult| -> Vec<BTreeSet<GroundAtom>> {
            result
                .answer_sets
                .iter()
                .map(|set| {
                    set.iter()
                        .map(|&id| result.ground.atom(id).clone())
                        .filter(|a| a.predicate == "reach")
                        .collect()
                })
                .collect()
        };
        let full_reach: BTreeSet<_> = reach_of(&full).into_iter().collect();
        let pruned_reach: BTreeSet<_> = reach_of(&pruned).into_iter().collect();
        assert_eq!(full_reach, pruned_reach);
    }

    #[test]
    fn complement_clashes_keep_both_signs() {
        let mut p = Program::new();
        p.add_fact(atom("q", &["a"]));
        p.add_fact(atom("seed", &["a"]));
        // Both signs of `clash` are derivable from unrelated facts; the
        // full program is incoherent and pruning must preserve that.
        p.add_rule(Rule::new(
            vec![atom("clash", &["X"])],
            vec![BodyItem::Pos(atom("q", &["X"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("clash", &["X"]).strongly_negated()],
            vec![BodyItem::Pos(atom("q", &["X"]))],
        ));
        let analysis = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("seed")]);
        assert!(analysis.is_relevant("clash"));
        assert!(analysis.is_relevant("-clash"));
        let full = solve(&p, SolverConfig::default()).unwrap();
        let pruned = solve_relevant_with(
            &p,
            &[QuerySeed::new("seed")],
            SolverConfig::default(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(full.answer_sets.len(), 0);
        assert_eq!(pruned.answer_sets.len(), 0);
    }

    #[test]
    fn binding_restriction_seeds_instantiation_from_query_constants() {
        let program = two_island_program();
        let seed = QuerySeed::with_bindings(
            "reach",
            vec![Some(Arc::from("a")), None], // reach(a, Y)
        );
        let analysis = RelevanceAnalysis::analyze(&program, std::slice::from_ref(&seed));
        assert!(analysis.is_restrictable("reach"));
        let pruned = ground_relevant(&program, std::slice::from_ref(&seed)).unwrap();
        let unbound = ground_relevant(&program, &[QuerySeed::new("reach")]).unwrap();
        assert!(pruned.rule_count() < unbound.rule_count());
        // Everything derivable from `a` survives …
        assert!(pruned
            .atom_id(&GroundAtom::new("reach", &["a", "c"]))
            .is_some());
        // … while other start points are never instantiated.
        assert!(pruned
            .atom_id(&GroundAtom::new("reach", &["b", "c"]))
            .is_none());
        assert!(unbound
            .atom_id(&GroundAtom::new("reach", &["b", "c"]))
            .is_some());
    }

    #[test]
    fn seeds_read_by_the_kept_slice_are_not_restrictable() {
        let mut p = two_island_program();
        // `reach` is now read by a constraint: restricting it would change
        // which models the constraint kills.
        p.add_constraint(vec![
            BodyItem::Pos(atom("reach", &["X", "X"])),
            BodyItem::Pos(atom("edge", &["X", "X"])),
        ]);
        let seed = QuerySeed::with_bindings("reach", vec![Some(Arc::from("a")), None]);
        let analysis = RelevanceAnalysis::analyze(&p, &[seed]);
        assert!(!analysis.is_restrictable("reach"));
    }

    #[test]
    fn empty_relevant_slice_grounds_to_the_empty_program() {
        let program = two_island_program();
        let pruned = ground_relevant(&program, &[QuerySeed::new("no_such_predicate")]).unwrap();
        assert_eq!(pruned.rule_count(), 0);
        assert_eq!(pruned.atom_count(), 0);
    }

    #[test]
    fn fingerprints_distinguish_slices_and_bindings() {
        let program = two_island_program();
        let reach = RelevanceAnalysis::analyze(&program, &[QuerySeed::new("reach")]);
        let colored = RelevanceAnalysis::analyze(&program, &[QuerySeed::new("colored")]);
        assert_ne!(reach.fingerprint(), colored.fingerprint());
        let bound = RelevanceAnalysis::analyze(
            &program,
            &[QuerySeed::with_bindings(
                "reach",
                vec![Some(Arc::from("a")), None],
            )],
        );
        assert_ne!(reach.fingerprint(), bound.fingerprint());
        // Same seeds, same slice, same fingerprint.
        let again = RelevanceAnalysis::analyze(&program, &[QuerySeed::new("reach")]);
        assert_eq!(reach.fingerprint(), again.fingerprint());
    }

    #[test]
    fn fingerprints_are_fact_insensitive() {
        // A base-fact update changes what the slice grounds to, not which
        // slice it is: the stale-artifact repair of incremental
        // re-grounding depends on the key staying put across commits.
        let mut p = two_island_program();
        let before = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]).fingerprint();
        p.add_fact(atom("edge", &["c", "d"]));
        p.add_fact(atom("color", &["c", "green"]));
        let after = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]).fingerprint();
        assert_eq!(before, after);
    }

    #[test]
    fn bindings_on_unrestrictable_seeds_do_not_change_the_fingerprint() {
        let mut p = two_island_program();
        p.add_constraint(vec![
            BodyItem::Pos(atom("reach", &["X", "X"])),
            BodyItem::Pos(atom("edge", &["X", "X"])),
        ]);
        let unbound = RelevanceAnalysis::analyze(&p, &[QuerySeed::new("reach")]);
        let bound = RelevanceAnalysis::analyze(
            &p,
            &[QuerySeed::with_bindings(
                "reach",
                vec![Some(Arc::from("a")), None],
            )],
        );
        // The binding cannot be applied, so both queries ground the same
        // slice and may share one memoized artifact.
        assert_eq!(unbound.fingerprint(), bound.fingerprint());
    }
}

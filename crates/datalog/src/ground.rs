//! Grounding: from programs with variables to propositional programs.
//!
//! The grounder performs *intelligent instantiation*: it first saturates the
//! set of atoms that can possibly be derived (treating default negation
//! optimistically and disjunctive heads as fully derivable), then instantiates
//! every rule against that set. Default-negated literals whose atom can never
//! be derived are dropped from the instantiated bodies; built-in comparisons
//! are evaluated away during instantiation.

use crate::choice::unfold_choices;
use crate::error::DatalogError;
use crate::relevance::{QuerySeed, RelevanceAnalysis};
use crate::syntax::{Atom, BodyItem, Builtin, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A ground atom: signed predicate plus constant arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// Predicate name.
    pub predicate: String,
    /// Classical negation flag.
    pub strong_neg: bool,
    /// Constant arguments.
    pub args: Vec<Arc<str>>,
}

impl GroundAtom {
    /// Construct a ground atom from string arguments.
    pub fn new<S: AsRef<str>>(predicate: impl Into<String>, args: &[S]) -> Self {
        GroundAtom {
            predicate: predicate.into(),
            strong_neg: false,
            args: args.iter().map(|a| Arc::from(a.as_ref())).collect(),
        }
    }

    /// The classically negated version of this ground atom.
    pub fn strongly_negated(mut self) -> Self {
        self.strong_neg = !self.strong_neg;
        self
    }

    /// The complementary atom (`p` ↔ `¬p`).
    pub fn complement(&self) -> Self {
        self.clone().strongly_negated()
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.strong_neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.predicate)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Identifier of a ground atom inside a [`GroundProgram`].
pub type AtomId = usize;

/// A ground rule over atom identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundRule {
    /// Head atom ids (disjunction; empty = constraint).
    pub heads: Vec<AtomId>,
    /// Positive body atom ids.
    pub pos: Vec<AtomId>,
    /// Default-negated body atom ids.
    pub neg: Vec<AtomId>,
}

impl GroundRule {
    /// True when the rule has no body.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty() && self.heads.len() == 1
    }

    /// True when the rule has an empty head.
    pub fn is_constraint(&self) -> bool {
        self.heads.is_empty()
    }
}

/// A propositional (ground) program with interned atoms.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    atoms: Vec<GroundAtom>,
    index: BTreeMap<GroundAtom, AtomId>,
    rules: Vec<GroundRule>,
}

impl GroundProgram {
    /// Number of distinct ground atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of ground rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The ground rules.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// Resolve an atom id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id]
    }

    /// Look up an atom's id, if it was interned.
    pub fn atom_id(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.index.get(atom).copied()
    }

    /// Intern an atom, returning its id.
    pub fn intern(&mut self, atom: GroundAtom) -> AtomId {
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = self.atoms.len();
        self.atoms.push(atom.clone());
        self.index.insert(atom, id);
        id
    }

    /// Add a ground rule.
    pub fn add_rule(&mut self, rule: GroundRule) {
        self.rules.push(rule);
    }

    /// True when some ground rule has a disjunctive head.
    pub fn is_disjunctive(&self) -> bool {
        self.rules.iter().any(|r| r.heads.len() > 1)
    }

    /// Iterate over all interned atoms with their ids.
    pub fn atoms(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms.iter().enumerate()
    }

    /// Render a set of atom ids as ground atoms (sorted, for stable output).
    pub fn decode(&self, ids: &BTreeSet<AtomId>) -> BTreeSet<GroundAtom> {
        ids.iter().map(|&id| self.atoms[id].clone()).collect()
    }

    /// Exact size accounting for interned ground programs: rules are 24
    /// bytes plus 8 per atom id; each distinct atom charges its predicate
    /// text, 8 bytes per constant-argument reference, and each `Arc<str>`
    /// payload *once per distinct allocation* (shared interned text
    /// deduplicates by pointer identity — the atom `index` shares its
    /// argument allocations with `atoms`, so it adds only fixed per-entry
    /// overhead). Deterministic for a given grounding.
    pub fn exact_bytes(&self) -> usize {
        let mut seen: std::collections::HashSet<*const u8> = std::collections::HashSet::new();
        let atoms: usize = self
            .atoms
            .iter()
            .map(|a| {
                let mut bytes = 24 + a.predicate.len() + 8 * a.args.len();
                for arg in &a.args {
                    if seen.insert(arg.as_ptr()) {
                        bytes += arg.len();
                    }
                }
                bytes
            })
            .sum();
        let index = self.index.len() * 48;
        let rules: usize = self
            .rules
            .iter()
            .map(|r| 24 + 8 * (r.heads.len() + r.pos.len() + r.neg.len()))
            .sum();
        atoms + index + rules
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            for (i, h) in r.heads.iter().enumerate() {
                if i > 0 {
                    write!(f, " v ")?;
                }
                write!(f, "{}", self.atoms[*h])?;
            }
            if !r.pos.is_empty() || !r.neg.is_empty() {
                if !r.heads.is_empty() {
                    write!(f, " ")?;
                }
                write!(f, ":- ")?;
                let mut first = true;
                for p in &r.pos {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.atoms[*p])?;
                    first = false;
                }
                for n in &r.neg {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "not {}", self.atoms[*n])?;
                    first = false;
                }
            }
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

/// Ground only the query-relevant slice of a program (the pruning entry
/// point; see [`crate::relevance`] for the analysis and its soundness
/// conditions). Equivalent to `Grounder::new(program).ground_relevant(seeds)`.
pub fn ground_relevant(
    program: &Program,
    seeds: &[QuerySeed],
) -> Result<GroundProgram, DatalogError> {
    Grounder::new(program).ground_relevant(seeds)
}

/// Partial substitution from variable names to constant symbols.
pub(crate) type Subst = BTreeMap<String, Arc<str>>;

/// Possibly-derivable atoms bucketed by signed predicate key — the working
/// state of the saturation phase, shared with [`crate::incremental`].
pub(crate) type PossibleSets = BTreeMap<String, BTreeSet<GroundAtom>>;

/// The grounder.
pub struct Grounder {
    program: Program,
}

impl Grounder {
    /// Create a grounder for a program. Choice atoms are automatically
    /// unfolded into their stable version.
    pub fn new(program: &Program) -> Self {
        let program = if program.has_choice() {
            unfold_choices(program)
        } else {
            program.clone()
        };
        Grounder { program }
    }

    /// The (choice-unfolded) program being grounded.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Ground the program.
    pub fn ground(&self) -> Result<GroundProgram, DatalogError> {
        // Safety check.
        if let Some(rule) = self.program.unsafe_rules().first() {
            return Err(DatalogError::UnsafeRule(rule.to_string()));
        }

        // Phase 1: saturate the possibly-derivable atoms.
        let possible = self.saturate()?;

        // Phase 2: instantiate rules against the saturated set.
        let mut ground = GroundProgram::default();
        for rule in self.program.rules() {
            let substitutions = self.matches(rule, &possible);
            'subst: for theta in substitutions {
                let mut heads = Vec::with_capacity(rule.head.len());
                for h in &rule.head {
                    heads.push(ground.intern(apply(h, &theta)));
                }
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                for item in &rule.body {
                    match item {
                        BodyItem::Pos(a) => {
                            let g = apply(a, &theta);
                            pos.push(ground.intern(g));
                        }
                        BodyItem::Naf(a) => {
                            let g = apply(a, &theta);
                            if contains(&possible, &g) {
                                neg.push(ground.intern(g));
                            }
                            // Atom can never be derived: `not g` is true,
                            // drop the literal.
                        }
                        BodyItem::Builtin(_) => {
                            // Already checked during matching.
                        }
                        BodyItem::Choice(_) => {
                            // Unfolded in the constructor; unreachable.
                            continue 'subst;
                        }
                    }
                }
                // Drop tautologies: a head atom also in the positive body.
                if heads.iter().any(|h| pos.contains(h)) {
                    continue;
                }
                ground.add_rule(GroundRule { heads, pos, neg });
            }
        }
        Ok(ground)
    }

    /// Ground only the slice of the program relevant to the query seeds
    /// (see [`crate::relevance`]): irrelevant rules are never instantiated,
    /// and the defining rules of binding-restrictable seeds are
    /// pre-instantiated to the query constants, so ground instantiation is
    /// seeded from the query bindings instead of the full active domain.
    ///
    /// Safety is checked against the *full* program (an unsafe rule is a
    /// program bug regardless of the query), and the relevance analysis runs
    /// on the choice-unfolded program, so `chosen`/`diffchoice` scaffolding
    /// is pruned with the rules that use it.
    pub fn ground_relevant(&self, seeds: &[QuerySeed]) -> Result<GroundProgram, DatalogError> {
        if let Some(rule) = self.program.unsafe_rules().first() {
            return Err(DatalogError::UnsafeRule(rule.to_string()));
        }
        let analysis = RelevanceAnalysis::analyze(&self.program, seeds);
        let restricted = analysis.restrict(&self.program);
        Grounder {
            program: restricted,
        }
        .ground()
    }

    /// The relevance analysis of this grounder's (choice-unfolded) program
    /// for the given seeds — exposed so callers can fingerprint the slice
    /// without grounding it.
    pub fn relevance(&self, seeds: &[QuerySeed]) -> RelevanceAnalysis {
        RelevanceAnalysis::analyze(&self.program, seeds)
    }

    /// Fixpoint of possibly-derivable atoms.
    fn saturate(&self) -> Result<PossibleSets, DatalogError> {
        let mut possible: PossibleSets = BTreeMap::new();
        loop {
            let mut changed = false;
            for rule in self.program.rules() {
                for theta in rule_matches(rule, &possible) {
                    for h in &rule.head {
                        let g = apply(h, &theta);
                        let entry = possible.entry(g.predicate_key()).or_default();
                        if entry.insert(g) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Ok(possible);
            }
        }
    }

    /// All substitutions that satisfy the positive body atoms (against the
    /// possible-atom sets) and the built-in comparisons. Default-negated
    /// literals are ignored here (optimistic reading).
    fn matches(&self, rule: &Rule, possible: &PossibleSets) -> Vec<Subst> {
        rule_matches(rule, possible)
    }
}

/// All substitutions satisfying a rule's positive body atoms against the
/// possible sets and its built-in comparisons (default-negated literals are
/// read optimistically, i.e. ignored). Shared by the full grounder and
/// [`crate::incremental`].
pub(crate) fn rule_matches(rule: &Rule, possible: &PossibleSets) -> Vec<Subst> {
    let positives: Vec<&Atom> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyItem::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    let mut results = Vec::new();
    let mut current = Subst::new();
    join(&positives, 0, possible, &mut current, &mut results);
    retain_builtin_satisfying(rule, &mut results);
    results
}

/// Keep only substitutions satisfying the rule's built-in comparisons (all
/// their variables are bound by safety).
pub(crate) fn retain_builtin_satisfying(rule: &Rule, results: &mut Vec<Subst>) {
    let builtins: Vec<&Builtin> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyItem::Builtin(b) => Some(b),
            _ => None,
        })
        .collect();
    if builtins.is_empty() {
        return;
    }
    results.retain(|theta| {
        builtins.iter().all(|b| {
            let l = resolve(&b.left, theta);
            let r = resolve(&b.right, theta);
            match (l, r) {
                (Some(l), Some(r)) => b.op.eval(&l, &r),
                _ => false,
            }
        })
    });
}

/// Backtracking join of positive body atoms against the possible sets.
/// The semi-naive evaluation of [`crate::incremental`] uses its own variant
/// with per-occurrence candidate splits; both share [`try_unify`].
fn join(
    positives: &[&Atom],
    idx: usize,
    possible: &PossibleSets,
    current: &mut Subst,
    results: &mut Vec<Subst>,
) {
    if idx == positives.len() {
        results.push(current.clone());
        return;
    }
    let atom = positives[idx];
    let key = signed_key(atom);
    let empty = BTreeSet::new();
    let candidates = possible.get(&key).unwrap_or(&empty);
    for cand in candidates {
        if let Some(added) = try_unify(atom, cand, current) {
            join(positives, idx + 1, possible, current, results);
            for v in added {
                current.remove(&v);
            }
        }
    }
}

/// Unify one body atom occurrence with a candidate ground atom under the
/// current substitution. On success, returns the variables newly bound (the
/// caller unbinds them when backtracking); on clash, restores `current` and
/// returns `None`.
pub(crate) fn try_unify(
    atom: &Atom,
    cand: &GroundAtom,
    current: &mut Subst,
) -> Option<Vec<String>> {
    if cand.args.len() != atom.terms.len() {
        return None;
    }
    let mut added: Vec<String> = Vec::new();
    for (term, value) in atom.terms.iter().zip(cand.args.iter()) {
        let ok = match term {
            Term::Const(c) => c == value,
            Term::Var(v) => match current.get(v) {
                Some(bound) => bound == value,
                None => {
                    current.insert(v.clone(), value.clone());
                    added.push(v.clone());
                    true
                }
            },
        };
        if !ok {
            for v in added {
                current.remove(&v);
            }
            return None;
        }
    }
    Some(added)
}

impl GroundAtom {
    /// The signed-predicate key used to bucket atoms during grounding.
    pub(crate) fn predicate_key(&self) -> String {
        if self.strong_neg {
            format!("-{}", self.predicate)
        } else {
            self.predicate.clone()
        }
    }
}

pub(crate) fn signed_key(atom: &Atom) -> String {
    if atom.strong_neg {
        format!("-{}", atom.predicate)
    } else {
        atom.predicate.clone()
    }
}

pub(crate) fn contains(possible: &PossibleSets, atom: &GroundAtom) -> bool {
    possible
        .get(&atom.predicate_key())
        .map(|set| set.contains(atom))
        .unwrap_or(false)
}

pub(crate) fn apply(atom: &Atom, theta: &Subst) -> GroundAtom {
    GroundAtom {
        predicate: atom.predicate.clone(),
        strong_neg: atom.strong_neg,
        args: atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => theta
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| Arc::from(format!("_unbound_{v}").as_str())),
            })
            .collect(),
    }
}

fn resolve(term: &Term, theta: &Subst) -> Option<Arc<str>> {
    match term {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => theta.get(v).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{BuiltinOp, ChoiceAtom};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn facts_ground_to_themselves() {
        let mut p = Program::new();
        p.add_fact(atom("r1", &["a", "b"]));
        p.add_fact(atom("r1", &["c", "d"]));
        let g = Grounder::new(&p).ground().unwrap();
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.atom_count(), 2);
        assert!(g.rules().iter().all(GroundRule::is_fact));
    }

    #[test]
    fn simple_rule_instantiates_once_per_matching_fact() {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Y"])],
            vec![BodyItem::Pos(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("reach", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        // reach facts derivable: (a,b), (b,c), (a,c); transitive rule
        // instantiates for every reach × edge join over the saturated set.
        let preds: BTreeSet<String> = g.atoms().map(|(_, a)| a.predicate.clone()).collect();
        assert!(preds.contains("reach"));
        // 2 facts + 2 base-rule instances + 1 transitive instance (a→b→c).
        assert_eq!(g.rule_count(), 5);
        assert!(g.atom_id(&GroundAtom::new("reach", &["a", "c"])).is_some());
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![BodyItem::Naf(atom("q", &["X"]))],
        ));
        assert!(matches!(
            Grounder::new(&p).ground(),
            Err(DatalogError::UnsafeRule(_))
        ));
    }

    #[test]
    fn naf_on_underivable_atom_is_dropped() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("never", &["X"])),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        let rule = g
            .rules()
            .iter()
            .find(|r| !r.is_fact())
            .expect("instantiated rule");
        assert!(rule.neg.is_empty(), "naf on impossible atom should vanish");
    }

    #[test]
    fn naf_on_possible_atom_is_kept() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("r", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("r", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        let non_facts: Vec<&GroundRule> = g.rules().iter().filter(|r| !r.is_fact()).collect();
        assert_eq!(non_facts.len(), 2);
        assert!(non_facts.iter().all(|r| r.neg.len() == 1));
    }

    #[test]
    fn builtins_are_evaluated_during_instantiation() {
        let mut p = Program::new();
        p.add_fact(atom("num", &["a"]));
        p.add_fact(atom("num", &["b"]));
        p.add_rule(Rule::new(
            vec![atom("pair", &["X", "Y"])],
            vec![
                BodyItem::Pos(atom("num", &["X"])),
                BodyItem::Pos(atom("num", &["Y"])),
                BodyItem::Builtin(Builtin::new(BuiltinOp::Neq, Term::var("X"), Term::var("Y"))),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        // Only (a,b) and (b,a) pairs survive the X != Y builtin.
        let pair_rules = g.rules().iter().filter(|r| !r.is_fact()).count();
        assert_eq!(pair_rules, 2);
    }

    #[test]
    fn constants_in_rule_heads_and_bodies() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["a", "marker"])],
            vec![BodyItem::Pos(atom("p", &["a"]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert!(g.atom_id(&GroundAtom::new("q", &["a", "marker"])).is_some());
    }

    #[test]
    fn constraints_are_grounded() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_fact(atom("q", &["a"]));
        p.add_constraint(vec![
            BodyItem::Pos(atom("p", &["X"])),
            BodyItem::Pos(atom("q", &["X"])),
        ]);
        let g = Grounder::new(&p).ground().unwrap();
        assert!(g.rules().iter().any(GroundRule::is_constraint));
    }

    #[test]
    fn strong_negation_keeps_predicates_apart() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"]).strongly_negated()],
            vec![BodyItem::Pos(atom("p", &["X"]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert_eq!(g.atom_count(), 2);
        assert!(g
            .atom_id(&GroundAtom::new("p", &["a"]).strongly_negated())
            .is_some());
    }

    #[test]
    fn choice_rules_are_unfolded_before_grounding() {
        let mut p = Program::new();
        p.add_fact(atom("cand", &["k", "v1"]));
        p.add_fact(atom("cand", &["k", "v2"]));
        p.add_rule(Rule::new(
            vec![atom("pick", &["X", "W"])],
            vec![
                BodyItem::Pos(atom("cand", &["X", "W"])),
                BodyItem::Choice(ChoiceAtom::new(vec![Term::var("X")], vec![Term::var("W")])),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        let preds: BTreeSet<String> = g.atoms().map(|(_, a)| a.predicate.clone()).collect();
        assert!(preds.contains("chosen_0"));
        assert!(preds.contains("diffchoice_0"));
    }

    #[test]
    fn tautological_instances_are_dropped() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![BodyItem::Pos(atom("p", &["X"]))],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        assert_eq!(g.rule_count(), 1); // only the fact survives
    }

    #[test]
    fn ground_program_display_is_parsable_text() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("p", &["X"])),
                BodyItem::Naf(atom("q", &["X"]).strongly_negated()),
            ],
        ));
        let g = Grounder::new(&p).ground().unwrap();
        let text = g.to_string();
        assert!(text.contains("p(a)."));
        assert!(text.contains("q(a) :- p(a)."));
    }

    #[test]
    fn exact_bytes_deduplicates_shared_argument_text() {
        let mut g = GroundProgram::default();
        let shared: std::sync::Arc<str> = std::sync::Arc::from("shared-constant");
        let a = GroundAtom {
            predicate: "p".to_string(),
            strong_neg: false,
            args: vec![std::sync::Arc::clone(&shared)],
        };
        let b = GroundAtom {
            predicate: "q".to_string(),
            strong_neg: false,
            args: vec![std::sync::Arc::clone(&shared)],
        };
        let ha = g.intern(a);
        let hb = g.intern(b);
        g.add_rule(GroundRule {
            heads: vec![hb],
            pos: vec![ha],
            neg: vec![],
        });
        // Two atoms (24 + 1 + 8 each), one shared 15-byte payload charged
        // once, two index entries, one rule with two atom ids.
        let expected = 2 * (24 + 1 + 8) + 15 + 2 * 48 + (24 + 8 * 2);
        assert_eq!(g.exact_bytes(), expected);
    }
}

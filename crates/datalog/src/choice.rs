//! Unfolding of the `choice` operator into its *stable version*.
//!
//! The paper uses `choice((x̄), (w))` in rule (9) to pick, for every violating
//! combination `x̄`, exactly one witness `w` among the candidates admitted by
//! the rest of the body. Section 3.2 notes that "the choice operator can be
//! replaced by a predicate that can be defined by means of extra rules,
//! producing the so-called stable version of the choice program", and the
//! appendix shows that unfolding explicitly:
//!
//! ```text
//! chosen(X, Z, W)     ← Body, not diffchoice(X, Z, W).
//! diffchoice(X, Z, W) ← chosen(X, Z, U), Body[W/U-free], U ≠ W.
//! ```
//!
//! [`unfold_choices`] performs exactly this transformation: every rule with a
//! choice atom gets a fresh `chosen_<i>` / `diffchoice_<i>` predicate pair,
//! the choice atom in the original body is replaced by `chosen_<i>(x̄, w̄)`,
//! and the two defining rules are appended. The resulting program is a plain
//! disjunctive program with default negation whose answer sets are in 1-1
//! correspondence with the choice models of the original program.

use crate::syntax::{Atom, BodyItem, Builtin, BuiltinOp, Program, Rule, Term};

/// Replace every choice atom by its stable-version encoding.
///
/// Rules without choice atoms are copied unchanged. A rule with several
/// choice atoms gets one `chosen`/`diffchoice` pair per choice atom.
pub fn unfold_choices(program: &Program) -> Program {
    let mut out = Program::new();
    let mut counter = 0usize;
    for rule in program.rules() {
        if !rule.has_choice() {
            out.add_rule(rule.clone());
            continue;
        }
        let mut new_body: Vec<BodyItem> = Vec::new();
        let mut pending: Vec<(usize, crate::syntax::ChoiceAtom)> = Vec::new();
        for item in &rule.body {
            match item {
                BodyItem::Choice(c) => {
                    let id = counter;
                    counter += 1;
                    let mut terms = c.group.clone();
                    terms.extend(c.chosen.clone());
                    new_body.push(BodyItem::Pos(Atom::from_terms(chosen_name(id), terms)));
                    pending.push((id, c.clone()));
                }
                other => new_body.push(other.clone()),
            }
        }
        // The context body: every non-choice item of the original rule.
        let context: Vec<BodyItem> = rule
            .body
            .iter()
            .filter(|b| !matches!(b, BodyItem::Choice(_)))
            .cloned()
            .collect();

        out.add_rule(Rule::new(rule.head.clone(), new_body));

        for (id, choice) in pending {
            let mut chosen_terms = choice.group.clone();
            chosen_terms.extend(choice.chosen.clone());
            let chosen_head = Atom::from_terms(chosen_name(id), chosen_terms.clone());
            let diff_atom = Atom::from_terms(diffchoice_name(id), chosen_terms.clone());

            // chosen_i(x̄, w̄) ← context, not diffchoice_i(x̄, w̄).
            let mut chosen_body = context.clone();
            chosen_body.push(BodyItem::Naf(diff_atom.clone()));
            out.add_rule(Rule::new(vec![chosen_head], chosen_body));

            // diffchoice_i(x̄, w̄) ← context, chosen_i(x̄, ū), w̄ ≠ ū.
            // Fresh variables ū replace the chosen terms in the companion
            // `chosen` atom; the inequality is pointwise (disjunctive
            // difference is expressed by one rule per chosen position).
            for (pos, w_term) in choice.chosen.iter().enumerate() {
                let fresh: Vec<Term> = choice
                    .chosen
                    .iter()
                    .enumerate()
                    .map(|(i, _)| Term::var(format!("U_{id}_{i}")))
                    .collect();
                let mut companion_terms = choice.group.clone();
                companion_terms.extend(fresh.clone());
                let companion = Atom::from_terms(chosen_name(id), companion_terms);

                let mut diff_body = context.clone();
                diff_body.push(BodyItem::Pos(companion));
                diff_body.push(BodyItem::Builtin(Builtin::new(
                    BuiltinOp::Neq,
                    fresh[pos].clone(),
                    w_term.clone(),
                )));
                out.add_rule(Rule::new(vec![diff_atom.clone()], diff_body));
            }
        }
    }
    out
}

/// Name of the `chosen` predicate introduced for the `i`-th choice atom.
pub fn chosen_name(i: usize) -> String {
    format!("chosen_{i}")
}

/// Name of the `diffchoice` predicate introduced for the `i`-th choice atom.
pub fn diffchoice_name(i: usize) -> String {
    format!("diffchoice_{i}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::ChoiceAtom;

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn program_without_choice_is_unchanged() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![BodyItem::Pos(atom("p", &["X"]))],
        ));
        let unfolded = unfold_choices(&p);
        assert_eq!(&unfolded, &p);
    }

    #[test]
    fn choice_rule_expands_to_stable_version() {
        // r2p(X, W) :- s2(Z, W), body(X, Z), choice((X, Z), (W)).
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("r2p", &["X", "W"])],
            vec![
                BodyItem::Pos(atom("s2", &["Z", "W"])),
                BodyItem::Pos(atom("body", &["X", "Z"])),
                BodyItem::Choice(ChoiceAtom::new(
                    vec![Term::var("X"), Term::var("Z")],
                    vec![Term::var("W")],
                )),
            ],
        ));
        let unfolded = unfold_choices(&p);
        assert!(!unfolded.has_choice());
        // Original rule (choice replaced by chosen_0) + chosen rule + one
        // diffchoice rule (single chosen position).
        assert_eq!(unfolded.len(), 3);
        let text = unfolded.to_string();
        assert!(
            text.contains("chosen_0(X, Z, W) :- s2(Z, W), body(X, Z), not diffchoice_0(X, Z, W).")
        );
        assert!(text.contains(
            "diffchoice_0(X, Z, W) :- s2(Z, W), body(X, Z), chosen_0(X, Z, U_0_0), U_0_0 != W."
        ));
        assert!(text.contains("r2p(X, W) :- s2(Z, W), body(X, Z), chosen_0(X, Z, W)."));
        // All resulting rules are safe.
        assert!(unfolded.unsafe_rules().is_empty());
    }

    #[test]
    fn each_choice_atom_gets_its_own_predicates() {
        let mut p = Program::new();
        for rel in ["a", "b"] {
            p.add_rule(Rule::new(
                vec![atom("out", &["X", "W"])],
                vec![
                    BodyItem::Pos(atom(rel, &["X", "W"])),
                    BodyItem::Choice(ChoiceAtom::new(vec![Term::var("X")], vec![Term::var("W")])),
                ],
            ));
        }
        let unfolded = unfold_choices(&p);
        let preds = unfolded.predicates();
        assert!(preds.contains("chosen_0"));
        assert!(preds.contains("chosen_1"));
        assert!(preds.contains("diffchoice_0"));
        assert!(preds.contains("diffchoice_1"));
    }

    #[test]
    fn multi_variable_choice_generates_one_diff_rule_per_position() {
        let mut p = Program::new();
        p.add_rule(Rule::new(
            vec![atom("out", &["X", "W1", "W2"])],
            vec![
                BodyItem::Pos(atom("cand", &["X", "W1", "W2"])),
                BodyItem::Choice(ChoiceAtom::new(
                    vec![Term::var("X")],
                    vec![Term::var("W1"), Term::var("W2")],
                )),
            ],
        ));
        let unfolded = unfold_choices(&p);
        // 1 rewritten rule + 1 chosen rule + 2 diffchoice rules.
        assert_eq!(unfolded.len(), 4);
    }
}

//! Reasoning over answer sets: cautious (skeptical) and brave consequences,
//! and predicate-level query answering.
//!
//! The paper computes peer consistent answers by "running the query …
//! in combination with the specification program … under the skeptical
//! answer set semantics" (Section 3.2). [`AnswerSets::cautious_tuples`] is
//! exactly that operation: the tuples of a designated answer predicate that
//! appear in *every* answer set.

use crate::error::DatalogError;
use crate::ground::GroundAtom;
use crate::solve::{solve, SolveResult, SolverConfig};
use crate::syntax::Program;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The answer sets of a program, decoded into ground atoms.
#[derive(Debug, Clone)]
pub struct AnswerSets {
    /// Decoded answer sets (each a set of ground atoms), in a deterministic
    /// order.
    pub sets: Vec<BTreeSet<GroundAtom>>,
    /// Branch nodes explored by the solver (for benchmarking).
    pub branch_nodes: usize,
    /// Whether the HCF shift was applied.
    pub used_shift: bool,
}

impl AnswerSets {
    /// Compute the answer sets of a program.
    pub fn compute(program: &Program, config: SolverConfig) -> Result<AnswerSets, DatalogError> {
        let SolveResult {
            ground,
            answer_sets,
            branch_nodes,
            used_shift,
        } = solve(program, config)?;
        let sets = answer_sets.iter().map(|s| ground.decode(s)).collect();
        Ok(AnswerSets {
            sets,
            branch_nodes,
            used_shift,
        })
    }

    /// Number of answer sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when the program has no answer set.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Is the atom true in every answer set? (False when there are no answer
    /// sets at all: skeptical reasoning over an inconsistent program is
    /// trivially true in the logical sense, but for query answering the
    /// paper's reading — "no solutions, no peer consistent answers" — is the
    /// useful one, so we return `false`.)
    pub fn holds_cautiously(&self, atom: &GroundAtom) -> bool {
        !self.sets.is_empty() && self.sets.iter().all(|s| s.contains(atom))
    }

    /// Is the atom true in at least one answer set?
    pub fn holds_bravely(&self, atom: &GroundAtom) -> bool {
        self.sets.iter().any(|s| s.contains(atom))
    }

    /// Atoms true in every answer set (empty when there is no answer set).
    pub fn cautious_consequences(&self) -> BTreeSet<GroundAtom> {
        match self.sets.split_first() {
            None => BTreeSet::new(),
            Some((first, rest)) => rest.iter().fold(first.clone(), |acc, s| {
                acc.intersection(s).cloned().collect()
            }),
        }
    }

    /// Atoms true in at least one answer set.
    pub fn brave_consequences(&self) -> BTreeSet<GroundAtom> {
        self.sets.iter().flat_map(|s| s.iter().cloned()).collect()
    }

    /// The tuples of `predicate` (positive atoms only) that occur in every
    /// answer set — the skeptical answers to a query predicate.
    pub fn cautious_tuples(&self, predicate: &str) -> BTreeSet<Vec<Arc<str>>> {
        self.tuples_of(self.cautious_consequences(), predicate)
    }

    /// The tuples of `predicate` that occur in at least one answer set.
    pub fn brave_tuples(&self, predicate: &str) -> BTreeSet<Vec<Arc<str>>> {
        self.tuples_of(self.brave_consequences(), predicate)
    }

    /// The tuples of `predicate` in a specific answer set.
    pub fn tuples_in(&self, set_index: usize, predicate: &str) -> BTreeSet<Vec<Arc<str>>> {
        self.sets
            .get(set_index)
            .map(|s| self.tuples_of(s.clone(), predicate))
            .unwrap_or_default()
    }

    fn tuples_of(&self, atoms: BTreeSet<GroundAtom>, predicate: &str) -> BTreeSet<Vec<Arc<str>>> {
        atoms
            .into_iter()
            .filter(|a| !a.strong_neg && a.predicate == predicate)
            .map(|a| a.args)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Atom, BodyItem, Rule};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    fn two_world_program() -> Program {
        // Two answer sets: {p(a), shared(a)} and {q(a), shared(a)}.
        let mut prog = Program::new();
        prog.add_fact(atom("dom", &["a"]));
        prog.add_fact(atom("shared", &["a"]));
        prog.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        ));
        prog.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        prog
    }

    #[test]
    fn cautious_and_brave_consequences() {
        let sets = AnswerSets::compute(&two_world_program(), SolverConfig::default()).unwrap();
        assert_eq!(sets.len(), 2);
        let shared = GroundAtom::new("shared", &["a"]);
        let p = GroundAtom::new("p", &["a"]);
        assert!(sets.holds_cautiously(&shared));
        assert!(!sets.holds_cautiously(&p));
        assert!(sets.holds_bravely(&p));
        assert!(sets.cautious_consequences().contains(&shared));
        assert!(sets.brave_consequences().contains(&p));
    }

    #[test]
    fn cautious_tuples_project_predicate() {
        let sets = AnswerSets::compute(&two_world_program(), SolverConfig::default()).unwrap();
        let shared = sets.cautious_tuples("shared");
        assert_eq!(shared.len(), 1);
        assert!(shared.contains(&vec![Arc::from("a")]));
        assert!(sets.cautious_tuples("p").is_empty());
        assert_eq!(sets.brave_tuples("p").len(), 1);
    }

    #[test]
    fn tuples_in_specific_answer_set() {
        let sets = AnswerSets::compute(&two_world_program(), SolverConfig::default()).unwrap();
        let total: usize = (0..sets.len())
            .map(|i| sets.tuples_in(i, "p").len() + sets.tuples_in(i, "q").len())
            .sum();
        assert_eq!(total, 2);
        assert!(sets.tuples_in(99, "p").is_empty());
    }

    #[test]
    fn empty_answer_sets_are_handled() {
        // p :- dom, not p.  has no answer set.
        let mut prog = Program::new();
        prog.add_fact(atom("dom", &["a"]));
        prog.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("dom", &["X"])),
                BodyItem::Naf(atom("p", &["X"])),
            ],
        ));
        let sets = AnswerSets::compute(&prog, SolverConfig::default()).unwrap();
        assert!(sets.is_empty());
        assert!(sets.cautious_consequences().is_empty());
        assert!(!sets.holds_cautiously(&GroundAtom::new("dom", &["a"])));
    }

    #[test]
    fn strongly_negated_atoms_are_excluded_from_tuples() {
        let mut prog = Program::new();
        prog.add_fact(atom("p", &["a"]));
        prog.add_fact(atom("p", &["b"]).strongly_negated());
        let sets = AnswerSets::compute(&prog, SolverConfig::default()).unwrap();
        let tuples = sets.cautious_tuples("p");
        assert_eq!(tuples.len(), 1);
        assert!(tuples.contains(&vec![Arc::from("a")]));
    }
}

//! Abstract syntax of disjunctive logic programs with default negation,
//! classical (strong) negation, built-in comparisons and the `choice`
//! operator.
//!
//! The syntax mirrors what the paper's specification programs need
//! (Section 3.1 and the appendix):
//!
//! * rules with *disjunctive heads* — e.g. rule (9)
//!   `¬R′1(x,y) ∨ R′2(x,w) ← …`;
//! * *classical negation* in heads and bodies (`¬R′1`), written here as
//!   [`Atom::strongly_negated`];
//! * *default negation* (`not aux1(x,z)`) in bodies;
//! * built-in comparisons (`u ≠ w`);
//! * the non-deterministic `choice((x̄), (w))` operator of Giannotti et al.,
//!   which the `choice` module unfolds into its *stable version*.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A term: a variable or an (interned) constant symbol.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, by name.
    Var(String),
    /// A constant symbol.
    Const(Arc<str>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn cnst(symbol: impl AsRef<str>) -> Term {
        Term::Const(Arc::from(symbol.as_ref()))
    }

    /// Parse a token: names beginning with an uppercase ASCII letter or `_`
    /// are variables, everything else is a constant.
    pub fn parse(token: &str) -> Term {
        match token.chars().next() {
            Some(c) if c.is_ascii_uppercase() || c == '_' => Term::var(token),
            _ => Term::cnst(token),
        }
    }

    /// True for variables.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if any.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant symbol, if any.
    pub fn as_const(&self) -> Option<&str> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A (possibly strongly negated) relational atom `p(t̄)` or `¬p(t̄)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// `true` when the atom is classically negated (`¬p`).
    pub strong_neg: bool,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// A positive atom from token arguments ([`Term::parse`] convention).
    pub fn new<S: AsRef<str>>(predicate: impl Into<String>, tokens: &[S]) -> Atom {
        Atom {
            predicate: predicate.into(),
            strong_neg: false,
            terms: tokens.iter().map(|t| Term::parse(t.as_ref())).collect(),
        }
    }

    /// A positive atom from explicit terms.
    pub fn from_terms(predicate: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            strong_neg: false,
            terms,
        }
    }

    /// The classically negated version of this atom.
    pub fn strongly_negated(mut self) -> Atom {
        self.strong_neg = !self.strong_neg;
        self
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// True when every term is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// The variables of the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.terms
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }

    /// The "signed predicate" key used to keep `p` and `¬p` apart.
    pub fn signed_predicate(&self) -> String {
        if self.strong_neg {
            format!("-{}", self.predicate)
        } else {
            self.predicate.clone()
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.strong_neg {
            write!(f, "-")?;
        }
        write!(f, "{}", self.predicate)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Built-in comparison operators usable in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BuiltinOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<` (lexicographic on constant symbols)
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
}

impl BuiltinOp {
    /// Evaluate the operator on two constant symbols.
    pub fn eval(self, left: &str, right: &str) -> bool {
        match self {
            BuiltinOp::Eq => left == right,
            BuiltinOp::Neq => left != right,
            BuiltinOp::Lt => left < right,
            BuiltinOp::Leq => left <= right,
            BuiltinOp::Gt => left > right,
            BuiltinOp::Geq => left >= right,
        }
    }
}

impl fmt::Display for BuiltinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BuiltinOp::Eq => "=",
            BuiltinOp::Neq => "!=",
            BuiltinOp::Lt => "<",
            BuiltinOp::Leq => "<=",
            BuiltinOp::Gt => ">",
            BuiltinOp::Geq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A built-in comparison in a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Builtin {
    /// Operator.
    pub op: BuiltinOp,
    /// Left term.
    pub left: Term,
    /// Right term.
    pub right: Term,
}

impl Builtin {
    /// Construct a builtin.
    pub fn new(op: BuiltinOp, left: Term, right: Term) -> Builtin {
        Builtin { op, left, right }
    }

    /// Variables used by the builtin.
    pub fn variables(&self) -> BTreeSet<String> {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// The non-deterministic choice operator `choice((x̄), (w̄))`: for every value
/// of the grouping terms `x̄` (bound by the rest of the body), exactly one
/// value of the chosen terms `w̄` is selected among those satisfying the body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChoiceAtom {
    /// Grouping terms (the functional "key" of the choice).
    pub group: Vec<Term>,
    /// Chosen terms (functionally dependent on the group).
    pub chosen: Vec<Term>,
}

impl ChoiceAtom {
    /// Construct a choice atom.
    pub fn new(group: Vec<Term>, chosen: Vec<Term>) -> ChoiceAtom {
        ChoiceAtom { group, chosen }
    }

    /// Variables of the choice atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.group
            .iter()
            .chain(self.chosen.iter())
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }
}

impl fmt::Display for ChoiceAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let group: Vec<String> = self.group.iter().map(|t| t.to_string()).collect();
        let chosen: Vec<String> = self.chosen.iter().map(|t| t.to_string()).collect();
        write!(f, "choice(({}), ({}))", group.join(", "), chosen.join(", "))
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BodyItem {
    /// A positive atom.
    Pos(Atom),
    /// A default-negated atom (`not p(t̄)`).
    Naf(Atom),
    /// A built-in comparison.
    Builtin(Builtin),
    /// A choice atom (must be unfolded before grounding).
    Choice(ChoiceAtom),
}

impl BodyItem {
    /// Variables of the body item.
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            BodyItem::Pos(a) | BodyItem::Naf(a) => a.variables(),
            BodyItem::Builtin(b) => b.variables(),
            BodyItem::Choice(c) => c.variables(),
        }
    }
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Pos(a) => write!(f, "{a}"),
            BodyItem::Naf(a) => write!(f, "not {a}"),
            BodyItem::Builtin(b) => write!(f, "{b}"),
            BodyItem::Choice(c) => write!(f, "{c}"),
        }
    }
}

/// A rule: `h1 ∨ … ∨ hk ← body`. A rule with an empty head is a denial
/// constraint; a rule with an empty body is a fact (or a disjunctive fact).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Head atoms (disjunction). Empty for constraints.
    pub head: Vec<Atom>,
    /// Body items (conjunction).
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// A fact.
    pub fn fact(atom: Atom) -> Rule {
        Rule {
            head: vec![atom],
            body: vec![],
        }
    }

    /// A normal or disjunctive rule.
    pub fn new(head: Vec<Atom>, body: Vec<BodyItem>) -> Rule {
        Rule { head, body }
    }

    /// A denial constraint `← body`.
    pub fn constraint(body: Vec<BodyItem>) -> Rule {
        Rule { head: vec![], body }
    }

    /// True when the rule has no body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.len() == 1
    }

    /// True when the rule has an empty head.
    pub fn is_constraint(&self) -> bool {
        self.head.is_empty()
    }

    /// True when the head has more than one atom.
    pub fn is_disjunctive(&self) -> bool {
        self.head.len() > 1
    }

    /// True when some body item is a choice atom.
    pub fn has_choice(&self) -> bool {
        self.body.iter().any(|b| matches!(b, BodyItem::Choice(_)))
    }

    /// All variables of the rule.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.head.iter().flat_map(|a| a.variables()).collect();
        for b in &self.body {
            out.extend(b.variables());
        }
        out
    }

    /// Variables appearing in positive body atoms (the variables a safe rule
    /// must bind).
    pub fn positively_bound_variables(&self) -> BTreeSet<String> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Pos(a) => Some(a.variables()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// A rule is *safe* when every variable it uses occurs in some positive
    /// body atom (choice-atom variables are checked against the rest of the
    /// body as well).
    pub fn is_safe(&self) -> bool {
        let bound = self.positively_bound_variables();
        self.variables().iter().all(|v| bound.contains(v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " v ")?;
            }
            write!(f, "{h}")?;
        }
        if !self.body.is_empty() {
            if !self.head.is_empty() {
                write!(f, " ")?;
            }
            write!(f, ":- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        write!(f, ".")
    }
}

/// A logic program: a list of rules (facts are rules with empty bodies).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Add a fact.
    pub fn add_fact(&mut self, atom: Atom) -> &mut Self {
        self.rules.push(Rule::fact(atom));
        self
    }

    /// Add a denial constraint.
    pub fn add_constraint(&mut self, body: Vec<BodyItem>) -> &mut Self {
        self.rules.push(Rule::constraint(body));
        self
    }

    /// Append every rule of another program.
    pub fn extend(&mut self, other: &Program) -> &mut Self {
        self.rules.extend(other.rules.iter().cloned());
        self
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All predicate names used by the program (signed: `-p` for `¬p`).
    pub fn predicates(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for a in &r.head {
                out.insert(a.signed_predicate());
            }
            for b in &r.body {
                match b {
                    BodyItem::Pos(a) | BodyItem::Naf(a) => {
                        out.insert(a.signed_predicate());
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// True when some rule has a disjunctive head.
    pub fn is_disjunctive(&self) -> bool {
        self.rules.iter().any(Rule::is_disjunctive)
    }

    /// True when some rule uses the choice operator.
    pub fn has_choice(&self) -> bool {
        self.rules.iter().any(Rule::has_choice)
    }

    /// The unsafe rules of the program (empty for well-formed programs).
    pub fn unsafe_rules(&self) -> Vec<&Rule> {
        self.rules.iter().filter(|r| !r.is_safe()).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Program {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn term_parse_convention() {
        assert!(Term::parse("X").is_var());
        assert!(Term::parse("_g").is_var());
        assert!(!Term::parse("a").is_var());
        assert_eq!(Term::parse("abc").as_const(), Some("abc"));
    }

    #[test]
    fn atom_display_and_sign() {
        let a = atom("r1_p", &["X", "b"]);
        assert_eq!(a.to_string(), "r1_p(X, b)");
        let n = a.clone().strongly_negated();
        assert_eq!(n.to_string(), "-r1_p(X, b)");
        assert_eq!(n.signed_predicate(), "-r1_p");
        assert_eq!(n.clone().strongly_negated(), a);
        assert!(!a.is_ground());
        assert!(atom("p", &["a", "b"]).is_ground());
    }

    #[test]
    fn rule_classification() {
        let fact = Rule::fact(atom("r1", &["a", "b"]));
        assert!(fact.is_fact());
        assert!(!fact.is_constraint());

        let constraint = Rule::constraint(vec![
            BodyItem::Pos(atom("p", &["X"])),
            BodyItem::Pos(atom("q", &["X"])),
        ]);
        assert!(constraint.is_constraint());

        let disj = Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("c", &["X"]))],
        );
        assert!(disj.is_disjunctive());
    }

    #[test]
    fn safety_requires_positive_binding() {
        // p(X) :- not q(X).  -- unsafe
        let unsafe_rule = Rule::new(
            vec![atom("p", &["X"])],
            vec![BodyItem::Naf(atom("q", &["X"]))],
        );
        assert!(!unsafe_rule.is_safe());
        // p(X) :- r(X), not q(X).  -- safe
        let safe_rule = Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("r", &["X"])),
                BodyItem::Naf(atom("q", &["X"])),
            ],
        );
        assert!(safe_rule.is_safe());
        // builtin variable must be bound too.
        let unsafe_builtin = Rule::new(
            vec![atom("p", &["X"])],
            vec![
                BodyItem::Pos(atom("r", &["X"])),
                BodyItem::Builtin(Builtin::new(BuiltinOp::Neq, Term::var("X"), Term::var("Y"))),
            ],
        );
        assert!(!unsafe_builtin.is_safe());
    }

    #[test]
    fn builtin_eval_semantics() {
        assert!(BuiltinOp::Neq.eval("a", "b"));
        assert!(BuiltinOp::Eq.eval("a", "a"));
        assert!(BuiltinOp::Lt.eval("a", "b"));
        assert!(BuiltinOp::Geq.eval("b", "b"));
    }

    #[test]
    fn rule_display_matches_conventional_syntax() {
        let r = Rule::new(
            vec![
                atom("r1p", &["X", "Y"]).strongly_negated(),
                atom("r2p", &["X", "W"]),
            ],
            vec![
                BodyItem::Pos(atom("r1", &["X", "Y"])),
                BodyItem::Naf(atom("aux1", &["X", "Z"])),
                BodyItem::Builtin(Builtin::new(BuiltinOp::Neq, Term::var("U"), Term::var("W"))),
            ],
        );
        assert_eq!(
            r.to_string(),
            "-r1p(X, Y) v r2p(X, W) :- r1(X, Y), not aux1(X, Z), U != W."
        );
        let c = Rule::constraint(vec![BodyItem::Pos(atom("p", &["X"]))]);
        assert_eq!(c.to_string(), ":- p(X).");
        let f = Rule::fact(atom("p", &["a"]));
        assert_eq!(f.to_string(), "p(a).");
    }

    #[test]
    fn program_collects_predicates_and_flags() {
        let mut p = Program::new();
        p.add_fact(atom("r1", &["a", "b"]));
        p.add_rule(Rule::new(
            vec![atom("r1p", &["X", "Y"])],
            vec![
                BodyItem::Pos(atom("r1", &["X", "Y"])),
                BodyItem::Naf(atom("r1p", &["X", "Y"]).strongly_negated()),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("a", &["X"]), atom("b", &["X"])],
            vec![BodyItem::Pos(atom("r1", &["X", "X"]))],
        ));
        assert!(p.is_disjunctive());
        assert!(!p.has_choice());
        let preds = p.predicates();
        assert!(preds.contains("r1"));
        assert!(preds.contains("-r1p"));
        assert!(preds.contains("r1p"));
        assert_eq!(p.len(), 3);
        assert!(p.unsafe_rules().is_empty());
    }

    #[test]
    fn choice_atom_display_and_detection() {
        let rule = Rule::new(
            vec![atom("r2p", &["X", "W"])],
            vec![
                BodyItem::Pos(atom("s2", &["Z", "W"])),
                BodyItem::Choice(ChoiceAtom::new(
                    vec![Term::var("X"), Term::var("Z")],
                    vec![Term::var("W")],
                )),
            ],
        );
        assert!(rule.has_choice());
        assert!(rule.to_string().contains("choice((X, Z), (W))"));
        let mut p = Program::new();
        p.add_rule(rule);
        assert!(p.has_choice());
    }

    #[test]
    fn program_extend_appends_rules() {
        let mut a = Program::new();
        a.add_fact(atom("p", &["x"]));
        let mut b = Program::new();
        b.add_fact(atom("q", &["y"]));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}

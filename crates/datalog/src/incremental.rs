//! Delta-driven incremental re-grounding.
//!
//! Grounding a program has two expensive phases: *saturation* (the fixpoint
//! of possibly-derivable atoms) and *instantiation* (joining every rule body
//! against the saturated sets). Both are pure functions of the program's
//! rules and facts, so when an update changes only a handful of base facts,
//! re-running them from scratch — as a fresh [`crate::ground::Grounder`]
//! does — throws away almost everything it just computed. This module keeps
//! the intermediate state alive and patches it:
//!
//! * [`IncrementalGround::new`] grounds a program once, retaining the
//!   saturated possible-atom sets, a *support count* per possible atom (how
//!   many distinct derivations — base fact or rule instantiation — produce
//!   it), and the rule instantiations grouped by source rule.
//! * [`IncrementalGround::apply_delta`] takes base-fact insertions and
//!   deletions and repairs the state:
//!   * **Insertions** propagate by *semi-naive evaluation*: each round joins
//!     only rule bodies with at least one occurrence in the newest delta
//!     (occurrences before the pinned one range over the pre-delta set,
//!     occurrences after it over the full set, so every new derivation is
//!     counted exactly once), incrementing support counts and seeding the
//!     next round with atoms that became possible.
//!   * **Deletions** run the same delta join in reverse, *decrementing* the
//!     support count of every lost derivation; an atom whose count reaches
//!     zero stops being possible and joins the next deletion round. Support
//!     counting is exact only while no deleted atom can feed a positive
//!     recursive component (cyclic derivations would keep each other alive);
//!     when one can, the state falls back to full re-saturation and reports
//!     it in [`PatchStats::full_resaturation`].
//!   * Finally, only the rules whose predicates intersect the changed set
//!     (head, positive *or default-negated* body — a possibility flip under
//!     `not` changes which literals instantiation drops) are re-instantiated;
//!     every other rule keeps its existing ground instances untouched.
//! * [`IncrementalGround::to_ground`] rebuilds the interned
//!   [`GroundProgram`] from the patched groups — the only full pass, and a
//!   cheap one (no joins, just interning).
//!
//! The instantiated slice after a patch is identical to what a fresh
//! grounding of the updated program would produce, up to rule order and atom
//! ids (the unit tests assert rule-set equality against a fresh
//! [`crate::ground::Grounder`]).

use crate::choice::unfold_choices;
use crate::error::DatalogError;
use crate::ground::{
    apply, contains, retain_builtin_satisfying, rule_matches, signed_key, try_unify, GroundAtom,
    GroundProgram, GroundRule, PossibleSets, Subst,
};
use crate::syntax::{Atom, BodyItem, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// What one [`IncrementalGround::apply_delta`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Ground rule instances produced by re-instantiating affected rules
    /// (plus changed base facts). The cost proxy of the patch: a warm
    /// post-commit preparation re-derives this many rules instead of the
    /// whole slice.
    pub reinstantiated_rules: usize,
    /// Ground rule instances kept untouched from unaffected rules.
    pub reused_rules: usize,
    /// Source (non-ground) rules that had to be re-instantiated.
    pub affected_source_rules: usize,
    /// Base facts inserted or deleted by the delta (after deduplication
    /// against the current fact set).
    pub fact_changes: usize,
    /// True when a deletion could feed a positive recursive component and
    /// the state re-saturated from scratch (support counting alone cannot
    /// see through cyclic derivations).
    pub full_resaturation: bool,
}

/// One rule instantiation in symbolic form (ground atoms, not interned ids),
/// so unaffected groups survive re-interning untouched.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SymRule {
    heads: Vec<GroundAtom>,
    pos: Vec<GroundAtom>,
    neg: Vec<GroundAtom>,
}

/// A ground program kept in patchable form: the source rules, the base
/// facts, the saturated possible sets with per-atom support counts, and the
/// rule instantiations grouped by source rule. See the module docs.
#[derive(Debug, Clone)]
pub struct IncrementalGround {
    /// Non-fact source rules, in program order.
    rules: Vec<Rule>,
    /// Current base facts (ground fact rules of the program).
    facts: BTreeSet<GroundAtom>,
    /// Saturated possibly-derivable atoms, by signed predicate key.
    possible: PossibleSets,
    /// Derivation count per possible atom: 1 for a base fact, plus 1 per
    /// (rule, substitution, head) instantiation deriving it.
    support: BTreeMap<GroundAtom, u64>,
    /// Signed predicates from which a positive-dependency path reaches a
    /// positive recursive component — deletions touching them force a full
    /// re-saturation.
    feeds_recursion: BTreeSet<String>,
    /// Every signed predicate occurring in the slice (rule heads, positive
    /// and negated bodies, and base facts). Deltas outside this set cannot
    /// affect the grounding.
    predicates: BTreeSet<String>,
    /// Instantiations per source rule (same indexing as `rules`).
    groups: Vec<Vec<SymRule>>,
}

impl IncrementalGround {
    /// Ground `program`, retaining the incremental state. Choice atoms are
    /// unfolded first, exactly like [`crate::ground::Grounder::new`].
    pub fn new(program: &Program) -> Result<Self, DatalogError> {
        let program = if program.has_choice() {
            unfold_choices(program)
        } else {
            program.clone()
        };
        if let Some(rule) = program.unsafe_rules().first() {
            return Err(DatalogError::UnsafeRule(rule.to_string()));
        }
        let mut facts: BTreeSet<GroundAtom> = BTreeSet::new();
        let mut rules: Vec<Rule> = Vec::new();
        for rule in program.rules() {
            if rule.is_fact() {
                facts.insert(apply(&rule.head[0], &Subst::new()));
            } else {
                rules.push(rule.clone());
            }
        }
        let mut predicates: BTreeSet<String> =
            facts.iter().map(GroundAtom::predicate_key).collect();
        for rule in &rules {
            predicates.extend(rule.head.iter().map(signed_key));
            for item in &rule.body {
                match item {
                    BodyItem::Pos(a) | BodyItem::Naf(a) => {
                        predicates.insert(signed_key(a));
                    }
                    _ => {}
                }
            }
        }
        let feeds_recursion = feeds_recursion(&rules);
        let mut state = IncrementalGround {
            rules,
            facts,
            possible: PossibleSets::new(),
            support: BTreeMap::new(),
            feeds_recursion,
            predicates,
            groups: Vec::new(),
        };
        state.resaturate();
        state.groups = state
            .rules
            .iter()
            .map(|rule| instantiate(rule, &state.possible))
            .collect();
        Ok(state)
    }

    /// Signed predicates occurring anywhere in the slice. A delta over a
    /// predicate outside this set leaves the grounding — and therefore the
    /// solved worlds — untouched.
    pub fn touches(&self, signed_predicate: &str) -> bool {
        self.predicates.contains(signed_predicate)
    }

    /// Number of ground rules currently instantiated (facts included).
    pub fn rule_count(&self) -> usize {
        self.facts.len() + self.groups.iter().map(Vec::len).sum::<usize>()
    }

    /// Current base facts.
    pub fn facts(&self) -> &BTreeSet<GroundAtom> {
        &self.facts
    }

    /// A deterministic, platform-independent estimate of the state's memory
    /// footprint in bytes, used by the engine's byte-budgeted cache. Based
    /// on element counts only (no allocator or pointer-width specifics), so
    /// eviction counts are reproducible across CI runners.
    pub fn approx_bytes(&self) -> usize {
        let atom_bytes = |a: &GroundAtom| 24 + a.predicate.len() + 16 * a.args.len();
        let possible: usize = self
            .possible
            .values()
            .flat_map(|set| set.iter())
            .map(atom_bytes)
            .sum();
        let support = self.support.len() * 48;
        let groups: usize = self
            .groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|r| 48 + 16 * (r.heads.len() + r.pos.len() + r.neg.len()))
            .sum();
        let facts: usize = self.facts.iter().map(atom_bytes).sum();
        possible + support + groups + facts
    }

    /// Exact interned-size accounting for the byte-budgeted cache, the
    /// interned data plane's replacement for
    /// [`IncrementalGround::approx_bytes`]. The atom stores (`possible` and
    /// the base facts) charge each atom its predicate text, 8 bytes per
    /// constant-argument reference and each `Arc<str>` payload *once per
    /// distinct allocation* (shared interned text deduplicates by pointer
    /// identity, so the figure reflects what sharing actually saves); rule
    /// instantiations charge 8 bytes per atom reference — the interned-id
    /// form [`IncrementalGround::to_ground`] materializes, whose atoms the
    /// stores above already carry. Deterministic for a given grounding:
    /// which arguments share an allocation is fixed by how the program was
    /// built, never by the allocator.
    pub fn exact_bytes(&self) -> usize {
        let mut seen: std::collections::HashSet<*const u8> = std::collections::HashSet::new();
        let mut atom_bytes = |a: &GroundAtom| -> usize {
            let mut bytes = 24 + a.predicate.len() + 8 * a.args.len();
            for arg in &a.args {
                if seen.insert(arg.as_ptr()) {
                    bytes += arg.len();
                }
            }
            bytes
        };
        let possible: usize = self
            .possible
            .values()
            .flat_map(|set| set.iter())
            .map(&mut atom_bytes)
            .sum();
        let support = self.support.len() * 48;
        let groups: usize = self
            .groups
            .iter()
            .flat_map(|g| g.iter())
            .map(|r| 48 + 8 * (r.heads.len() + r.pos.len() + r.neg.len()))
            .sum();
        let facts: usize = self.facts.iter().map(&mut atom_bytes).sum();
        possible + support + groups + facts
    }

    /// Patch the state for a base-fact delta. Insertions already present and
    /// deletions already absent are ignored. Returns what was re-derived.
    pub fn apply_delta(
        &mut self,
        insertions: &[GroundAtom],
        deletions: &[GroundAtom],
    ) -> PatchStats {
        let inserted: Vec<GroundAtom> = insertions
            .iter()
            .filter(|a| !self.facts.contains(a))
            .cloned()
            .collect();
        let deleted: Vec<GroundAtom> = deletions
            .iter()
            .filter(|a| self.facts.contains(a))
            .cloned()
            .collect();
        let mut stats = PatchStats {
            fact_changes: inserted.len() + deleted.len(),
            ..PatchStats::default()
        };
        if inserted.is_empty() && deleted.is_empty() {
            stats.reused_rules = self.rule_count();
            return stats;
        }

        for atom in &deleted {
            self.facts.remove(atom);
        }
        for atom in &inserted {
            self.facts.insert(atom.clone());
            self.predicates.insert(atom.predicate_key());
        }

        // Predicates whose possible set changes; seeds re-instantiation.
        let mut changed: BTreeSet<String> = BTreeSet::new();

        let recursive_deletion = deleted
            .iter()
            .any(|a| self.feeds_recursion.contains(&a.predicate_key()));
        if recursive_deletion {
            // Cyclic supports defeat counting: re-saturate from scratch and
            // diff the possible sets to find what changed.
            stats.full_resaturation = true;
            let before = std::mem::take(&mut self.possible);
            self.resaturate();
            for key in before.keys().chain(self.possible.keys()) {
                let old = before.get(key);
                let new = self.possible.get(key);
                if old != new {
                    changed.insert(key.clone());
                }
            }
            changed.extend(inserted.iter().map(GroundAtom::predicate_key));
            changed.extend(deleted.iter().map(GroundAtom::predicate_key));
        } else {
            self.propagate_deletions(&deleted, &mut changed);
            self.propagate_insertions(&inserted, &mut changed);
        }

        // Re-instantiate exactly the rules that can observe a changed
        // predicate (head, positive or negated body occurrence).
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule_mentions(rule, &changed) {
                stats.affected_source_rules += 1;
                self.groups[idx] = instantiate(rule, &self.possible);
                stats.reinstantiated_rules += self.groups[idx].len();
            } else {
                stats.reused_rules += self.groups[idx].len();
            }
        }
        stats.reinstantiated_rules += stats.fact_changes;
        stats.reused_rules += self.facts.len();
        stats
    }

    /// Rebuild the interned [`GroundProgram`] from the current facts and
    /// instantiation groups (no joins — pure interning).
    pub fn to_ground(&self) -> GroundProgram {
        let mut ground = GroundProgram::default();
        for fact in &self.facts {
            let id = ground.intern(fact.clone());
            ground.add_rule(GroundRule {
                heads: vec![id],
                pos: Vec::new(),
                neg: Vec::new(),
            });
        }
        for group in &self.groups {
            for rule in group {
                let heads = rule
                    .heads
                    .iter()
                    .map(|a| ground.intern(a.clone()))
                    .collect();
                let pos = rule.pos.iter().map(|a| ground.intern(a.clone())).collect();
                let neg = rule.neg.iter().map(|a| ground.intern(a.clone())).collect();
                ground.add_rule(GroundRule { heads, pos, neg });
            }
        }
        ground
    }

    /// Recompute the possible sets and support counts from scratch (build
    /// time, and the recursive-deletion fallback).
    fn resaturate(&mut self) {
        let mut possible: PossibleSets = BTreeMap::new();
        for fact in &self.facts {
            possible
                .entry(fact.predicate_key())
                .or_default()
                .insert(fact.clone());
        }
        loop {
            let mut changed = false;
            for rule in &self.rules {
                for theta in rule_matches(rule, &possible) {
                    for h in &rule.head {
                        let g = apply(h, &theta);
                        if possible.entry(g.predicate_key()).or_default().insert(g) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Exact derivation counts in one pass over the fixpoint.
        let mut support: BTreeMap<GroundAtom, u64> = BTreeMap::new();
        for fact in &self.facts {
            *support.entry(fact.clone()).or_insert(0) += 1;
        }
        for rule in &self.rules {
            for theta in rule_matches(rule, &possible) {
                for h in &rule.head {
                    *support.entry(apply(h, &theta)).or_insert(0) += 1;
                }
            }
        }
        self.possible = possible;
        self.support = support;
    }

    /// Counting deletion: each round joins every rule body with one
    /// occurrence pinned to an atom that just lost its last support, to
    /// find (and un-count) the derivations that died with it.
    ///
    /// The possible sets are *frozen* for the duration of a round: a
    /// round's atoms are only retired from `possible` after its joins ran
    /// (so `possible` itself is the pre-round "old" state — no snapshot
    /// clone needed), and atoms dying mid-round keep their membership
    /// until their own round ends. Exactness depends on this: a derivation
    /// whose body atoms die in different rounds is un-counted exactly once,
    /// in the earliest round (where the later-dying occurrences are still
    /// in the frozen old state), and the before/after split excludes the
    /// current delta from earlier occurrences so within-round pairs are
    /// not double-counted either.
    fn propagate_deletions(&mut self, deleted: &[GroundAtom], changed: &mut BTreeSet<String>) {
        let mut round: Vec<GroundAtom> = Vec::new();
        for atom in deleted {
            changed.insert(atom.predicate_key());
            if decrement_map(&mut self.support, atom) {
                round.push(atom.clone());
            }
        }
        while !round.is_empty() {
            let delta = bucket(&round);
            for atom in &round {
                changed.insert(atom.predicate_key());
            }
            let mut next: Vec<GroundAtom> = Vec::new();
            for rule in &self.rules {
                for theta in delta_matches(rule, &delta, &self.possible) {
                    for h in &rule.head {
                        let g = apply(h, &theta);
                        if self.support.get(&g).copied().unwrap_or(0) == 0 {
                            continue; // already dead (queued in an earlier round)
                        }
                        if decrement_map(&mut self.support, &g) {
                            next.push(g);
                        }
                    }
                }
            }
            // Only now retire this round's atoms from the possible sets.
            for atom in &round {
                remove_possible(&mut self.possible, atom);
            }
            round = next;
        }
    }

    /// Semi-naive insertion: each round joins rule bodies with one
    /// occurrence pinned to a newly-possible atom, counting every new
    /// derivation exactly once and seeding the next round with atoms that
    /// just became possible.
    ///
    /// Mirror-image freezing of [`IncrementalGround::propagate_deletions`]:
    /// a round's delta atoms enter `possible` at the start of the round,
    /// but atoms *derived during* the round do not — they only become
    /// visible as the next round's delta. Otherwise a derivation through a
    /// two-level chain would be counted twice: once in the round that
    /// derived its intermediate atom (which a mid-round insert would make
    /// joinable immediately) and again in the next round with the pin on
    /// that intermediate atom.
    fn propagate_insertions(&mut self, inserted: &[GroundAtom], changed: &mut BTreeSet<String>) {
        let mut round: Vec<GroundAtom> = Vec::new();
        let mut queued: BTreeSet<GroundAtom> = BTreeSet::new();
        for atom in inserted {
            changed.insert(atom.predicate_key());
            *self.support.entry(atom.clone()).or_insert(0) += 1;
            if !contains(&self.possible, atom) && queued.insert(atom.clone()) {
                round.push(atom.clone());
            }
        }
        while !round.is_empty() {
            // The round's delta becomes possible (and joinable) now;
            // anything derived below stays invisible until the next round.
            for atom in &round {
                changed.insert(atom.predicate_key());
                self.possible
                    .entry(atom.predicate_key())
                    .or_default()
                    .insert(atom.clone());
            }
            let delta = bucket(&round);
            let mut next: Vec<GroundAtom> = Vec::new();
            let mut seen: BTreeSet<GroundAtom> = BTreeSet::new();
            for rule in &self.rules {
                for theta in delta_matches(rule, &delta, &self.possible) {
                    for h in &rule.head {
                        let g = apply(h, &theta);
                        *self.support.entry(g.clone()).or_insert(0) += 1;
                        if !contains(&self.possible, &g) && seen.insert(g.clone()) {
                            next.push(g);
                        }
                    }
                }
            }
            round = next;
        }
    }
}

/// Group a flat atom list by signed predicate key.
fn bucket(atoms: &[GroundAtom]) -> PossibleSets {
    let mut out = PossibleSets::new();
    for atom in atoms {
        out.entry(atom.predicate_key())
            .or_default()
            .insert(atom.clone());
    }
    out
}

/// Decrement an atom's support count; true when it reached zero (the entry
/// is removed).
fn decrement_map(support: &mut BTreeMap<GroundAtom, u64>, atom: &GroundAtom) -> bool {
    match support.get_mut(atom) {
        Some(count) if *count > 1 => {
            *count -= 1;
            false
        }
        Some(_) => {
            support.remove(atom);
            true
        }
        None => false,
    }
}

fn remove_possible(possible: &mut PossibleSets, atom: &GroundAtom) {
    if let Some(set) = possible.get_mut(&atom.predicate_key()) {
        set.remove(atom);
        if set.is_empty() {
            possible.remove(&atom.predicate_key());
        }
    }
}

/// Does a rule mention (head, positive or negated body) any predicate of
/// `changed`?
fn rule_mentions(rule: &Rule, changed: &BTreeSet<String>) -> bool {
    rule.head.iter().any(|a| changed.contains(&signed_key(a)))
        || rule.body.iter().any(|item| match item {
            BodyItem::Pos(a) | BodyItem::Naf(a) => changed.contains(&signed_key(a)),
            _ => false,
        })
}

/// All substitutions of `rule`'s positive body over `full` that use at least
/// one atom of `delta`, each counted exactly once: for every occurrence `k`
/// whose predicate has delta atoms, pin occurrence `k` to the delta while
/// occurrences before `k` range over `full \ delta` and occurrences after
/// `k` over `full`. Built-ins filter as usual.
fn delta_matches(rule: &Rule, delta: &PossibleSets, full: &PossibleSets) -> Vec<Subst> {
    let positives: Vec<&Atom> = rule
        .body
        .iter()
        .filter_map(|b| match b {
            BodyItem::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    let empty = BTreeSet::new();
    let mut results = Vec::new();
    for k in 0..positives.len() {
        let key_k = signed_key(positives[k]);
        let Some(delta_k) = delta.get(&key_k) else {
            continue;
        };
        // Pin occurrence k to each delta atom, then join the rest with the
        // before/after split.
        let rest: Vec<&Atom> = positives
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .map(|(_, a)| *a)
            .collect();
        // `rest` index j corresponds to original occurrence j (j < k) or
        // j + 1 (j >= k).
        for pinned in delta_k {
            let mut current = Subst::new();
            let Some(added) = try_unify(positives[k], pinned, &mut current) else {
                continue;
            };
            // Join the remaining occurrences with the before/after split
            // (before-the-pin occurrences exclude the delta so each new or
            // lost derivation is counted exactly once).
            let mut cand_sets: Vec<(&Atom, Vec<&GroundAtom>)> = Vec::with_capacity(rest.len());
            let mut viable = true;
            for (j, atom) in rest.iter().enumerate() {
                let original = if j < k { j } else { j + 1 };
                let key = signed_key(atom);
                let full_set = full.get(&key).unwrap_or(&empty);
                let atoms: Vec<&GroundAtom> = if original < k {
                    match delta.get(&key) {
                        Some(d) => full_set.iter().filter(|a| !d.contains(*a)).collect(),
                        None => full_set.iter().collect(),
                    }
                } else {
                    full_set.iter().collect()
                };
                if atoms.is_empty() {
                    viable = false;
                    break;
                }
                cand_sets.push((atom, atoms));
            }
            if viable {
                join_vec(&cand_sets, 0, &mut current, &mut results);
            }
            for v in added {
                current.remove(&v);
            }
        }
    }
    retain_builtin_satisfying(rule, &mut results);
    results
}

/// Backtracking join over pre-materialized candidate vectors.
fn join_vec(
    occurrences: &[(&Atom, Vec<&GroundAtom>)],
    idx: usize,
    current: &mut Subst,
    results: &mut Vec<Subst>,
) {
    if idx == occurrences.len() {
        results.push(current.clone());
        return;
    }
    let (atom, cands) = &occurrences[idx];
    for cand in cands {
        if let Some(added) = try_unify(atom, cand, current) {
            join_vec(occurrences, idx + 1, current, results);
            for v in added {
                current.remove(&v);
            }
        }
    }
}

/// Instantiate one rule against the possible sets, with the same
/// naf-dropping and tautology elimination as [`crate::ground::Grounder`].
fn instantiate(rule: &Rule, possible: &PossibleSets) -> Vec<SymRule> {
    rule_matches(rule, possible)
        .into_iter()
        .filter_map(|theta| {
            let heads: Vec<GroundAtom> = rule.head.iter().map(|h| apply(h, &theta)).collect();
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for item in &rule.body {
                match item {
                    BodyItem::Pos(a) => pos.push(apply(a, &theta)),
                    BodyItem::Naf(a) => {
                        let g = apply(a, &theta);
                        if contains(possible, &g) {
                            neg.push(g);
                        }
                    }
                    BodyItem::Builtin(_) => {}
                    BodyItem::Choice(_) => return None, // unfolded in `new`
                }
            }
            if heads.iter().any(|h| pos.contains(h)) {
                return None;
            }
            Some(SymRule { heads, pos, neg })
        })
        .collect()
}

/// Signed predicates from which a positive-dependency path reaches a
/// positive recursive component (including the components themselves).
fn feeds_recursion(rules: &[Rule]) -> BTreeSet<String> {
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let intern = |name: String, names: &mut Vec<String>, index: &mut BTreeMap<String, usize>| {
        *index.entry(name.clone()).or_insert_with(|| {
            names.push(name);
            names.len() - 1
        })
    };
    let mut edges_pairs: Vec<(usize, usize)> = Vec::new();
    for rule in rules {
        let heads: Vec<usize> = rule
            .head
            .iter()
            .map(|a| intern(signed_key(a), &mut names, &mut index))
            .collect();
        for item in &rule.body {
            if let BodyItem::Pos(a) = item {
                let b = intern(signed_key(a), &mut names, &mut index);
                for &h in &heads {
                    edges_pairs.push((b, h));
                }
            }
        }
    }
    let n = names.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for (from, to) in edges_pairs {
        if from == to {
            self_loop[from] = true;
        }
        edges[from].push(to);
    }
    let component = crate::graph::strongly_connected_components(n, &edges);
    let mut members: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in &component {
        *members.entry(c).or_insert(0) += 1;
    }
    let recursive: Vec<bool> = (0..n)
        .map(|v| self_loop[v] || members[&component[v]] > 1)
        .collect();
    // Backward reachability: nodes that can reach a recursive node.
    let mut reaches = recursive.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if reaches[v] {
                continue;
            }
            if edges[v].iter().any(|&w| reaches[w]) {
                reaches[v] = true;
                changed = true;
            }
        }
    }
    (0..n)
        .filter(|&v| reaches[v])
        .map(|v| names[v].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::syntax::{Builtin, BuiltinOp, Term};

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::new(p, args)
    }

    fn ga(p: &str, args: &[&str]) -> GroundAtom {
        GroundAtom::new(p, args)
    }

    /// Canonical rule set of a ground program for order-insensitive
    /// comparison.
    fn canonical(ground: &GroundProgram) -> BTreeSet<Vec<Vec<String>>> {
        ground
            .rules()
            .iter()
            .map(|r| {
                let name = |ids: &[usize]| {
                    let mut v: Vec<String> =
                        ids.iter().map(|&id| ground.atom(id).to_string()).collect();
                    v.sort();
                    v
                };
                vec![name(&r.heads), name(&r.pos), name(&r.neg)]
            })
            .collect()
    }

    fn assert_matches_fresh(state: &IncrementalGround, program: &Program) {
        let fresh = Grounder::new(program).ground().unwrap();
        let patched = state.to_ground();
        assert_eq!(
            canonical(&patched),
            canonical(&fresh),
            "patched grounding must equal a fresh grounding"
        );
    }

    /// The non-recursive program used by most tests.
    fn base_program() -> Program {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_fact(atom("mark", &["b"]));
        p.add_rule(Rule::new(
            vec![atom("hop", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("edge", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("lonely", &["X"])],
            vec![
                BodyItem::Pos(atom("mark", &["X"])),
                BodyItem::Naf(atom("hop", &["X", "X"])),
            ],
        ));
        p
    }

    /// Mirror a delta onto a plain Program for the fresh-grounding oracle.
    fn program_with(base: &Program, ins: &[GroundAtom], del: &[GroundAtom]) -> Program {
        let mut out = Program::new();
        for rule in base.rules() {
            if rule.is_fact() {
                let fact = apply(&rule.head[0], &Subst::new());
                if del.contains(&fact) {
                    continue;
                }
            }
            out.add_rule(rule.clone());
        }
        for a in ins {
            let tokens: Vec<&str> = a.args.iter().map(|s| s.as_ref()).collect();
            let mut fact = Atom::new(a.predicate.clone(), &tokens);
            if a.strong_neg {
                fact = fact.strongly_negated();
            }
            out.add_fact(fact);
        }
        out
    }

    #[test]
    fn initial_grounding_matches_the_grounder() {
        let p = base_program();
        let state = IncrementalGround::new(&p).unwrap();
        assert_matches_fresh(&state, &p);
    }

    #[test]
    fn insertions_patch_to_the_fresh_grounding() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let ins = [ga("edge", &["c", "d"])];
        let stats = state.apply_delta(&ins, &[]);
        assert!(!stats.full_resaturation);
        assert!(stats.reinstantiated_rules > 0);
        assert_matches_fresh(&state, &program_with(&p, &ins, &[]));
        // hop(b, d) is now derivable through the new edge.
        assert!(state.to_ground().atom_id(&ga("hop", &["b", "d"])).is_some());
    }

    #[test]
    fn deletions_patch_to_the_fresh_grounding() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let del = [ga("edge", &["b", "c"])];
        let stats = state.apply_delta(&[], &del);
        assert!(!stats.full_resaturation);
        assert_matches_fresh(&state, &program_with(&p, &[], &del));
        assert!(state.to_ground().atom_id(&ga("hop", &["a", "c"])).is_none());
    }

    #[test]
    fn mixed_deltas_patch_to_the_fresh_grounding() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let ins = [ga("edge", &["c", "a"]), ga("mark", &["a"])];
        let del = [ga("edge", &["a", "b"])];
        state.apply_delta(&ins, &del);
        assert_matches_fresh(
            &state,
            &program_with(&program_with(&p, &[], &del), &ins, &[]),
        );
    }

    #[test]
    fn sequential_patches_compose() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let ins = [ga("edge", &["c", "d"])];
        state.apply_delta(&ins, &[]);
        let del = [ga("edge", &["c", "d"])];
        state.apply_delta(&[], &del);
        assert_matches_fresh(&state, &p);
    }

    #[test]
    fn unaffected_rules_are_reused() {
        let mut p = base_program();
        // A disconnected island whose rules must not be re-instantiated by
        // an edge delta.
        p.add_fact(atom("color", &["x"]));
        p.add_rule(Rule::new(
            vec![atom("colored", &["X"])],
            vec![BodyItem::Pos(atom("color", &["X"]))],
        ));
        let mut state = IncrementalGround::new(&p).unwrap();
        let stats = state.apply_delta(&[ga("edge", &["c", "d"])], &[]);
        assert!(stats.reused_rules > 0);
        assert!(stats.reinstantiated_rules < state.rule_count());
        assert_matches_fresh(&state, &program_with(&p, &[ga("edge", &["c", "d"])], &[]));
    }

    #[test]
    fn deletion_keeps_atoms_with_remaining_support() {
        let mut p = Program::new();
        p.add_fact(atom("p", &["a"]));
        p.add_fact(atom("q", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("r", &["X"])],
            vec![BodyItem::Pos(atom("p", &["X"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("r", &["X"])],
            vec![BodyItem::Pos(atom("q", &["X"]))],
        ));
        let mut state = IncrementalGround::new(&p).unwrap();
        let del = [ga("p", &["a"])];
        state.apply_delta(&[], &del);
        // r(a) keeps its q-derived support and stays possible.
        assert!(state.to_ground().atom_id(&ga("r", &["a"])).is_some());
        assert_matches_fresh(&state, &program_with(&p, &[], &del));
    }

    #[test]
    fn recursive_deletions_fall_back_to_full_resaturation() {
        let mut p = Program::new();
        p.add_fact(atom("edge", &["a", "b"]));
        p.add_fact(atom("edge", &["b", "a"]));
        p.add_fact(atom("edge", &["b", "c"]));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Y"])],
            vec![BodyItem::Pos(atom("edge", &["X", "Y"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("reach", &["X", "Z"])],
            vec![
                BodyItem::Pos(atom("reach", &["X", "Y"])),
                BodyItem::Pos(atom("edge", &["Y", "Z"])),
            ],
        ));
        let mut state = IncrementalGround::new(&p).unwrap();
        let del = [ga("edge", &["b", "a"])];
        let stats = state.apply_delta(&[], &del);
        assert!(
            stats.full_resaturation,
            "cycle-feeding deletion must rescue"
        );
        assert_matches_fresh(&state, &program_with(&p, &[], &del));
        // Insertions on the same recursive program stay semi-naive.
        let ins = [ga("edge", &["c", "d"])];
        let stats = state.apply_delta(&ins, &[]);
        assert!(!stats.full_resaturation);
        assert_matches_fresh(
            &state,
            &program_with(&program_with(&p, &[], &del), &ins, &[]),
        );
    }

    #[test]
    fn naf_literals_flip_with_the_possible_set() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        // Inserting edge(b, b) makes hop(b, b) possible, so the `lonely`
        // rule must re-instantiate with the previously-dropped naf literal.
        let ins = [ga("edge", &["b", "b"])];
        state.apply_delta(&ins, &[]);
        let expected = program_with(&p, &ins, &[]);
        assert_matches_fresh(&state, &expected);
        let ground = state.to_ground();
        let hop_bb = ground.atom_id(&ga("hop", &["b", "b"])).unwrap();
        assert!(
            ground.rules().iter().any(|r| r.neg.contains(&hop_bb)),
            "lonely(b) must now carry `not hop(b, b)`"
        );
    }

    #[test]
    fn builtins_filter_delta_matches() {
        let mut p = Program::new();
        p.add_fact(atom("num", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("pair", &["X", "Y"])],
            vec![
                BodyItem::Pos(atom("num", &["X"])),
                BodyItem::Pos(atom("num", &["Y"])),
                BodyItem::Builtin(Builtin::new(BuiltinOp::Neq, Term::var("X"), Term::var("Y"))),
            ],
        ));
        let mut state = IncrementalGround::new(&p).unwrap();
        let ins = [ga("num", &["b"])];
        state.apply_delta(&ins, &[]);
        assert_matches_fresh(&state, &program_with(&p, &ins, &[]));
    }

    #[test]
    fn chained_derivations_are_counted_exactly_once() {
        // Regression: with the possible sets mutated mid-round, the sole
        // derivation of q(a) — through d(a) AND the same-round-derived
        // p(a) — was counted twice (once pinned on d, once pinned on p the
        // next round), so deleting d(a) left q(a) alive on ghost support
        // and `s(a) :- t(a), q(a)` survived in the patched grounding.
        let mut p = Program::new();
        p.add_fact(atom("t", &["a"]));
        p.add_rule(Rule::new(
            vec![atom("p", &["X"])],
            vec![BodyItem::Pos(atom("d", &["X"]))],
        ));
        p.add_rule(Rule::new(
            vec![atom("q", &["X"])],
            vec![
                BodyItem::Pos(atom("d", &["X"])),
                BodyItem::Pos(atom("p", &["X"])),
            ],
        ));
        p.add_rule(Rule::new(
            vec![atom("s", &["X"])],
            vec![
                BodyItem::Pos(atom("t", &["X"])),
                BodyItem::Pos(atom("q", &["X"])),
            ],
        ));
        let mut state = IncrementalGround::new(&p).unwrap();
        let d = [ga("d", &["a"])];
        state.apply_delta(&d, &[]);
        assert_matches_fresh(&state, &program_with(&p, &d, &[]));
        state.apply_delta(&[], &d);
        // Back to the original program: no ghost q(a)/s(a) rules.
        assert_matches_fresh(&state, &p);
        assert!(state.to_ground().atom_id(&ga("q", &["a"])).is_none());
    }

    #[test]
    fn noop_deltas_change_nothing() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let before = state.rule_count();
        // Insert an existing fact, delete an absent one.
        let stats = state.apply_delta(&[ga("edge", &["a", "b"])], &[ga("edge", &["z", "z"])]);
        assert_eq!(stats.fact_changes, 0);
        assert_eq!(stats.reinstantiated_rules, 0);
        assert_eq!(state.rule_count(), before);
        assert_matches_fresh(&state, &p);
    }

    #[test]
    fn touches_reflects_the_slice_predicates() {
        let p = base_program();
        let state = IncrementalGround::new(&p).unwrap();
        assert!(state.touches("edge"));
        assert!(state.touches("hop"));
        assert!(!state.touches("unrelated"));
    }

    #[test]
    fn approx_bytes_grows_with_the_state() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let before = state.approx_bytes();
        assert!(before > 0);
        state.apply_delta(&[ga("edge", &["c", "d"]), ga("edge", &["d", "e"])], &[]);
        assert!(state.approx_bytes() > before);
    }

    #[test]
    fn exact_bytes_grows_with_the_state() {
        let p = base_program();
        let mut state = IncrementalGround::new(&p).unwrap();
        let before = state.exact_bytes();
        assert!(before > 0);
        state.apply_delta(&[ga("edge", &["c", "d"]), ga("edge", &["d", "e"])], &[]);
        assert!(state.exact_bytes() > before);
    }

    #[test]
    fn exact_bytes_charges_shared_payloads_once() {
        let p = base_program();
        let state = IncrementalGround::new(&p).unwrap();
        // Upper bound with every argument's payload charged per reference:
        // what the accounting would report if nothing were shared. The
        // saturated sets and facts carry copies of the same constants, so
        // the exact figure must come in strictly below it.
        let mut references = 0usize;
        let mut flat = 0usize;
        let mut charge = |a: &GroundAtom| {
            flat += 24 + a.predicate.len() + 8 * a.args.len();
            for arg in &a.args {
                references += 1;
                flat += arg.len();
            }
        };
        for set in state.possible.values() {
            set.iter().for_each(&mut charge);
        }
        state.facts.iter().for_each(&mut charge);
        for group in &state.groups {
            for r in group {
                flat += 48 + 8 * (r.heads.len() + r.pos.len() + r.neg.len());
            }
        }
        let flat = flat + state.support.len() * 48;
        assert!(references > 1);
        assert!(state.exact_bytes() <= flat);
    }
}

//! The [`Session`] / [`Tx`] surface: versioned peers, atomic update commits
//! validated against local ICs, an update log, and snapshot replay.
//!
//! See the crate docs for how [`Version`] and [`relalg::Delta`] map back to
//! Definition 1 of the paper.

use crate::error::SessionError;
use crate::Result;
use constraints::ConstraintChecker;
use pdes_core::engine::{CacheMetrics, QueryEngine};
use pdes_core::pca::vars;
use pdes_core::system::{P2PSystem, PeerId};
use pdes_core::{Answers, Strategy};
use pdes_exec::Executor;
use relalg::database::GroundAtom;
use relalg::query::Formula;
use relalg::{Delta, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A peer's version: the number of committed updates that touched it.
/// Version 0 is the construction-time instance; each commit containing an
/// effective (non-empty) delta for the peer increments it by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The construction-time version.
    pub const ZERO: Version = Version(0);

    /// The raw counter.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One peer's worth of change: a [`Delta`] targeted at a peer. The unit the
/// workload update-stream generator produces and [`Session::apply`]
/// consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// The peer whose instance changes.
    pub peer: PeerId,
    /// Insertions and deletions of ground atoms over the peer's relations.
    pub delta: Delta,
}

impl Update {
    /// Construct an update.
    pub fn new(peer: PeerId, delta: Delta) -> Self {
        Update { peer, delta }
    }
}

/// A committed transaction in the update log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTx {
    /// 1-based commit sequence number.
    pub seq: u64,
    /// The effective per-peer deltas (normalized: every insertion was
    /// absent before the commit, every deletion present).
    pub changes: BTreeMap<PeerId, Delta>,
    /// The versions the touched peers reached with this commit.
    pub versions: BTreeMap<PeerId, Version>,
}

/// What a successful [`Tx::commit`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "inspect the receipt to learn the commit's sequence number and reach"]
pub struct CommitReceipt {
    /// The commit's sequence number (unchanged if the commit was a no-op).
    pub seq: u64,
    /// The peers whose instances actually changed.
    pub touched: BTreeSet<PeerId>,
    /// The relevant-peer closure of the touched peers
    /// ([`P2PSystem::affected_by`]): every peer whose queries may observe
    /// this commit and whose memoized artifacts were eligible for
    /// invalidation.
    pub affected: BTreeSet<PeerId>,
    /// The touched peers' new versions.
    pub versions: BTreeMap<PeerId, Version>,
    /// Memoized engine artifacts invalidated by this commit.
    pub invalidated: u64,
}

/// A live, versioned P2P data exchange system: a [`QueryEngine`] whose
/// system accepts update transactions, with per-peer versions, an update
/// log, and incremental invalidation of the engine's memoized artifacts.
pub struct Session {
    engine: QueryEngine,
    /// The construction-time system, kept for [`Session::snapshot_at`].
    base: P2PSystem,
    /// Live mirror of the engine's store: the base snapshot with every
    /// committed delta applied. Serves [`Session::system`] and commit
    /// validation without a store round-trip per read.
    current: P2PSystem,
    log: Vec<CommittedTx>,
}

impl Session {
    /// A session over `system` with a default ([`Strategy::Auto`]) engine.
    pub fn new(system: P2PSystem) -> Self {
        Session::with_engine(QueryEngine::new(system))
    }

    /// A session over `system` answering with a fixed strategy.
    pub fn with_strategy(system: P2PSystem, strategy: Strategy) -> Self {
        Session::with_engine(QueryEngine::builder(system).strategy(strategy).build())
    }

    /// A session over a pre-configured engine (custom solver config,
    /// solution options or strategy). The engine's current system becomes
    /// the version-0 snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the engine's store cannot be snapshotted (a transport
    /// failure on a sharded store); use [`Session::try_with_engine`] to
    /// handle that case. Over the default in-process store this never
    /// panics.
    pub fn with_engine(engine: QueryEngine) -> Self {
        Session::try_with_engine(engine)
            .unwrap_or_else(|e| panic!("session construction failed: {e}"))
    }

    /// [`Session::with_engine`], surfacing store snapshot failures instead
    /// of panicking.
    pub fn try_with_engine(engine: QueryEngine) -> Result<Self> {
        let base = engine.snapshot_system()?;
        Ok(Session {
            engine,
            current: base.clone(),
            base,
            log: Vec::new(),
        })
    }

    /// Begin a transaction. Updates staged on the [`Tx`] are not visible to
    /// queries (or anyone else) until [`Tx::commit`].
    pub fn begin(&mut self) -> Tx<'_> {
        Tx {
            session: self,
            staged: BTreeMap::new(),
        }
    }

    /// Stage and commit a batch of [`Update`]s as one transaction.
    pub fn apply(&mut self, updates: &[Update]) -> Result<CommitReceipt> {
        let mut tx = self.begin();
        for update in updates {
            tx.stage_delta(&update.peer, update.delta.clone())?;
        }
        tx.commit()
    }

    /// The engine answering over the current snapshot.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The current snapshot (the live system): the session's own mirror of
    /// the engine's store, maintained delta-by-delta at each commit.
    pub fn system(&self) -> &P2PSystem {
        &self.current
    }

    /// Answer a query against the current snapshot (engine's strategy).
    pub fn answer(&self, peer: &PeerId, query: &Formula, free_vars: &[String]) -> Result<Answers> {
        Ok(self.engine.answer(peer, query, free_vars)?)
    }

    /// Answer with an explicit strategy, sharing the engine's cache.
    pub fn answer_with(
        &self,
        strategy: Strategy,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        Ok(self.engine.answer_with(strategy, peer, query, free_vars)?)
    }

    /// Convenience wrapper: answer variables by name.
    pub fn answer_named(
        &self,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[&str],
    ) -> Result<Answers> {
        self.answer(peer, query, &vars(free_vars))
    }

    /// A peer's current version.
    pub fn version_of(&self, peer: &PeerId) -> Version {
        Version(self.engine.version_of(peer))
    }

    /// Every peer's current version.
    pub fn versions(&self) -> BTreeMap<PeerId, Version> {
        self.engine
            .versions()
            .into_iter()
            .map(|(p, v)| (p, Version(v)))
            .collect()
    }

    /// The latest commit sequence number (0 before any commit).
    pub fn current_seq(&self) -> u64 {
        self.log.len() as u64
    }

    /// The update log, oldest first.
    pub fn log(&self) -> &[CommittedTx] {
        &self.log
    }

    /// Lifetime cache counters of the underlying engine.
    pub fn metrics(&self) -> CacheMetrics {
        self.engine.metrics()
    }

    /// Reconstruct the system as of commit `seq` by replaying the update
    /// log over the version-0 snapshot (`seq` 0 is the snapshot itself;
    /// `seq` equal to [`Session::current_seq`] reproduces the live system).
    pub fn snapshot_at(&self, seq: u64) -> Result<P2PSystem> {
        let latest = self.current_seq();
        if seq > latest {
            return Err(SessionError::UnknownSeq { seq, latest });
        }
        let mut system = self.base.clone();
        for tx in &self.log[..seq as usize] {
            for (peer, delta) in &tx.changes {
                system.apply_delta(peer, delta)?;
            }
        }
        Ok(system)
    }

    /// Validate one staged peer delta against the peer's local ICs, over
    /// the post-commit instance it would produce.
    ///
    /// Only the ICs *touched by the delta* — those mentioning a relation the
    /// delta inserts into or deletes from — are re-evaluated: an IC over
    /// untouched relations reads exactly the same tuples before and after
    /// the commit, so its satisfaction cannot change. This is the
    /// relational mirror of the engine's relevance-driven grounding: commit
    /// validation cost scales with the delta, not with the peer's whole
    /// constraint set.
    fn validate_local_ics(&self, peer: &PeerId, delta: &Delta) -> Result<()> {
        let peer_data = self.system().peer(peer)?;
        let touched: BTreeSet<String> = delta
            .insertions
            .iter()
            .chain(delta.deletions.iter())
            .map(|atom| atom.relation.clone())
            .collect();
        let relevant: Vec<_> = peer_data
            .local_ics
            .iter()
            .filter(|ic| ic.relations().iter().any(|rel| touched.contains(rel)))
            .collect();
        if relevant.is_empty() {
            return Ok(());
        }
        let candidate = delta.apply(&peer_data.instance)?;
        let checker = ConstraintChecker::new(&candidate);
        for ic in relevant {
            let violations = checker.violations(ic)?;
            if !violations.is_empty() {
                return Err(SessionError::IcViolation {
                    peer: peer.clone(),
                    constraint: ic.name.clone(),
                    violations: violations.len(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("peers", &self.system().peer_count())
            .field("seq", &self.current_seq())
            .field("versions", &self.versions())
            .finish()
    }
}

/// An open transaction: staged insertions/deletions per peer. Dropping a
/// `Tx` without committing discards the staged changes.
#[must_use = "a transaction does nothing until `commit` is called"]
pub struct Tx<'s> {
    session: &'s mut Session,
    staged: BTreeMap<PeerId, Delta>,
}

impl Tx<'_> {
    /// Stage the insertion of one ground atom into a peer's relation. A
    /// staged deletion of the same atom is cancelled instead.
    pub fn insert(&mut self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<&mut Self> {
        let atom = self.checked_atom(peer, relation, tuple)?;
        let delta = self.staged.entry(peer.clone()).or_default();
        if !delta.deletions.remove(&atom) {
            delta.insertions.insert(atom);
        }
        Ok(self)
    }

    /// Stage the deletion of one ground atom from a peer's relation. A
    /// staged insertion of the same atom is cancelled instead.
    ///
    /// Takes the tuple by reference — deletion identifies an existing tuple
    /// rather than contributing a new one, the same signature as
    /// [`pdes_core::PeerStore::delete`] and `P2PSystem::delete` (the three
    /// historically disagreed).
    pub fn delete(&mut self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<&mut Self> {
        let atom = self.checked_atom(peer, relation, tuple.clone())?;
        let delta = self.staged.entry(peer.clone()).or_default();
        if !delta.insertions.remove(&atom) {
            delta.deletions.insert(atom);
        }
        Ok(self)
    }

    /// Stage a whole delta against a peer (validated atom by atom, with the
    /// same cancellation behaviour as [`Tx::insert`] / [`Tx::delete`]).
    pub fn stage_delta(&mut self, peer: &PeerId, delta: Delta) -> Result<&mut Self> {
        for atom in delta.insertions {
            self.insert(peer, &atom.relation.clone(), atom.tuple)?;
        }
        for atom in delta.deletions {
            self.delete(peer, &atom.relation.clone(), &atom.tuple)?;
        }
        Ok(self)
    }

    /// The peers with staged changes.
    pub fn touched(&self) -> BTreeSet<PeerId> {
        self.staged
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.values().all(Delta::is_empty)
    }

    /// Discard the staged changes (same as dropping the transaction, but
    /// explicit at call sites).
    pub fn rollback(self) {}

    /// Atomically validate and apply the staged changes.
    ///
    /// 1. Each staged delta is *normalized* against the peer's current
    ///    instance: already-present insertions and already-absent deletions
    ///    are dropped, so the logged delta is exact (`Δ(before, after)`
    ///    restricted to the peer — Definition 1).
    /// 2. Every touched peer's local ICs are checked against the instance
    ///    the commit would produce; the first violation aborts the whole
    ///    commit with [`SessionError::IcViolation`] and nothing is applied.
    /// 3. The deltas are applied through
    ///    [`QueryEngine::commit_delta`], which bumps each touched peer's
    ///    version and invalidates exactly the memoized artifacts whose
    ///    relevant-peer closure intersects the touched peers.
    ///
    /// A commit whose staged changes normalize to nothing is a no-op: the
    /// log and versions are untouched and the receipt reports no touched
    /// peers.
    pub fn commit(self) -> Result<CommitReceipt> {
        let session = self.session;
        // 1. Normalize.
        let mut effective: BTreeMap<PeerId, Delta> = BTreeMap::new();
        for (peer, staged) in &self.staged {
            let instance = &session.system().peer(peer)?.instance;
            let insertions: BTreeSet<GroundAtom> = staged
                .insertions
                .iter()
                .filter(|a| !instance.holds(&a.relation, &a.tuple))
                .cloned()
                .collect();
            let deletions: BTreeSet<GroundAtom> = staged
                .deletions
                .iter()
                .filter(|a| instance.holds(&a.relation, &a.tuple))
                .cloned()
                .collect();
            if !insertions.is_empty() || !deletions.is_empty() {
                effective.insert(
                    peer.clone(),
                    Delta {
                        insertions,
                        deletions,
                    },
                );
            }
        }
        if effective.is_empty() {
            return Ok(CommitReceipt {
                seq: session.current_seq(),
                touched: BTreeSet::new(),
                affected: BTreeSet::new(),
                versions: BTreeMap::new(),
                invalidated: 0,
            });
        }
        // 2. Validate all peers before applying anything. Each touched
        // peer's check reads only that peer's instance and ICs, so the
        // checks fan out across the engine's worker pool; `try_map` reports
        // the lowest-indexed (= first in peer order) violation, matching
        // the sequential loop's error exactly.
        let staged_peers: Vec<(&PeerId, &Delta)> = effective.iter().collect();
        let recorder = std::sync::Arc::clone(session.engine.recorder());
        let validate_span = pdes_obs::Span::enter(recorder.as_ref(), "commit.validate");
        Executor::new(session.engine.exec_config()).try_map(&staged_peers, |(peer, delta)| {
            session.validate_local_ics(peer, delta)
        })?;
        validate_span.finish();
        // 3. Apply.
        let touched: BTreeSet<PeerId> = effective.keys().cloned().collect();
        let affected = session.system().affected_by(&touched);
        let before = session.engine.metrics();
        let mut versions = BTreeMap::new();
        for (peer, delta) in &effective {
            let version = session.engine.commit_delta(peer, delta)?;
            // Keep the session's live mirror in lock-step with the store.
            session.current.apply_delta(peer, delta)?;
            versions.insert(peer.clone(), Version(version));
        }
        let invalidated = session.engine.metrics().invalidated - before.invalidated;
        let seq = session.current_seq() + 1;
        session.log.push(CommittedTx {
            seq,
            changes: effective,
            versions: versions.clone(),
        });
        Ok(CommitReceipt {
            seq,
            touched,
            affected,
            versions,
            invalidated,
        })
    }

    /// Validate peer, relation ownership and arity; build the ground atom.
    fn checked_atom(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<GroundAtom> {
        let peer_data = self.session.system().peer(peer)?;
        let schema = peer_data.schema.relation(relation).ok_or_else(|| {
            pdes_core::CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            }
        })?;
        if schema.arity() != tuple.arity() {
            return Err(relalg::RelalgError::ArityMismatch {
                relation: relation.to_string(),
                expected: schema.arity(),
                found: tuple.arity(),
            }
            .into());
        }
        Ok(GroundAtom::new(relation, tuple))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::system::example1_system;

    fn r1_query() -> (Formula, Vec<String>) {
        (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"]))
    }

    #[test]
    fn commit_applies_changes_and_bumps_versions() {
        let mut session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut tx = session.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        tx.delete(&p2, "R2", &Tuple::strs(["c", "d"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.seq, 1);
        assert_eq!(receipt.touched, BTreeSet::from([p2.clone()]));
        assert_eq!(receipt.versions[&p2], Version(1));
        assert_eq!(session.version_of(&p2), Version(1));
        assert_eq!(session.version_of(&PeerId::new("P1")), Version::ZERO);
        let inst = &session.system().peer(&p2).unwrap().instance;
        assert!(inst.holds("R2", &Tuple::strs(["x", "y"])));
        assert!(!inst.holds("R2", &Tuple::strs(["c", "d"])));
        assert_eq!(session.current_seq(), 1);
        assert_eq!(session.log().len(), 1);
    }

    #[test]
    fn staging_cancels_and_normalizes() {
        let mut session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut tx = session.begin();
        // Insert-then-delete cancels out.
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        tx.delete(&p2, "R2", &Tuple::strs(["x", "y"])).unwrap();
        // Inserting an already-present atom normalizes away at commit.
        tx.insert(&p2, "R2", Tuple::strs(["c", "d"])).unwrap();
        assert!(!tx.is_empty());
        let receipt = tx.commit().unwrap();
        assert!(receipt.touched.is_empty());
        assert_eq!(receipt.seq, 0);
        assert_eq!(session.current_seq(), 0);
        assert_eq!(session.version_of(&p2), Version::ZERO);
    }

    #[test]
    fn staging_validates_ownership_and_arity() {
        let mut session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut tx = session.begin();
        // R1 belongs to P1.
        assert!(tx.insert(&p2, "R1", Tuple::strs(["x", "y"])).is_err());
        // Wrong arity.
        assert!(tx.insert(&p2, "R2", Tuple::strs(["x"])).is_err());
        // Unknown peer.
        assert!(tx
            .insert(&PeerId::new("Z"), "R2", Tuple::strs(["x", "y"]))
            .is_err());
        tx.rollback();
    }

    #[test]
    fn ic_violation_rejects_the_whole_commit() {
        let mut system = example1_system();
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        system
            .add_local_ic(
                &p1,
                constraints::builders::key_denial("fd_r1", "R1").unwrap(),
            )
            .unwrap();
        let mut session = Session::new(system);
        let mut tx = session.begin();
        // R1 already holds (a, b); (a, z) violates the key denial.
        tx.insert(&p1, "R1", Tuple::strs(["a", "z"])).unwrap();
        tx.insert(&p2, "R2", Tuple::strs(["new", "row"])).unwrap();
        let err = tx.commit().unwrap_err();
        match err {
            SessionError::IcViolation {
                peer, constraint, ..
            } => {
                assert_eq!(peer, p1);
                assert_eq!(constraint, "fd_r1");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Atomicity: neither peer changed, no versions bumped, no log entry.
        assert!(!session
            .system()
            .peer(&p2)
            .unwrap()
            .instance
            .holds("R2", &Tuple::strs(["new", "row"])));
        assert_eq!(session.version_of(&p1), Version::ZERO);
        assert_eq!(session.version_of(&p2), Version::ZERO);
        assert_eq!(session.current_seq(), 0);
    }

    #[test]
    fn untouched_ics_are_not_revalidated() {
        use relalg::RelationSchema;
        // P owns two relations; its key IC on `RK` is *already violated* in
        // the base instance. A commit touching only `RO` must not re-check
        // (and spuriously reject on) the untouched IC — validation scales
        // with the delta, not the peer's whole constraint set.
        let mut system = P2PSystem::new();
        system.add_peer("P").unwrap();
        let p = PeerId::new("P");
        system
            .add_relation(&p, RelationSchema::new("RK", &["k", "v"]))
            .unwrap();
        system
            .add_relation(&p, RelationSchema::new("RO", &["x"]))
            .unwrap();
        system.insert(&p, "RK", Tuple::strs(["a", "1"])).unwrap();
        system.insert(&p, "RK", Tuple::strs(["a", "2"])).unwrap();
        system
            .add_local_ic(
                &p,
                constraints::builders::key_denial("fd_rk", "RK").unwrap(),
            )
            .unwrap();
        let mut session = Session::new(system);

        // Touching RO commits fine despite the stale RK violation …
        let mut tx = session.begin();
        tx.insert(&p, "RO", Tuple::strs(["new"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.versions[&p], Version(1));

        // … while touching RK still trips the (now relevant) IC.
        let mut tx = session.begin();
        tx.insert(&p, "RK", Tuple::strs(["b", "1"])).unwrap();
        assert!(matches!(
            tx.commit(),
            Err(SessionError::IcViolation { constraint, .. }) if constraint == "fd_rk"
        ));
    }

    #[test]
    fn consistent_updates_pass_local_ics() {
        let mut system = example1_system();
        let p1 = PeerId::new("P1");
        system
            .add_local_ic(
                &p1,
                constraints::builders::key_denial("fd_r1", "R1").unwrap(),
            )
            .unwrap();
        let mut session = Session::new(system);
        let mut tx = session.begin();
        tx.insert(&p1, "R1", Tuple::strs(["fresh", "value"]))
            .unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.versions[&p1], Version(1));
    }

    #[test]
    fn snapshot_at_replays_the_log() {
        let mut session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let p3 = PeerId::new("P3");
        let base = session.snapshot_at(0).unwrap();
        assert_eq!(&base, &example1_system());

        let mut tx = session.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        let _ = tx.commit().unwrap();
        let mut tx = session.begin();
        tx.delete(&p3, "R3", &Tuple::strs(["a", "f"])).unwrap();
        let _ = tx.commit().unwrap();

        let at1 = session.snapshot_at(1).unwrap();
        assert!(at1
            .peer(&p2)
            .unwrap()
            .instance
            .holds("R2", &Tuple::strs(["x", "y"])));
        assert!(at1
            .peer(&p3)
            .unwrap()
            .instance
            .holds("R3", &Tuple::strs(["a", "f"])));
        let at2 = session.snapshot_at(2).unwrap();
        assert_eq!(&at2, session.system());
        assert!(matches!(
            session.snapshot_at(3),
            Err(SessionError::UnknownSeq { seq: 3, latest: 2 })
        ));
    }

    #[test]
    fn queries_track_commits_and_keep_unrelated_peers_warm() {
        let mut session = Session::with_strategy(example1_system(), Strategy::Asp);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let p3 = PeerId::new("P3");
        let (query, fv) = r1_query();
        let q3 = Formula::atom("R3", vec!["X", "Y"]);

        let before = session.answer(&p1, &query, &fv).unwrap();
        let _ = session.answer(&p3, &q3, &fv).unwrap();

        let mut tx = session.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert!(receipt.invalidated >= 1);
        // The receipt names the closure: P1 (imports from P2) and P2 itself,
        // but not P3.
        assert_eq!(receipt.affected, BTreeSet::from([p1.clone(), p2.clone()]));

        // P3 is outside P2's relevant-peer closure: still warm.
        let warm = session.answer(&p3, &q3, &fv).unwrap();
        assert!(warm.stats.cache_hit);
        // P1 imports from P2: recomputed, sees the new tuple.
        let after = session.answer(&p1, &query, &fv).unwrap();
        assert!(!after.stats.cache_hit);
        assert_eq!(after.len(), before.len() + 1);
    }

    #[test]
    fn parallel_ic_validation_matches_sequential() {
        use pdes_core::engine::QueryEngine;
        use pdes_exec::ExecConfig;
        // Two peers with key ICs; one staged delta violates P1's. Both the
        // sequential and the 4-worker engine must reject the commit with
        // the same (first-in-peer-order) violation, atomically.
        let build = |workers: usize| {
            let mut system = example1_system();
            let p1 = PeerId::new("P1");
            let p2 = PeerId::new("P2");
            system
                .add_local_ic(
                    &p1,
                    constraints::builders::key_denial("fd_r1", "R1").unwrap(),
                )
                .unwrap();
            system
                .add_local_ic(
                    &p2,
                    constraints::builders::key_denial("fd_r2", "R2").unwrap(),
                )
                .unwrap();
            Session::with_engine(
                QueryEngine::builder(system)
                    .exec(ExecConfig::with_workers(workers))
                    .build(),
            )
        };
        let mut outcomes = Vec::new();
        for workers in [1, 4] {
            let mut session = build(workers);
            let mut tx = session.begin();
            // Both staged deltas violate their peer's key IC.
            tx.insert(&PeerId::new("P1"), "R1", Tuple::strs(["a", "zzz"]))
                .unwrap();
            tx.insert(&PeerId::new("P2"), "R2", Tuple::strs(["c", "zzz"]))
                .unwrap();
            let err = tx.commit().unwrap_err();
            match err {
                SessionError::IcViolation {
                    peer, constraint, ..
                } => outcomes.push((peer, constraint)),
                other => panic!("unexpected error {other:?}"),
            }
            assert_eq!(session.current_seq(), 0, "commit must stay atomic");
        }
        assert_eq!(outcomes[0], outcomes[1], "same violation on both paths");
        assert_eq!(outcomes[0].0, PeerId::new("P1"));

        // And a valid multi-peer commit passes under a parallel pool.
        let mut session = build(4);
        let mut tx = session.begin();
        tx.insert(&PeerId::new("P1"), "R1", Tuple::strs(["new1", "v"]))
            .unwrap();
        tx.insert(&PeerId::new("P2"), "R2", Tuple::strs(["new2", "v"]))
            .unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.touched.len(), 2);
    }

    #[test]
    fn apply_commits_update_batches() {
        use relalg::database::GroundAtom;
        let mut session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let updates = vec![Update::new(
            p2.clone(),
            Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["u", "v"]))], []),
        )];
        let receipt = session.apply(&updates).unwrap();
        assert_eq!(receipt.touched, BTreeSet::from([p2.clone()]));
        assert_eq!(session.version_of(&p2), Version(1));
    }

    #[test]
    fn version_displays_compactly() {
        assert_eq!(Version(3).to_string(), "v3");
        assert_eq!(Version::ZERO.get(), 0);
    }
}

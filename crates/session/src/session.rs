//! The [`Session`] / [`ReadHandle`] / [`Writer`] surface: versioned peers,
//! atomic update commits validated against local ICs, an update log, and
//! snapshot replay over MVCC epochs.
//!
//! Reads take `&self` and answer against pinned store epochs, so any number
//! of threads can query through cloned [`ReadHandle`]s while the single
//! [`Writer`] commits. See the crate docs for how [`Version`] and
//! [`relalg::Delta`] map back to Definition 1 of the paper.

use crate::error::SessionError;
use crate::Result;
use constraints::ConstraintChecker;
use pdes_core::engine::{CacheMetrics, QueryEngine};
use pdes_core::pca::vars;
use pdes_core::store::Snapshot;
use pdes_core::system::{P2PSystem, PeerId};
use pdes_core::{Answers, MvccStats, Query, Strategy, VersionMap};
use pdes_exec::Executor;
use relalg::database::GroundAtom;
use relalg::query::Formula;
use relalg::{Delta, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A peer's version: the number of committed updates that touched it.
/// Version 0 is the construction-time instance; each commit containing an
/// effective (non-empty) delta for the peer increments it by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The construction-time version.
    pub const ZERO: Version = Version(0);

    /// The raw counter.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One peer's worth of change: a [`Delta`] targeted at a peer. The unit the
/// workload update-stream generator produces and [`Writer::apply`]
/// consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// The peer whose instance changes.
    pub peer: PeerId,
    /// Insertions and deletions of ground atoms over the peer's relations.
    pub delta: Delta,
}

impl Update {
    /// Construct an update.
    pub fn new(peer: PeerId, delta: Delta) -> Self {
        Update { peer, delta }
    }
}

/// A committed transaction in the update log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTx {
    /// 1-based commit sequence number.
    pub seq: u64,
    /// The effective per-peer deltas (normalized: every insertion was
    /// absent before the commit, every deletion present).
    pub changes: BTreeMap<PeerId, Delta>,
    /// The versions the touched peers reached with this commit.
    pub versions: BTreeMap<PeerId, Version>,
}

/// What a successful [`Tx::commit`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "inspect the receipt to learn the commit's sequence number and reach"]
pub struct CommitReceipt {
    /// The commit's sequence number (unchanged if the commit was a no-op).
    pub seq: u64,
    /// The peers whose instances actually changed.
    pub touched: BTreeSet<PeerId>,
    /// The relevant-peer closure of the touched peers
    /// ([`P2PSystem::affected_by`]): every peer whose queries may observe
    /// this commit and whose memoized artifacts were eligible for
    /// invalidation.
    pub affected: BTreeSet<PeerId>,
    /// The touched peers' new versions.
    pub versions: BTreeMap<PeerId, Version>,
    /// Memoized engine artifacts invalidated by this commit.
    pub invalidated: u64,
}

/// The shared state behind every [`Session`], [`ReadHandle`] and
/// [`Writer`]: the engine, the version-0 snapshot, the update log, and the
/// writer-claim flag.
struct SessionCore {
    engine: QueryEngine,
    /// The construction-time system, kept for [`Session::snapshot_at`]
    /// replay and for topology-level staging checks (schemas never change).
    base: P2PSystem,
    log: Mutex<Vec<CommittedTx>>,
    writer_claimed: AtomicBool,
}

impl SessionCore {
    fn query(&self, query: &Query) -> Result<Answers> {
        Ok(self
            .engine
            .answer(&query.peer, &query.query, &query.free_vars)?)
    }

    fn query_with(&self, strategy: Strategy, query: &Query) -> Result<Answers> {
        Ok(self
            .engine
            .answer_with(strategy, &query.peer, &query.query, &query.free_vars)?)
    }

    fn pin(&self) -> Result<Snapshot> {
        Ok(self.engine.pin()?)
    }

    fn current_system(&self) -> Result<P2PSystem> {
        Ok(self.engine.snapshot_system()?)
    }

    fn version_of(&self, peer: &PeerId) -> Version {
        Version(self.engine.version_of(peer))
    }

    fn versions(&self) -> BTreeMap<PeerId, Version> {
        self.engine
            .versions()
            .into_iter()
            .map(|(p, v)| (p, Version(v)))
            .collect()
    }

    fn current_seq(&self) -> u64 {
        self.lock_log().len() as u64
    }

    fn log(&self) -> Vec<CommittedTx> {
        self.lock_log().clone()
    }

    fn lock_log(&self) -> std::sync::MutexGuard<'_, Vec<CommittedTx>> {
        self.log.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn metrics(&self) -> CacheMetrics {
        self.engine.metrics()
    }

    fn mvcc_stats(&self) -> MvccStats {
        self.engine.mvcc_stats()
    }

    /// Replay the log prefix `..seq` over the version-0 snapshot and wrap
    /// the result in a [`Snapshot`] whose epoch is the commit sequence
    /// number.
    fn snapshot_at(&self, seq: u64) -> Result<Snapshot> {
        let prefix: Vec<CommittedTx> = {
            let log = self.lock_log();
            let latest = log.len() as u64;
            if seq > latest {
                return Err(SessionError::UnknownSeq { seq, latest });
            }
            log[..seq as usize].to_vec()
        };
        let mut system = self.base.clone();
        let mut versions: VersionMap = BTreeMap::new();
        for tx in &prefix {
            for (peer, delta) in &tx.changes {
                system.apply_delta(peer, delta)?;
            }
            for (peer, version) in &tx.versions {
                versions.insert(peer.clone(), version.get());
            }
        }
        Ok(Snapshot::from_system(&system, versions, seq))
    }
}

/// Validate one staged peer delta against the peer's local ICs, over the
/// post-commit instance it would produce — reading the pinned commit-time
/// snapshot, never the live store.
///
/// Only the ICs *touched by the delta* — those mentioning a relation the
/// delta inserts into or deletes from — are re-evaluated: an IC over
/// untouched relations reads exactly the same tuples before and after the
/// commit, so its satisfaction cannot change. This is the relational mirror
/// of the engine's relevance-driven grounding: commit validation cost
/// scales with the delta, not with the peer's whole constraint set.
fn validate_local_ics(snapshot: &Snapshot, peer: &PeerId, delta: &Delta) -> Result<()> {
    let local_ics = &snapshot.topology().peer(peer)?.local_ics;
    let touched: BTreeSet<String> = delta
        .insertions
        .iter()
        .chain(delta.deletions.iter())
        .map(|atom| atom.relation.clone())
        .collect();
    let relevant: Vec<_> = local_ics
        .iter()
        .filter(|ic| ic.relations().iter().any(|rel| touched.contains(rel)))
        .collect();
    if relevant.is_empty() {
        return Ok(());
    }
    let candidate = delta.apply(&snapshot.instance_of(peer)?)?;
    let checker = ConstraintChecker::new(&candidate);
    for ic in relevant {
        let violations = checker.violations(ic)?;
        if !violations.is_empty() {
            return Err(SessionError::IcViolation {
                peer: peer.clone(),
                constraint: ic.name.clone(),
                violations: violations.len(),
            });
        }
    }
    Ok(())
}

/// A live, versioned P2P data exchange system: a [`QueryEngine`] whose
/// system accepts update transactions, with per-peer versions, an update
/// log, and incremental invalidation of the engine's memoized artifacts.
///
/// All reads take `&self` and answer against pinned MVCC epochs; mutation
/// goes through the single [`Writer`] handle claimed with
/// [`Session::writer`]. Clone cheap [`ReadHandle`]s with
/// [`Session::reader`] to query from other threads.
///
/// ```
/// use pdes_core::system::example1_system;
/// use pdes_core::Query;
/// use pdes_session::Session;
/// use relalg::query::Formula;
///
/// let session = Session::new(example1_system());
/// let query = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
/// assert_eq!(session.query(&query).unwrap().len(), 3);
/// assert_eq!(session.current_seq(), 0); // no commits yet
/// ```
pub struct Session {
    core: Arc<SessionCore>,
}

impl Session {
    /// A session over `system` with a default ([`Strategy::Auto`]) engine.
    pub fn new(system: P2PSystem) -> Self {
        Session::with_engine(QueryEngine::new(system))
    }

    /// A session over `system` answering with a fixed strategy.
    pub fn with_strategy(system: P2PSystem, strategy: Strategy) -> Self {
        Session::with_engine(QueryEngine::builder(system).strategy(strategy).build())
    }

    /// A session over a pre-configured engine (custom solver config,
    /// solution options or strategy). The engine's current system becomes
    /// the version-0 snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the engine's store cannot be snapshotted (a transport
    /// failure on a sharded store); use [`Session::try_with_engine`] to
    /// handle that case. Over the default in-process store this never
    /// panics.
    pub fn with_engine(engine: QueryEngine) -> Self {
        Session::try_with_engine(engine)
            .unwrap_or_else(|e| panic!("session construction failed: {e}"))
    }

    /// [`Session::with_engine`], surfacing store snapshot failures instead
    /// of panicking.
    pub fn try_with_engine(engine: QueryEngine) -> Result<Self> {
        let base = engine.snapshot_system()?;
        Ok(Session {
            core: Arc::new(SessionCore {
                engine,
                base,
                log: Mutex::new(Vec::new()),
                writer_claimed: AtomicBool::new(false),
            }),
        })
    }

    /// A cheap, cloneable handle sharing this session's engine, cache and
    /// log. Hand clones to reader threads; they never block on the writer.
    pub fn reader(&self) -> ReadHandle {
        ReadHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// Claim the session's single [`Writer`]. At most one writer is alive
    /// at a time; a second claim fails with [`SessionError::WriterClaimed`]
    /// until the first is dropped.
    pub fn writer(&self) -> Result<Writer> {
        if self
            .core
            .writer_claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(SessionError::WriterClaimed);
        }
        Ok(Writer {
            core: Arc::clone(&self.core),
        })
    }

    /// The engine answering over the current snapshot.
    pub fn engine(&self) -> &QueryEngine {
        &self.core.engine
    }

    /// Answer a [`Query`] against the current snapshot (engine's
    /// strategy).
    pub fn query(&self, query: &Query) -> Result<Answers> {
        self.core.query(query)
    }

    /// Answer with an explicit strategy, sharing the engine's cache.
    pub fn query_with(&self, strategy: Strategy, query: &Query) -> Result<Answers> {
        self.core.query_with(strategy, query)
    }

    /// Pin the store's current epoch: an immutable [`Snapshot`] that stays
    /// readable (and bit-stable) while the writer publishes new epochs.
    pub fn pin(&self) -> Result<Snapshot> {
        self.core.pin()
    }

    /// The current snapshot as an owned system, hydrated from the pinned
    /// epoch. Replaces the pre-MVCC `Session::system` mirror.
    pub fn current_system(&self) -> Result<P2PSystem> {
        self.core.current_system()
    }

    /// Answer a query against the current snapshot (engine's strategy).
    #[deprecated(note = "use `Session::query` with a `Query` value")]
    pub fn answer(&self, peer: &PeerId, query: &Formula, free_vars: &[String]) -> Result<Answers> {
        self.query(&Query::new(peer.clone(), query.clone(), free_vars.to_vec()))
    }

    /// Answer with an explicit strategy, sharing the engine's cache.
    #[deprecated(note = "use `Session::query_with` with a `Query` value")]
    pub fn answer_with(
        &self,
        strategy: Strategy,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        self.query_with(
            strategy,
            &Query::new(peer.clone(), query.clone(), free_vars.to_vec()),
        )
    }

    /// Convenience wrapper: answer variables by name.
    #[deprecated(note = "use `Session::query` with `Query::named`")]
    pub fn answer_named(
        &self,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[&str],
    ) -> Result<Answers> {
        self.query(&Query::new(peer.clone(), query.clone(), vars(free_vars)))
    }

    /// A peer's current version.
    pub fn version_of(&self, peer: &PeerId) -> Version {
        self.core.version_of(peer)
    }

    /// Every peer's current version.
    pub fn versions(&self) -> BTreeMap<PeerId, Version> {
        self.core.versions()
    }

    /// The latest commit sequence number (0 before any commit).
    pub fn current_seq(&self) -> u64 {
        self.core.current_seq()
    }

    /// The update log, oldest first.
    pub fn log(&self) -> Vec<CommittedTx> {
        self.core.log()
    }

    /// Lifetime cache counters of the underlying engine.
    pub fn metrics(&self) -> CacheMetrics {
        self.core.metrics()
    }

    /// Lifetime MVCC counters of the underlying store (pins, epoch
    /// publications, copied pages).
    pub fn mvcc_stats(&self) -> MvccStats {
        self.core.mvcc_stats()
    }

    /// Reconstruct the system as of commit `seq` by replaying the update
    /// log over the version-0 snapshot, returned as an immutable
    /// [`Snapshot`] whose epoch is `seq` (`seq` 0 is the snapshot itself;
    /// `seq` equal to [`Session::current_seq`] reproduces the live system).
    pub fn snapshot_at(&self, seq: u64) -> Result<Snapshot> {
        self.core.snapshot_at(seq)
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("peers", &self.core.base.peer_count())
            .field("seq", &self.current_seq())
            .field("versions", &self.versions())
            .finish()
    }
}

/// A cloneable read-only handle onto a [`Session`]: queries, pins,
/// versions, log access and metrics, all `&self`. Clones share the engine
/// cache and never block on the writer's commits.
#[derive(Clone)]
pub struct ReadHandle {
    core: Arc<SessionCore>,
}

impl ReadHandle {
    /// Answer a [`Query`] against the current snapshot (engine's
    /// strategy).
    pub fn query(&self, query: &Query) -> Result<Answers> {
        self.core.query(query)
    }

    /// Answer with an explicit strategy, sharing the engine's cache.
    pub fn query_with(&self, strategy: Strategy, query: &Query) -> Result<Answers> {
        self.core.query_with(strategy, query)
    }

    /// Pin the store's current epoch (see [`Session::pin`]).
    pub fn pin(&self) -> Result<Snapshot> {
        self.core.pin()
    }

    /// The current snapshot as an owned system (see
    /// [`Session::current_system`]).
    pub fn current_system(&self) -> Result<P2PSystem> {
        self.core.current_system()
    }

    /// A peer's current version.
    pub fn version_of(&self, peer: &PeerId) -> Version {
        self.core.version_of(peer)
    }

    /// Every peer's current version.
    pub fn versions(&self) -> BTreeMap<PeerId, Version> {
        self.core.versions()
    }

    /// The latest commit sequence number (0 before any commit).
    pub fn current_seq(&self) -> u64 {
        self.core.current_seq()
    }

    /// Lifetime cache counters of the underlying engine.
    pub fn metrics(&self) -> CacheMetrics {
        self.core.metrics()
    }

    /// Lifetime MVCC counters of the underlying store.
    pub fn mvcc_stats(&self) -> MvccStats {
        self.core.mvcc_stats()
    }

    /// Replay the log to the given commit (see [`Session::snapshot_at`]).
    pub fn snapshot_at(&self, seq: u64) -> Result<Snapshot> {
        self.core.snapshot_at(seq)
    }
}

impl fmt::Debug for ReadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadHandle")
            .field("seq", &self.current_seq())
            .finish()
    }
}

/// The session's single mutation handle: owns [`Writer::begin`] /
/// [`Tx::commit`]. Claimed with [`Session::writer`]; dropping it releases
/// the claim so a new writer can be taken.
///
/// ```
/// use pdes_core::system::{example1_system, PeerId};
/// use pdes_session::Session;
/// use relalg::Tuple;
///
/// let session = Session::new(example1_system());
/// let mut writer = session.writer().unwrap();
/// assert!(session.writer().is_err()); // single-writer: the claim is held
///
/// let mut tx = writer.begin();
/// tx.insert(&PeerId::new("P2"), "R2", Tuple::strs(["x", "y"])).unwrap();
/// let receipt = tx.commit().unwrap();
/// assert_eq!(receipt.seq, 1);
///
/// drop(writer); // releasing the claim lets a new writer be taken
/// assert!(session.writer().is_ok());
/// ```
pub struct Writer {
    core: Arc<SessionCore>,
}

impl Writer {
    /// Begin a transaction. Updates staged on the [`Tx`] are not visible to
    /// queries (or anyone else) until [`Tx::commit`]. The transaction
    /// borrows the writer exclusively, so at most one is open at a time.
    pub fn begin(&mut self) -> Tx<'_> {
        Tx {
            core: &self.core,
            staged: BTreeMap::new(),
        }
    }

    /// Stage and commit a batch of [`Update`]s as one transaction.
    pub fn apply(&mut self, updates: &[Update]) -> Result<CommitReceipt> {
        let mut tx = self.begin();
        for update in updates {
            tx.stage_delta(&update.peer, update.delta.clone())?;
        }
        tx.commit()
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        self.core.writer_claimed.store(false, Ordering::Release);
    }
}

impl fmt::Debug for Writer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Writer")
            .field("seq", &self.core.current_seq())
            .finish()
    }
}

/// An open transaction: staged insertions/deletions per peer. Dropping a
/// `Tx` without committing discards the staged changes.
#[must_use = "a transaction does nothing until `commit` is called"]
pub struct Tx<'w> {
    core: &'w SessionCore,
    staged: BTreeMap<PeerId, Delta>,
}

impl Tx<'_> {
    /// Stage the insertion of one ground atom into a peer's relation. A
    /// staged deletion of the same atom is cancelled instead.
    pub fn insert(&mut self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<&mut Self> {
        let atom = self.checked_atom(peer, relation, tuple)?;
        let delta = self.staged.entry(peer.clone()).or_default();
        if !delta.deletions.remove(&atom) {
            delta.insertions.insert(atom);
        }
        Ok(self)
    }

    /// Stage the deletion of one ground atom from a peer's relation. A
    /// staged insertion of the same atom is cancelled instead.
    ///
    /// Takes the tuple by reference — deletion identifies an existing tuple
    /// rather than contributing a new one, the same signature as
    /// [`pdes_core::PeerStore::delete`] and `P2PSystem::delete` (the three
    /// historically disagreed).
    pub fn delete(&mut self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<&mut Self> {
        let atom = self.checked_atom(peer, relation, tuple.clone())?;
        let delta = self.staged.entry(peer.clone()).or_default();
        if !delta.insertions.remove(&atom) {
            delta.deletions.insert(atom);
        }
        Ok(self)
    }

    /// Stage a whole delta against a peer (validated atom by atom, with the
    /// same cancellation behaviour as [`Tx::insert`] / [`Tx::delete`]).
    pub fn stage_delta(&mut self, peer: &PeerId, delta: Delta) -> Result<&mut Self> {
        for atom in delta.insertions {
            self.insert(peer, &atom.relation.clone(), atom.tuple)?;
        }
        for atom in delta.deletions {
            self.delete(peer, &atom.relation.clone(), &atom.tuple)?;
        }
        Ok(self)
    }

    /// The peers with staged changes.
    pub fn touched(&self) -> BTreeSet<PeerId> {
        self.staged
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.values().all(Delta::is_empty)
    }

    /// Discard the staged changes (same as dropping the transaction, but
    /// explicit at call sites).
    pub fn rollback(self) {}

    /// Atomically validate and apply the staged changes.
    ///
    /// 1. The current epoch is pinned; normalization and validation read
    ///    that immutable snapshot, never the live store.
    /// 2. Each staged delta is *normalized* against the peer's pinned
    ///    instance: already-present insertions and already-absent deletions
    ///    are dropped, so the logged delta is exact (`Δ(before, after)`
    ///    restricted to the peer — Definition 1).
    /// 3. Every touched peer's local ICs are checked against the instance
    ///    the commit would produce; the first violation aborts the whole
    ///    commit with [`SessionError::IcViolation`] and nothing is applied.
    /// 4. The deltas are applied through
    ///    [`QueryEngine::commit_delta`], which publishes a new store epoch,
    ///    bumps each touched peer's version and invalidates exactly the
    ///    memoized artifacts whose relevant-peer closure intersects the
    ///    touched peers. Readers pinned to earlier epochs are unaffected.
    ///
    /// A commit whose staged changes normalize to nothing is a no-op: the
    /// log and versions are untouched and the receipt reports no touched
    /// peers.
    pub fn commit(self) -> Result<CommitReceipt> {
        let core = self.core;
        let snapshot = core.pin()?;
        // 1 + 2. Normalize against the pinned epoch.
        let mut effective: BTreeMap<PeerId, Delta> = BTreeMap::new();
        for (peer, staged) in &self.staged {
            let instance = snapshot.instance_of(peer)?;
            let insertions: BTreeSet<GroundAtom> = staged
                .insertions
                .iter()
                .filter(|a| !instance.holds(&a.relation, &a.tuple))
                .cloned()
                .collect();
            let deletions: BTreeSet<GroundAtom> = staged
                .deletions
                .iter()
                .filter(|a| instance.holds(&a.relation, &a.tuple))
                .cloned()
                .collect();
            if !insertions.is_empty() || !deletions.is_empty() {
                effective.insert(
                    peer.clone(),
                    Delta {
                        insertions,
                        deletions,
                    },
                );
            }
        }
        if effective.is_empty() {
            return Ok(CommitReceipt {
                seq: core.current_seq(),
                touched: BTreeSet::new(),
                affected: BTreeSet::new(),
                versions: BTreeMap::new(),
                invalidated: 0,
            });
        }
        // 3. Validate all peers before applying anything. Each touched
        // peer's check reads only that peer's pinned instance and ICs, so
        // the checks fan out across the engine's worker pool; `try_map`
        // reports the lowest-indexed (= first in peer order) violation,
        // matching the sequential loop's error exactly.
        let staged_peers: Vec<(&PeerId, &Delta)> = effective.iter().collect();
        let recorder = Arc::clone(core.engine.recorder());
        let validate_span = pdes_obs::Span::enter(recorder.as_ref(), "commit.validate");
        Executor::new(core.engine.exec_config()).try_map(&staged_peers, |(peer, delta)| {
            validate_local_ics(&snapshot, peer, delta)
        })?;
        validate_span.finish();
        // 4. Apply.
        let touched: BTreeSet<PeerId> = effective.keys().cloned().collect();
        let affected = snapshot.topology().affected_by(&touched);
        let before = core.engine.metrics();
        let mut versions = BTreeMap::new();
        for (peer, delta) in &effective {
            let version = core.engine.commit_delta(peer, delta)?;
            versions.insert(peer.clone(), Version(version));
        }
        let invalidated = core.engine.metrics().invalidated - before.invalidated;
        let mut log = core.lock_log();
        let seq = log.len() as u64 + 1;
        log.push(CommittedTx {
            seq,
            changes: effective,
            versions: versions.clone(),
        });
        Ok(CommitReceipt {
            seq,
            touched,
            affected,
            versions,
            invalidated,
        })
    }

    /// Validate peer, relation ownership and arity against the topology
    /// (schemas never change after construction); build the ground atom.
    fn checked_atom(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<GroundAtom> {
        let peer_data = self.core.base.peer(peer)?;
        let schema = peer_data.schema.relation(relation).ok_or_else(|| {
            pdes_core::CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            }
        })?;
        if schema.arity() != tuple.arity() {
            return Err(relalg::RelalgError::ArityMismatch {
                relation: relation.to_string(),
                expected: schema.arity(),
                found: tuple.arity(),
            }
            .into());
        }
        Ok(GroundAtom::new(relation, tuple))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::system::example1_system;

    fn r1_query() -> Query {
        Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"])
    }

    #[test]
    fn commit_applies_changes_and_bumps_versions() {
        let session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        tx.delete(&p2, "R2", &Tuple::strs(["c", "d"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.seq, 1);
        assert_eq!(receipt.touched, BTreeSet::from([p2.clone()]));
        assert_eq!(receipt.versions[&p2], Version(1));
        assert_eq!(session.version_of(&p2), Version(1));
        assert_eq!(session.version_of(&PeerId::new("P1")), Version::ZERO);
        let inst = session.pin().unwrap().instance_of(&p2).unwrap();
        assert!(inst.holds("R2", &Tuple::strs(["x", "y"])));
        assert!(!inst.holds("R2", &Tuple::strs(["c", "d"])));
        assert_eq!(session.current_seq(), 1);
        assert_eq!(session.log().len(), 1);
    }

    #[test]
    fn writer_claim_is_exclusive_until_dropped() {
        let session = Session::new(example1_system());
        let writer = session.writer().unwrap();
        assert!(matches!(session.writer(), Err(SessionError::WriterClaimed)));
        // Dropping the handle releases the claim.
        drop(writer);
        let mut again = session.writer().unwrap();
        let tx = again.begin();
        tx.rollback();
    }

    #[test]
    fn read_handles_share_the_engine_and_never_need_mut() {
        let session = Session::with_strategy(example1_system(), Strategy::Asp);
        let reader = session.reader();
        let sibling = reader.clone();
        let query = r1_query();
        let cold = reader.query(&query).unwrap();
        assert!(!cold.stats.cache_hit);
        // The clone shares the cache: same query is a warm hit.
        let warm = sibling.query(&query).unwrap();
        assert!(warm.stats.cache_hit);
        assert_eq!(cold.tuples, warm.tuples);
        assert_eq!(reader.current_seq(), 0);
        // Handles are Send + Sync: usable from spawned reader threads.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&reader);
        assert_send_sync(&session);
    }

    #[test]
    fn deprecated_forwarders_still_answer() {
        #![allow(deprecated)]
        let session = Session::new(example1_system());
        let p1 = PeerId::new("P1");
        let formula = Formula::atom("R1", vec!["X", "Y"]);
        let via_query = session.query(&r1_query()).unwrap();
        let via_answer = session.answer(&p1, &formula, &vars(&["X", "Y"])).unwrap();
        let via_named = session.answer_named(&p1, &formula, &["X", "Y"]).unwrap();
        let via_with = session
            .answer_with(Strategy::Auto, &p1, &formula, &vars(&["X", "Y"]))
            .unwrap();
        assert_eq!(via_query.tuples, via_answer.tuples);
        assert_eq!(via_query.tuples, via_named.tuples);
        assert_eq!(via_query.tuples, via_with.tuples);
    }

    #[test]
    fn staging_cancels_and_normalizes() {
        let session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        // Insert-then-delete cancels out.
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        tx.delete(&p2, "R2", &Tuple::strs(["x", "y"])).unwrap();
        // Inserting an already-present atom normalizes away at commit.
        tx.insert(&p2, "R2", Tuple::strs(["c", "d"])).unwrap();
        assert!(!tx.is_empty());
        let receipt = tx.commit().unwrap();
        assert!(receipt.touched.is_empty());
        assert_eq!(receipt.seq, 0);
        assert_eq!(session.current_seq(), 0);
        assert_eq!(session.version_of(&p2), Version::ZERO);
    }

    #[test]
    fn staging_validates_ownership_and_arity() {
        let session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        // R1 belongs to P1.
        assert!(tx.insert(&p2, "R1", Tuple::strs(["x", "y"])).is_err());
        // Wrong arity.
        assert!(tx.insert(&p2, "R2", Tuple::strs(["x"])).is_err());
        // Unknown peer.
        assert!(tx
            .insert(&PeerId::new("Z"), "R2", Tuple::strs(["x", "y"]))
            .is_err());
        tx.rollback();
    }

    #[test]
    fn ic_violation_rejects_the_whole_commit() {
        let mut system = example1_system();
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        system
            .add_local_ic(
                &p1,
                constraints::builders::key_denial("fd_r1", "R1").unwrap(),
            )
            .unwrap();
        let session = Session::new(system);
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        // R1 already holds (a, b); (a, z) violates the key denial.
        tx.insert(&p1, "R1", Tuple::strs(["a", "z"])).unwrap();
        tx.insert(&p2, "R2", Tuple::strs(["new", "row"])).unwrap();
        let err = tx.commit().unwrap_err();
        match err {
            SessionError::IcViolation {
                peer, constraint, ..
            } => {
                assert_eq!(peer, p1);
                assert_eq!(constraint, "fd_r1");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Atomicity: neither peer changed, no versions bumped, no log entry.
        assert!(!session
            .pin()
            .unwrap()
            .instance_of(&p2)
            .unwrap()
            .holds("R2", &Tuple::strs(["new", "row"])));
        assert_eq!(session.version_of(&p1), Version::ZERO);
        assert_eq!(session.version_of(&p2), Version::ZERO);
        assert_eq!(session.current_seq(), 0);
    }

    #[test]
    fn untouched_ics_are_not_revalidated() {
        use relalg::RelationSchema;
        // P owns two relations; its key IC on `RK` is *already violated* in
        // the base instance. A commit touching only `RO` must not re-check
        // (and spuriously reject on) the untouched IC — validation scales
        // with the delta, not the peer's whole constraint set.
        let mut system = P2PSystem::new();
        system.add_peer("P").unwrap();
        let p = PeerId::new("P");
        system
            .add_relation(&p, RelationSchema::new("RK", &["k", "v"]))
            .unwrap();
        system
            .add_relation(&p, RelationSchema::new("RO", &["x"]))
            .unwrap();
        system.insert(&p, "RK", Tuple::strs(["a", "1"])).unwrap();
        system.insert(&p, "RK", Tuple::strs(["a", "2"])).unwrap();
        system
            .add_local_ic(
                &p,
                constraints::builders::key_denial("fd_rk", "RK").unwrap(),
            )
            .unwrap();
        let session = Session::new(system);
        let mut writer = session.writer().unwrap();

        // Touching RO commits fine despite the stale RK violation …
        let mut tx = writer.begin();
        tx.insert(&p, "RO", Tuple::strs(["new"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.versions[&p], Version(1));

        // … while touching RK still trips the (now relevant) IC.
        let mut tx = writer.begin();
        tx.insert(&p, "RK", Tuple::strs(["b", "1"])).unwrap();
        assert!(matches!(
            tx.commit(),
            Err(SessionError::IcViolation { constraint, .. }) if constraint == "fd_rk"
        ));
    }

    #[test]
    fn consistent_updates_pass_local_ics() {
        let mut system = example1_system();
        let p1 = PeerId::new("P1");
        system
            .add_local_ic(
                &p1,
                constraints::builders::key_denial("fd_r1", "R1").unwrap(),
            )
            .unwrap();
        let session = Session::new(system);
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        tx.insert(&p1, "R1", Tuple::strs(["fresh", "value"]))
            .unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.versions[&p1], Version(1));
    }

    #[test]
    fn snapshot_at_replays_the_log() {
        let session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let p3 = PeerId::new("P3");
        let base = session.snapshot_at(0).unwrap();
        assert_eq!(base.epoch(), 0);
        assert_eq!(&base.system().unwrap(), &example1_system());

        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        let _ = tx.commit().unwrap();
        let mut tx = writer.begin();
        tx.delete(&p3, "R3", &Tuple::strs(["a", "f"])).unwrap();
        let _ = tx.commit().unwrap();

        let at1 = session.snapshot_at(1).unwrap();
        assert_eq!(at1.epoch(), 1);
        assert_eq!(at1.version_of(&p2).unwrap(), 1);
        assert!(at1
            .instance_of(&p2)
            .unwrap()
            .holds("R2", &Tuple::strs(["x", "y"])));
        assert!(at1
            .instance_of(&p3)
            .unwrap()
            .holds("R3", &Tuple::strs(["a", "f"])));
        let at2 = session.snapshot_at(2).unwrap();
        assert_eq!(at2.system().unwrap(), session.current_system().unwrap());
        assert!(matches!(
            session.snapshot_at(3),
            Err(SessionError::UnknownSeq { seq: 3, latest: 2 })
        ));
    }

    #[test]
    fn queries_track_commits_and_keep_unrelated_peers_warm() {
        let session = Session::with_strategy(example1_system(), Strategy::Asp);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let query = r1_query();
        let q3 = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);

        let before = session.query(&query).unwrap();
        let _ = session.query(&q3).unwrap();

        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
        let receipt = tx.commit().unwrap();
        assert!(receipt.invalidated >= 1);
        // The receipt names the closure: P1 (imports from P2) and P2 itself,
        // but not P3.
        assert_eq!(receipt.affected, BTreeSet::from([p1.clone(), p2.clone()]));

        // P3 is outside P2's relevant-peer closure: still warm.
        let warm = session.query(&q3).unwrap();
        assert!(warm.stats.cache_hit);
        // P1 imports from P2: its artifact was repaired on the committing
        // thread, so the post-commit query is served warm and sees the new
        // tuple.
        let after = session.query(&query).unwrap();
        assert_eq!(after.len(), before.len() + 1);
    }

    #[test]
    fn parallel_ic_validation_matches_sequential() {
        use pdes_core::engine::QueryEngine;
        use pdes_exec::ExecConfig;
        // Two peers with key ICs; one staged delta violates P1's. Both the
        // sequential and the 4-worker engine must reject the commit with
        // the same (first-in-peer-order) violation, atomically.
        let build = |workers: usize| {
            let mut system = example1_system();
            let p1 = PeerId::new("P1");
            let p2 = PeerId::new("P2");
            system
                .add_local_ic(
                    &p1,
                    constraints::builders::key_denial("fd_r1", "R1").unwrap(),
                )
                .unwrap();
            system
                .add_local_ic(
                    &p2,
                    constraints::builders::key_denial("fd_r2", "R2").unwrap(),
                )
                .unwrap();
            Session::with_engine(
                QueryEngine::builder(system)
                    .exec(ExecConfig::with_workers(workers))
                    .build(),
            )
        };
        let mut outcomes = Vec::new();
        for workers in [1, 4] {
            let session = build(workers);
            let mut writer = session.writer().unwrap();
            let mut tx = writer.begin();
            // Both staged deltas violate their peer's key IC.
            tx.insert(&PeerId::new("P1"), "R1", Tuple::strs(["a", "zzz"]))
                .unwrap();
            tx.insert(&PeerId::new("P2"), "R2", Tuple::strs(["c", "zzz"]))
                .unwrap();
            let err = tx.commit().unwrap_err();
            match err {
                SessionError::IcViolation {
                    peer, constraint, ..
                } => outcomes.push((peer, constraint)),
                other => panic!("unexpected error {other:?}"),
            }
            assert_eq!(session.current_seq(), 0, "commit must stay atomic");
        }
        assert_eq!(outcomes[0], outcomes[1], "same violation on both paths");
        assert_eq!(outcomes[0].0, PeerId::new("P1"));

        // And a valid multi-peer commit passes under a parallel pool.
        let session = build(4);
        let mut writer = session.writer().unwrap();
        let mut tx = writer.begin();
        tx.insert(&PeerId::new("P1"), "R1", Tuple::strs(["new1", "v"]))
            .unwrap();
        tx.insert(&PeerId::new("P2"), "R2", Tuple::strs(["new2", "v"]))
            .unwrap();
        let receipt = tx.commit().unwrap();
        assert_eq!(receipt.touched.len(), 2);
    }

    #[test]
    fn apply_commits_update_batches() {
        use relalg::database::GroundAtom;
        let session = Session::new(example1_system());
        let p2 = PeerId::new("P2");
        let updates = vec![Update::new(
            p2.clone(),
            Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["u", "v"]))], []),
        )];
        let mut writer = session.writer().unwrap();
        let receipt = writer.apply(&updates).unwrap();
        assert_eq!(receipt.touched, BTreeSet::from([p2.clone()]));
        assert_eq!(session.version_of(&p2), Version(1));
    }

    #[test]
    fn version_displays_compactly() {
        assert_eq!(Version(3).to_string(), "v3");
        assert_eq!(Version::ZERO.get(), 0);
    }
}

//! Errors raised by the live-session layer.

use pdes_core::system::PeerId;
use std::fmt;

/// Errors raised while staging or committing updates, or replaying the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A staged update would leave a peer's instance violating one of its
    /// local integrity constraints `IC(P)`. The commit was rejected as a
    /// whole; nothing was applied.
    IcViolation {
        /// The peer whose local ICs reject the update.
        peer: PeerId,
        /// Name of the violated constraint.
        constraint: String,
        /// Number of violating bindings found.
        violations: usize,
    },
    /// `Session::writer` was called while another `Writer` handle is still
    /// alive. Drop the existing writer to release the claim.
    WriterClaimed,
    /// `snapshot_at` was asked for a commit sequence number beyond the log.
    UnknownSeq {
        /// The requested sequence number.
        seq: u64,
        /// The latest committed sequence number.
        latest: u64,
    },
    /// Propagated core error (unknown peer/relation, engine failures, …).
    Core(pdes_core::CoreError),
    /// Propagated constraint-checking error.
    Constraint(constraints::ConstraintError),
    /// Propagated relational-layer error.
    Relalg(relalg::RelalgError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::IcViolation {
                peer,
                constraint,
                violations,
            } => write!(
                f,
                "commit rejected: local IC `{constraint}` of peer `{peer}` \
                 would be violated ({violations} violation(s))"
            ),
            SessionError::WriterClaimed => write!(
                f,
                "the session's writer is already claimed; drop the existing \
                 `Writer` handle before claiming a new one"
            ),
            SessionError::UnknownSeq { seq, latest } => {
                write!(f, "no snapshot at sequence {seq}: the log ends at {latest}")
            }
            SessionError::Core(e) => write!(f, "{e}"),
            SessionError::Constraint(e) => write!(f, "{e}"),
            SessionError::Relalg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<pdes_core::CoreError> for SessionError {
    fn from(e: pdes_core::CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<constraints::ConstraintError> for SessionError {
    fn from(e: constraints::ConstraintError) -> Self {
        SessionError::Constraint(e)
    }
}

impl From<relalg::RelalgError> for SessionError {
    fn from(e: relalg::RelalgError) -> Self {
        SessionError::Relalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offenders() {
        let e = SessionError::IcViolation {
            peer: PeerId::new("P1"),
            constraint: "fd_r1".into(),
            violations: 2,
        };
        let text = e.to_string();
        assert!(text.contains("P1") && text.contains("fd_r1") && text.contains('2'));
        assert!(SessionError::UnknownSeq { seq: 9, latest: 3 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: SessionError = pdes_core::CoreError::UnknownPeer("Z".into()).into();
        assert!(matches!(e, SessionError::Core(_)));
        let e: SessionError = relalg::RelalgError::UnknownRelation("R".into()).into();
        assert!(matches!(e, SessionError::Relalg(_)));
    }
}

//! # pdes-session — live, versioned P2P data exchange sessions
//!
//! The paper's semantics (Definitions 4 and 5) is defined over a *snapshot*
//! of the peers' instances. This crate lifts the reproduction to peers whose
//! data changes over time, without changing the semantics: at any point, the
//! answers a [`Session`] returns are exactly the peer consistent answers of
//! the current snapshot.
//!
//! ## Model
//!
//! * A [`Session`] wraps a [`pdes_core::QueryEngine`] (and thus a
//!   [`pdes_core::P2PSystem`]) and assigns every peer a monotonically
//!   increasing [`Version`], starting at 0 for the construction-time
//!   instance.
//! * Reads take `&self` and answer against pinned MVCC epochs
//!   ([`pdes_core::Snapshot`]); clone cheap [`ReadHandle`]s with
//!   [`Session::reader`] to query concurrently from any number of threads.
//!   Readers never block on a committing writer.
//! * Mutation goes through the session's single [`Writer`] handle
//!   ([`Session::writer`]): updates are staged in a [`Tx`]
//!   ([`Writer::begin`]) and applied atomically by [`Tx::commit`]. An
//!   update is expressed as a [`relalg::Delta`] — the currency of change
//!   the paper itself introduces in **Definition 1**, where the distance
//!   between two instances is the symmetric difference `Δ(r1, r2)` of their
//!   ground atoms, split here into insertions and deletions relative to the
//!   peer's current instance. Committing a delta moves the peer from one
//!   instance to another whose `Δ` is (at most) the committed one; the
//!   per-peer [`Version`] counts these moves.
//! * At commit, every touched peer's *local* integrity constraints `IC(P)`
//!   are validated against the post-commit instance first, and nothing is
//!   applied unless every check passes. DECs are deliberately **not**
//!   enforced at commit time — inter-peer inconsistency is the paper's
//!   subject matter, resolved virtually at query time, not an error state.
//! * Every effective commit is appended to an update log of
//!   [`CommittedTx`]s; [`Session::snapshot_at`] replays the log to
//!   reconstruct the system as of any commit sequence number as an
//!   immutable [`pdes_core::Snapshot`], which is also how a fresh reference
//!   engine is built in the equivalence tests.
//!
//! On commit, the session hands each effective per-peer delta to
//! [`pdes_core::QueryEngine::commit_delta`], which publishes a new store
//! epoch and drives the engine's incremental invalidation: only memoized
//! artifacts whose *relevant-peer closure* (the transitive closure of DEC
//! ownership edges) intersects the touched peers are affected at all;
//! queries against peers outside the closure keep their warm cache entries.
//! Affected ASP artifacts are repaired *on the committing thread* — the
//! grounding is patched by re-deriving only the rules the delta touched
//! (`datalog::incremental`; [`pdes_core::CacheMetrics`] counts the repairs
//! in its `patched` field), so post-commit reads are served warm.
//!
//! ## Quickstart
//!
//! ```
//! use pdes_core::system::{example1_system, PeerId};
//! use pdes_core::Query;
//! use pdes_session::Session;
//! use relalg::query::Formula;
//! use relalg::Tuple;
//!
//! let session = Session::new(example1_system());
//! let p2 = PeerId::new("P2");
//! let query = Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]);
//!
//! // Warm query against the initial snapshot — reads take `&self`.
//! let before = session.query(&query).unwrap();
//! assert_eq!(before.len(), 3);
//!
//! // Claim the single writer and commit an update to P2; P1 imports from
//! // P2, so its answers change.
//! let mut writer = session.writer().unwrap();
//! let mut tx = writer.begin();
//! tx.insert(&p2, "R2", Tuple::strs(["x", "y"])).unwrap();
//! let receipt = tx.commit().unwrap();
//! assert_eq!(receipt.seq, 1);
//!
//! let after = session.query(&query).unwrap();
//! assert_eq!(after.len(), 4);
//! assert!(after.contains(&Tuple::strs(["x", "y"])));
//! ```

pub mod error;
pub mod session;

pub use error::SessionError;
pub use session::{CommitReceipt, CommittedTx, ReadHandle, Session, Tx, Update, Version, Writer};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, SessionError>;

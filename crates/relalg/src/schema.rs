//! Relation signatures and (per-peer) database schemas.
//!
//! In the paper each peer `P` owns a schema `R(P)` of relations; `R̄(P)`
//! extends it with the relations of other peers mentioned in `P`'s data
//! exchange constraints (Definition 3(a)). Here a [`RelationSchema`] is a
//! single relation signature and a [`Schema`] is a named collection of them;
//! schema union implements the `R̄(P)` construction.

use crate::error::RelalgError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Signature of a single relation: a name plus named attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Create a relation schema with explicit attribute names.
    pub fn new<S: AsRef<str>>(name: impl Into<String>, attributes: &[S]) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: attributes.iter().map(|a| a.as_ref().to_string()).collect(),
        }
    }

    /// Create a relation schema with positional attribute names `c0..c{n-1}`.
    pub fn with_arity(name: impl Into<String>, arity: usize) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: (0..arity).map(|i| format!("c{i}")).collect(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names, in positional order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Position of an attribute name, if present.
    pub fn position_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Return a copy of this schema under a different relation name.
    ///
    /// Used when building the "virtual" primed relations (`R'` in the paper)
    /// and annotated relations for the LAV encoding.
    pub fn renamed(&self, new_name: impl Into<String>) -> RelationSchema {
        RelationSchema {
            name: new_name.into(),
            attributes: self.attributes.clone(),
        }
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A database schema: a set of relation schemas keyed by relation name.
///
/// Relation names are globally unique across the whole P2P system (the paper
/// assumes peer schemas are disjoint, Definition 2(b)); the `pdes-core` crate
/// keeps track of which peer owns which relation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    relations: BTreeMap<String, RelationSchema>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from an iterator of relation schemas.
    ///
    /// Returns an error if two relation schemas share a name but disagree on
    /// arity or attribute names.
    pub fn from_relations<I: IntoIterator<Item = RelationSchema>>(relations: I) -> Result<Self> {
        let mut schema = Schema::new();
        for r in relations {
            schema.add(r)?;
        }
        Ok(schema)
    }

    /// Add a relation schema. Adding an identical schema twice is a no-op;
    /// adding a conflicting one is an error.
    pub fn add(&mut self, relation: RelationSchema) -> Result<()> {
        match self.relations.get(relation.name()) {
            Some(existing) if existing == &relation => Ok(()),
            Some(existing) => Err(RelalgError::SchemaConflict {
                relation: relation.name().to_string(),
                existing: existing.to_string(),
                new: relation.to_string(),
            }),
            None => {
                self.relations.insert(relation.name().to_string(), relation);
                Ok(())
            }
        }
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// True if the schema declares the given relation.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Names of all relations, in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Union of two schemas (the `R̄(P)` construction). Conflicting relation
    /// signatures are an error.
    pub fn union(&self, other: &Schema) -> Result<Schema> {
        let mut out = self.clone();
        for r in other.relations() {
            out.add(r.clone())?;
        }
        Ok(out)
    }

    /// Restrict the schema to the given relation names (the `r|S'`
    /// construction of Definition 3(c), at the schema level).
    pub fn restrict<'a, I: IntoIterator<Item = &'a str>>(&self, names: I) -> Schema {
        let mut out = Schema::new();
        for name in names {
            if let Some(r) = self.relations.get(name) {
                // Adding a relation copied from an existing schema cannot conflict.
                out.relations.insert(name.to_string(), r.clone());
            }
        }
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str, attrs: &[&str]) -> RelationSchema {
        RelationSchema::new(name, attrs)
    }

    #[test]
    fn relation_schema_accessors() {
        let s = r("R1", &["x", "y"]);
        assert_eq!(s.name(), "R1");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position_of("y"), Some(1));
        assert_eq!(s.position_of("z"), None);
        assert_eq!(s.to_string(), "R1(x, y)");
    }

    #[test]
    fn with_arity_generates_positional_names() {
        let s = RelationSchema::with_arity("S", 3);
        assert_eq!(s.attributes(), &["c0", "c1", "c2"]);
    }

    #[test]
    fn renamed_keeps_attributes() {
        let s = r("R1", &["x", "y"]).renamed("R1_prime");
        assert_eq!(s.name(), "R1_prime");
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn schema_add_rejects_conflicts_and_allows_duplicates() {
        let mut schema = Schema::new();
        schema.add(r("R", &["a"])).unwrap();
        schema.add(r("R", &["a"])).unwrap();
        let err = schema.add(r("R", &["a", "b"])).unwrap_err();
        assert!(matches!(err, RelalgError::SchemaConflict { .. }));
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn union_merges_disjoint_schemas() {
        let a = Schema::from_relations([r("R1", &["x"]), r("R2", &["x", "y"])]).unwrap();
        let b = Schema::from_relations([r("S1", &["x"])]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.contains("R1"));
        assert!(u.contains("S1"));
    }

    #[test]
    fn union_detects_conflicting_signatures() {
        let a = Schema::from_relations([r("R", &["x"])]).unwrap();
        let b = Schema::from_relations([r("R", &["x", "y"])]).unwrap();
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn restrict_keeps_only_requested_relations() {
        let a =
            Schema::from_relations([r("R1", &["x"]), r("R2", &["y"]), r("R3", &["z"])]).unwrap();
        let restricted = a.restrict(["R1", "R3", "missing"]);
        assert_eq!(restricted.len(), 2);
        assert!(restricted.contains("R1"));
        assert!(!restricted.contains("R2"));
    }

    #[test]
    fn relation_names_are_sorted() {
        let a = Schema::from_relations([r("Z", &["x"]), r("A", &["y"])]).unwrap();
        let names: Vec<&str> = a.relation_names().collect();
        assert_eq!(names, vec!["A", "Z"]);
    }
}

//! # relalg — in-memory relational substrate
//!
//! This crate provides the relational machinery on which the peer-to-peer
//! data exchange semantics of Bertossi & Bravo (EDBT 2004) is built:
//!
//! * [`Value`], [`Tuple`] — the data model (shared, possibly infinite domain);
//! * [`RelationSchema`], [`Schema`] — relation signatures, per-peer schemas
//!   and their unions (the paper's `R(P)` and `R̄(P)`);
//! * [`Relation`], [`Database`] — finite instances as ordered tuple sets;
//! * [`delta::Delta`] — the symmetric difference `Δ(r1, r2)` of Definition 1
//!   together with the `≤_r` comparison used to define repairs and solutions;
//! * [`query`] — first-order queries and their active-domain evaluation;
//! * [`algebra`] — a small relational-algebra evaluator used as a fast path
//!   for conjunctive queries;
//! * [`intern`], [`columnar`] — the interned, columnar data plane: a
//!   [`SymbolTable`] mapping distinct values and names to dense `u32`
//!   [`Symbol`]s, column-block relation storage, and hash-join / semi-join
//!   kernels ([`CqPlan`]) operating on ids with string materialization only
//!   at the answer boundary.
//!
//! The crate is deliberately free of any peer-to-peer notions: it only knows
//! about relations, instances and queries. Constraints live in the
//! `constraints` crate, repairs in `repair`, and the peer semantics in
//! `pdes-core`.
//!
//! ## Example
//!
//! ```
//! use relalg::{Database, Relation, RelationSchema, Tuple, Value};
//! use relalg::query::{Formula, QueryEvaluator};
//!
//! let schema = RelationSchema::new("R1", &["a", "b"]);
//! let mut db = Database::new();
//! db.add_relation(Relation::new(schema.clone()));
//! db.insert("R1", Tuple::from(vec![Value::str("a"), Value::str("b")])).unwrap();
//! db.insert("R1", Tuple::from(vec![Value::str("c"), Value::str("d")])).unwrap();
//!
//! // ∃y R1(x, y) — project the first column.
//! let q = Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"]));
//! let eval = QueryEvaluator::new(&db);
//! let answers = eval.answers(&q, &["X".to_string()]).unwrap();
//! assert_eq!(answers.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod columnar;
pub mod database;
pub mod delta;
pub mod error;
pub mod intern;
pub mod query;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use columnar::{ColumnarDatabase, ColumnarRelation, CqPlan};
pub use database::Database;
pub use delta::{Delta, DeltaOrdering};
pub use error::RelalgError;
pub use intern::{Symbol, SymbolTable};
pub use relation::Relation;
pub use schema::{RelationSchema, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, RelalgError>;

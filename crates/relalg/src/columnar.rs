//! Columnar relation storage and join kernels over interned symbols.
//!
//! A [`ColumnarRelation`] stores one `Vec<u32>` block per attribute — each
//! value replaced by its [`Symbol`] id from a shared [`SymbolTable`] — so a
//! conjunctive query can be answered entirely with integer comparisons and
//! dense hashing; strings are materialized only at the answer boundary
//! ([`CqPlan::materialize`]). Row order matches the source
//! [`Relation`]'s deterministic `BTreeSet` iteration order, so two columnar
//! snapshots of equal relations are bit-identical.
//!
//! [`CqPlan`] compiles the conjunctive fragment of [`Formula`] (atoms,
//! conjunction, disjunction, existentials, comparisons over bound
//! variables) into a pipeline of hash-join and semi-join kernel steps. Any
//! formula outside the fragment simply fails to compile
//! ([`CqPlan::compile`] returns `None`) and callers fall back to the
//! general active-domain [`QueryEvaluator`](crate::query::QueryEvaluator) —
//! the plan is a fast path, never a semantic fork.

use crate::database::Database;
use crate::error::RelalgError;
use crate::intern::{Symbol, SymbolTable};
use crate::query::ast::{CompareOp, Formula, Term};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// One relation stored column-wise as interned symbol ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarRelation {
    name: String,
    /// One block per attribute; all blocks have `rows` entries.
    columns: Vec<Vec<u32>>,
    rows: usize,
}

impl ColumnarRelation {
    /// Intern a relation into column blocks. Row order is the relation's
    /// own deterministic iteration order.
    pub fn from_relation(relation: &Relation, symbols: &SymbolTable) -> Self {
        let arity = relation.arity();
        let mut columns = vec![Vec::with_capacity(relation.len()); arity];
        for tuple in relation.iter() {
            for (col, value) in columns.iter_mut().zip(tuple.iter()) {
                col.push(symbols.intern(value).id());
            }
        }
        ColumnarRelation {
            name: relation.name().to_string(),
            columns,
            rows: relation.len(),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The id at (row, column).
    fn id_at(&self, row: usize, col: usize) -> u32 {
        self.columns[col][row]
    }

    /// Exact resident bytes of the column blocks: 4 bytes per id plus the
    /// relation name. Deterministic across platforms — this is the number
    /// the engine's memo cache budgets against.
    pub fn exact_bytes(&self) -> usize {
        self.name.len() + 4 * self.rows * self.arity()
    }
}

/// A database instance interned into columnar blocks, sharing one
/// [`SymbolTable`] with its store.
#[derive(Debug, Clone)]
pub struct ColumnarDatabase {
    relations: BTreeMap<String, ColumnarRelation>,
    symbols: Arc<SymbolTable>,
}

impl ColumnarDatabase {
    /// Intern every relation of `db` into column blocks.
    pub fn from_database(db: &Database, symbols: &Arc<SymbolTable>) -> Self {
        let relations = db
            .relations()
            .map(|rel| {
                (
                    rel.name().to_string(),
                    ColumnarRelation::from_relation(rel, symbols),
                )
            })
            .collect();
        ColumnarDatabase {
            relations,
            symbols: Arc::clone(symbols),
        }
    }

    /// The shared symbol table the blocks are interned against.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// Look a relation up by name.
    pub fn relation(&self, name: &str) -> Option<&ColumnarRelation> {
        self.relations.get(name)
    }

    /// Iterate relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &ColumnarRelation> {
        self.relations.values()
    }

    /// Exact resident bytes of all column blocks (excluding the shared
    /// symbol table, which is owned by the store and amortized across every
    /// snapshot and cache entry).
    pub fn exact_bytes(&self) -> usize {
        32 + self
            .relations
            .values()
            .map(|r| 16 + r.exact_bytes())
            .sum::<usize>()
    }
}

/// A term position in a compiled atom: a constant (matched by symbol id) or
/// a variable slot in the plan's binding row.
#[derive(Debug, Clone)]
enum PlanTerm {
    /// Constant: matched against column ids. The value is looked up in the
    /// table lazily at evaluation time (a constant the table has never
    /// minted cannot match any stored tuple).
    Const(Value),
    /// Variable: index into the plan's variable list.
    Var(usize),
}

/// One relational atom step of a conjunct.
#[derive(Debug, Clone)]
struct AtomStep {
    relation: String,
    terms: Vec<PlanTerm>,
}

/// One comparison filter applied once both sides are bound.
#[derive(Debug, Clone)]
struct FilterStep {
    op: CompareOp,
    left: PlanTerm,
    right: PlanTerm,
}

/// One conjunctive block: atoms joined left to right, then filters.
#[derive(Debug, Clone)]
struct Conjunct {
    atoms: Vec<AtomStep>,
    filters: Vec<FilterStep>,
}

/// A compiled conjunctive plan: a union of conjuncts, each evaluated with
/// hash-join / semi-join kernels over interned ids, projected onto the
/// query's free variables.
///
/// # Examples
///
/// ```
/// use relalg::{ColumnarDatabase, Database, Relation, RelationSchema, SymbolTable, Tuple};
/// use relalg::columnar::CqPlan;
/// use relalg::query::Formula;
/// use std::sync::Arc;
///
/// let mut db = Database::new();
/// db.add_relation(Relation::new(RelationSchema::new("R", &["a", "b"])));
/// db.insert("R", Tuple::strs(["x", "y"])).unwrap();
///
/// let symbols = Arc::new(SymbolTable::new());
/// let columnar = ColumnarDatabase::from_database(&db, &symbols);
///
/// let q = Formula::exists(vec!["Y"], Formula::atom("R", vec!["X", "Y"]));
/// let plan = CqPlan::compile(&q, &["X".to_string()]).expect("conjunctive");
/// let rows = plan.answers(&columnar).unwrap();
/// let tuples = CqPlan::materialize(&rows, &symbols);
/// assert_eq!(tuples.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CqPlan {
    /// All variables of the plan, in first-seen order.
    vars: Vec<String>,
    /// Positions of the query's free variables inside `vars`.
    output: Vec<usize>,
    /// Union of conjunctive blocks (one for a plain conjunctive query).
    disjuncts: Vec<Conjunct>,
}

impl CqPlan {
    /// Compile the conjunctive fragment: outer existentials, a top-level
    /// disjunction of conjunctive blocks (each binding every free
    /// variable), atoms, and comparisons whose variables the atoms bind.
    /// Returns `None` for anything else — negation, universals,
    /// implications, unsafe comparisons — which callers evaluate on the
    /// legacy path.
    pub fn compile(query: &Formula, free_vars: &[String]) -> Option<CqPlan> {
        let mut vars: Vec<String> = Vec::new();
        let mut var_index: HashMap<String, usize> = HashMap::new();
        for v in free_vars {
            if !var_index.contains_key(v) {
                var_index.insert(v.clone(), vars.len());
                vars.push(v.clone());
            }
        }
        // Strip outer existentials; their variables must not shadow free
        // variables (the evaluator would scope them, the flat plan cannot).
        let mut scope: HashSet<String> = free_vars.iter().cloned().collect();
        let mut inner = query;
        while let Formula::Exists(qvars, f) = inner {
            for v in qvars {
                if !scope.insert(v.clone()) {
                    return None;
                }
            }
            inner = f;
        }
        let blocks: Vec<&Formula> = match inner {
            Formula::Or(parts) => parts.iter().collect(),
            other => vec![other],
        };
        let mut disjuncts = Vec::with_capacity(blocks.len());
        for block in blocks {
            let conjunct =
                Self::compile_conjunct(block, free_vars, &mut vars, &mut var_index, &scope)?;
            disjuncts.push(conjunct);
        }
        let output = free_vars.iter().map(|v| var_index[v]).collect();
        Some(CqPlan {
            vars,
            output,
            disjuncts,
        })
    }

    /// Compile one conjunctive block, flattening nested `And`/`Exists`.
    fn compile_conjunct(
        block: &Formula,
        free_vars: &[String],
        vars: &mut Vec<String>,
        var_index: &mut HashMap<String, usize>,
        outer_scope: &HashSet<String>,
    ) -> Option<Conjunct> {
        let mut atoms = Vec::new();
        let mut filters = Vec::new();
        let mut scope = outer_scope.clone();
        Self::flatten(block, vars, var_index, &mut scope, &mut atoms, &mut filters)?;
        // Safety: every free variable and every filter variable must be
        // bound by some atom of this block.
        let bound: HashSet<usize> = atoms
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                PlanTerm::Var(i) => Some(*i),
                PlanTerm::Const(_) => None,
            })
            .collect();
        for v in free_vars {
            if !bound.contains(&var_index[v]) {
                return None;
            }
        }
        for f in &filters {
            for side in [&f.left, &f.right] {
                if let PlanTerm::Var(i) = side {
                    if !bound.contains(i) {
                        return None;
                    }
                }
            }
        }
        Some(Conjunct { atoms, filters })
    }

    /// Recursive flattening of a conjunctive block into atom and filter
    /// steps. Bails (returns `None`) on any construct outside the fragment.
    fn flatten(
        f: &Formula,
        vars: &mut Vec<String>,
        var_index: &mut HashMap<String, usize>,
        scope: &mut HashSet<String>,
        atoms: &mut Vec<AtomStep>,
        filters: &mut Vec<FilterStep>,
    ) -> Option<()> {
        let plan_term =
            |t: &Term, vars: &mut Vec<String>, var_index: &mut HashMap<String, usize>| match t {
                Term::Const(v) => PlanTerm::Const(v.clone()),
                Term::Var(name) => {
                    let idx = *var_index.entry(name.clone()).or_insert_with(|| {
                        vars.push(name.clone());
                        vars.len() - 1
                    });
                    PlanTerm::Var(idx)
                }
            };
        match f {
            Formula::True => Some(()),
            Formula::Atom { relation, terms } => {
                let terms = terms
                    .iter()
                    .map(|t| plan_term(t, vars, var_index))
                    .collect();
                atoms.push(AtomStep {
                    relation: relation.clone(),
                    terms,
                });
                Some(())
            }
            Formula::Compare { op, left, right } => {
                filters.push(FilterStep {
                    op: *op,
                    left: plan_term(left, vars, var_index),
                    right: plan_term(right, vars, var_index),
                });
                Some(())
            }
            Formula::And(parts) => {
                for p in parts {
                    Self::flatten(p, vars, var_index, scope, atoms, filters)?;
                }
                Some(())
            }
            Formula::Exists(qvars, inner) => {
                for v in qvars {
                    if !scope.insert(v.clone()) {
                        return None; // shadowing: fall back to the evaluator
                    }
                }
                Self::flatten(inner, vars, var_index, scope, atoms, filters)
            }
            // Outside the conjunctive fragment.
            Formula::False
            | Formula::Not(_)
            | Formula::Or(_)
            | Formula::Implies(..)
            | Formula::Forall(..) => None,
        }
    }

    /// All variables of the plan, in first-seen binding order (free
    /// variables first).
    pub fn variables(&self) -> &[String] {
        &self.vars
    }

    /// Evaluate the plan over a columnar instance: per-disjunct hash joins
    /// and semi-joins over interned ids, unioned and projected onto the
    /// free variables. Rows come back as id vectors; materialize them with
    /// [`CqPlan::materialize`] only at the answer boundary.
    pub fn answers(&self, db: &ColumnarDatabase) -> Result<BTreeSet<Vec<u32>>> {
        let mut out = BTreeSet::new();
        for conjunct in &self.disjuncts {
            self.eval_conjunct(conjunct, db, &mut out)?;
        }
        Ok(out)
    }

    /// Evaluate one conjunct, projecting onto the output variables into
    /// `out`.
    fn eval_conjunct(
        &self,
        conjunct: &Conjunct,
        db: &ColumnarDatabase,
        out: &mut BTreeSet<Vec<u32>>,
    ) -> Result<()> {
        let symbols = db.symbols();
        // Binding rows over the subset of plan variables bound so far.
        let mut bound: Vec<usize> = Vec::new();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new()];
        for atom in &conjunct.atoms {
            let Some(rel) = db.relation(&atom.relation) else {
                // Undeclared relations are empty (mirrors the evaluator).
                return Ok(());
            };
            if rel.arity() != atom.terms.len() {
                return Err(RelalgError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: rel.arity(),
                    found: atom.terms.len(),
                });
            }
            // Resolve constants: a constant the table never minted cannot
            // match any stored id, so the atom (and the conjunct) is empty.
            let mut consts: Vec<(usize, u32)> = Vec::new();
            let mut atom_vars: Vec<(usize, usize)> = Vec::new(); // (column, var)
            let mut unseen_const = false;
            for (col, term) in atom.terms.iter().enumerate() {
                match term {
                    PlanTerm::Const(value) => match symbols.lookup(value) {
                        Some(sym) => consts.push((col, sym.id())),
                        None => unseen_const = true,
                    },
                    PlanTerm::Var(v) => atom_vars.push((col, *v)),
                }
            }
            if unseen_const {
                return Ok(());
            }
            // Split the atom's variables into join keys (already bound) and
            // fresh columns, keeping the first column of a repeated fresh
            // variable as its binding site and the rest as intra-atom
            // equality checks.
            let mut keys: Vec<(usize, usize)> = Vec::new(); // (column, pos in `bound`)
            let mut fresh: Vec<(usize, usize)> = Vec::new(); // (column, var)
            let mut repeats: Vec<(usize, usize)> = Vec::new(); // (column, earlier column)
            let mut first_col: HashMap<usize, usize> = HashMap::new();
            for (col, var) in &atom_vars {
                if let Some(earlier) = first_col.get(var) {
                    repeats.push((*col, *earlier));
                } else {
                    first_col.insert(*var, *col);
                    if let Some(pos) = bound.iter().position(|b| b == var) {
                        keys.push((*col, pos));
                    } else {
                        fresh.push((*col, *var));
                    }
                }
            }
            let row_matches = |r: usize| -> bool {
                consts.iter().all(|(col, id)| rel.id_at(r, *col) == *id)
                    && repeats
                        .iter()
                        .all(|(col, earlier)| rel.id_at(r, *col) == rel.id_at(r, *earlier))
            };
            if fresh.is_empty() {
                // Semi-join kernel: the atom introduces no new variables, so
                // it only filters existing binding rows by key membership
                // (an all-constant atom has the empty key: it keeps every
                // row iff some stored row matches).
                let mut present: HashSet<Vec<u32>> = HashSet::new();
                for r in 0..rel.rows() {
                    if row_matches(r) {
                        present.insert(keys.iter().map(|(col, _)| rel.id_at(r, *col)).collect());
                    }
                }
                rows.retain(|row| {
                    let probe: Vec<u32> = keys.iter().map(|(_, pos)| row[*pos]).collect();
                    present.contains(&probe)
                });
            } else {
                // Hash-join kernel: index matching relation rows by their
                // join-key projection, probe with every binding row, emit
                // rows extended with the fresh columns.
                let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
                for r in 0..rel.rows() {
                    if row_matches(r) {
                        let key: Vec<u32> =
                            keys.iter().map(|(col, _)| rel.id_at(r, *col)).collect();
                        index.entry(key).or_default().push(r);
                    }
                }
                let mut next = Vec::new();
                for row in &rows {
                    let probe: Vec<u32> = keys.iter().map(|(_, pos)| row[*pos]).collect();
                    if let Some(matches) = index.get(&probe) {
                        for &r in matches {
                            let mut extended = row.clone();
                            extended.extend(fresh.iter().map(|(col, _)| rel.id_at(r, *col)));
                            next.push(extended);
                        }
                    }
                }
                bound.extend(fresh.iter().map(|(_, var)| *var));
                rows = next;
            }
            if rows.is_empty() {
                return Ok(());
            }
        }
        // Filters: ids decide equality directly; ordered comparisons
        // resolve to values (rare in the hot path).
        for filter in &conjunct.filters {
            let side = |term: &PlanTerm, row: &[u32]| -> Option<u32> {
                match term {
                    PlanTerm::Const(v) => symbols.lookup(v).map(Symbol::id),
                    PlanTerm::Var(v) => {
                        let pos = bound.iter().position(|b| b == v).expect("filter var bound");
                        Some(row[pos])
                    }
                }
            };
            rows.retain(|row| {
                let left = side(&filter.left, row);
                let right = side(&filter.right, row);
                match (filter.op, left, right) {
                    (CompareOp::Eq, Some(l), Some(r)) => l == r,
                    (CompareOp::Eq, _, _) => false, // unseen const equals nothing stored
                    (CompareOp::Neq, Some(l), Some(r)) => l != r,
                    (CompareOp::Neq, _, _) => true,
                    (op, l, r) => {
                        // Ordered comparison: fall back to value order. An
                        // unseen constant resolves from the filter itself.
                        let resolve = |term: &PlanTerm, id: Option<u32>| -> Value {
                            match (term, id) {
                                (_, Some(id)) => symbols.resolve(Symbol::from_id(id)),
                                (PlanTerm::Const(v), None) => v.clone(),
                                (PlanTerm::Var(_), None) => unreachable!("vars always resolve"),
                            }
                        };
                        op.apply(&resolve(&filter.left, l), &resolve(&filter.right, r))
                    }
                }
            });
        }
        // Project onto the output variables.
        for row in rows {
            out.insert(
                self.output
                    .iter()
                    .map(|var| {
                        let pos = bound.iter().position(|b| b == var).expect("output bound");
                        row[pos]
                    })
                    .collect(),
            );
        }
        Ok(())
    }

    /// Materialize id rows back into tuples — the single point where the
    /// columnar plane touches strings again.
    pub fn materialize(rows: &BTreeSet<Vec<u32>>, symbols: &SymbolTable) -> BTreeSet<Tuple> {
        rows.iter()
            .map(|row| {
                Tuple::from(
                    row.iter()
                        .map(|id| symbols.resolve(Symbol::from_id(*id)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryEvaluator;
    use crate::schema::RelationSchema;

    fn fixture() -> (Database, Arc<SymbolTable>, ColumnarDatabase) {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R", &["a", "b"])));
        db.add_relation(Relation::new(RelationSchema::new("S", &["b", "c"])));
        for (x, y) in [("a", "b"), ("b", "c"), ("c", "c"), ("d", "d")] {
            db.insert("R", Tuple::strs([x, y])).unwrap();
        }
        for (x, y) in [("b", "1"), ("c", "2"), ("z", "3")] {
            db.insert("S", Tuple::strs([x, y])).unwrap();
        }
        let symbols = Arc::new(SymbolTable::new());
        let columnar = ColumnarDatabase::from_database(&db, &symbols);
        (db, symbols, columnar)
    }

    fn check_matches_evaluator(q: &Formula, free: &[&str]) {
        let (db, symbols, columnar) = fixture();
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        let plan = CqPlan::compile(q, &free).expect("plan should compile");
        let rows = plan.answers(&columnar).unwrap();
        let got = CqPlan::materialize(&rows, &symbols);
        let want = QueryEvaluator::new(&db).answers(q, &free).unwrap();
        assert_eq!(got, want, "query {q}");
    }

    #[test]
    fn single_atom_scan() {
        check_matches_evaluator(&Formula::atom("R", vec!["X", "Y"]), &["X", "Y"]);
    }

    #[test]
    fn projection_via_exists() {
        let q = Formula::exists(vec!["Y"], Formula::atom("R", vec!["X", "Y"]));
        check_matches_evaluator(&q, &["X"]);
    }

    #[test]
    fn hash_join_across_relations() {
        // R(X, Y) ∧ S(Y, Z)
        let q = Formula::and(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::atom("S", vec!["Y", "Z"]),
        ]);
        check_matches_evaluator(&q, &["X", "Y", "Z"]);
    }

    #[test]
    fn semi_join_filters_bound_rows() {
        // ∃Z: R(X, Y) ∧ S(Y, Z) projected to X — second atom partly fresh;
        // ∃: R(X, Y) ∧ S(X, Y) — second atom fully bound (semi-join).
        let q = Formula::exists(
            vec!["Z"],
            Formula::and(vec![
                Formula::atom("R", vec!["X", "Y"]),
                Formula::atom("S", vec!["Y", "Z"]),
            ]),
        );
        check_matches_evaluator(&q, &["X"]);
        let q2 = Formula::and(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::atom("S", vec!["X", "Y"]),
        ]);
        check_matches_evaluator(&q2, &["X", "Y"]);
    }

    #[test]
    fn repeated_variables_and_constants() {
        // R(X, X) — intra-atom repeat.
        check_matches_evaluator(&Formula::atom("R", vec!["X", "X"]), &["X"]);
        // R(c, Y) — constant position.
        let q = Formula::atom_terms("R", vec![Term::cnst("c"), Term::var("Y")]);
        check_matches_evaluator(&q, &["Y"]);
    }

    #[test]
    fn unseen_constant_matches_nothing() {
        let (_, symbols, columnar) = fixture();
        let q = Formula::atom_terms("R", vec![Term::cnst("never-stored"), Term::var("Y")]);
        let plan = CqPlan::compile(&q, &["Y".to_string()]).unwrap();
        assert!(plan.answers(&columnar).unwrap().is_empty());
        // The query constant must not leak into the store's table.
        assert_eq!(symbols.lookup(&Value::str("never-stored")), None);
    }

    #[test]
    fn comparison_filters() {
        let neq = Formula::and(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::compare(CompareOp::Neq, Term::var("X"), Term::var("Y")),
        ]);
        check_matches_evaluator(&neq, &["X", "Y"]);
        let lt = Formula::and(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::compare(CompareOp::Lt, Term::var("X"), Term::cnst("c")),
        ]);
        check_matches_evaluator(&lt, &["X", "Y"]);
    }

    #[test]
    fn union_of_conjuncts() {
        let q = Formula::Or(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::atom("S", vec!["X", "Y"]),
        ]);
        check_matches_evaluator(&q, &["X", "Y"]);
    }

    #[test]
    fn missing_relation_is_empty() {
        let (_, _, columnar) = fixture();
        let q = Formula::atom("Elsewhere", vec!["X"]);
        let plan = CqPlan::compile(&q, &["X".to_string()]).unwrap();
        assert!(plan.answers(&columnar).unwrap().is_empty());
    }

    #[test]
    fn arity_mismatch_errors_like_the_evaluator() {
        let (_, _, columnar) = fixture();
        let q = Formula::atom("R", vec!["X"]);
        let plan = CqPlan::compile(&q, &["X".to_string()]).unwrap();
        assert!(matches!(
            plan.answers(&columnar),
            Err(RelalgError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn out_of_fragment_formulas_do_not_compile() {
        let x = "X".to_string();
        // Negation.
        assert!(CqPlan::compile(
            &Formula::not(Formula::atom("R", vec!["X", "Y"])),
            std::slice::from_ref(&x)
        )
        .is_none());
        // Unbound free variable in a disjunct.
        let q = Formula::Or(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::atom("S", vec!["Z", "W"]),
        ]);
        assert!(CqPlan::compile(&q, &[x.clone(), "Y".to_string()]).is_none());
        // Filter over a variable no atom binds.
        let q = Formula::and(vec![
            Formula::atom("R", vec!["X", "Y"]),
            Formula::compare(CompareOp::Eq, Term::var("Free"), Term::cnst("v")),
        ]);
        assert!(CqPlan::compile(&q, &[x]).is_none());
    }

    #[test]
    fn exact_bytes_counts_ids() {
        let (_, _, columnar) = fixture();
        let r = columnar.relation("R").unwrap();
        // 4 rows × 2 columns × 4 bytes + name
        assert_eq!(r.exact_bytes(), 1 + 32);
        assert_eq!(columnar.exact_bytes(), 32 + (16 + 1 + 32) + (16 + 1 + 24));
    }

    #[test]
    fn columnar_rows_follow_relation_order() {
        let (db, symbols, columnar) = fixture();
        let rel = db.relation("R").unwrap();
        let col = columnar.relation("R").unwrap();
        for (row, tuple) in rel.iter().enumerate() {
            for (c, value) in tuple.iter().enumerate() {
                assert_eq!(symbols.resolve(Symbol::from_id(col.id_at(row, c))), *value);
            }
        }
    }
}

//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// A relation was referenced that the database / schema does not declare.
    UnknownRelation(String),
    /// A tuple's arity does not match its relation's arity.
    ArityMismatch {
        /// The relation whose arity was violated.
        relation: String,
        /// The arity the relation declares.
        expected: usize,
        /// The arity of the offending tuple or atom.
        found: usize,
    },
    /// Two different signatures were declared for the same relation name.
    SchemaConflict {
        /// The relation declared twice.
        relation: String,
        /// The signature already registered.
        existing: String,
        /// The conflicting new signature.
        new: String,
    },
    /// A query used a variable in a position where it is not bound
    /// (e.g. a free variable of a negated subformula in an unsafe position).
    UnboundVariable(String),
    /// A query referenced an attribute position outside a relation's arity.
    PositionOutOfRange {
        /// The relation being indexed.
        relation: String,
        /// The out-of-range attribute position.
        position: usize,
    },
    /// Generic evaluation failure with a human-readable explanation.
    Evaluation(String),
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            RelalgError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, found {found}"
            ),
            RelalgError::SchemaConflict {
                relation,
                existing,
                new,
            } => write!(
                f,
                "conflicting declarations for relation `{relation}`: `{existing}` vs `{new}`"
            ),
            RelalgError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            RelalgError::PositionOutOfRange { relation, position } => {
                write!(
                    f,
                    "position {position} out of range for relation `{relation}`"
                )
            }
            RelalgError::Evaluation(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for RelalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelalgError::UnknownRelation("R9".into());
        assert!(e.to_string().contains("R9"));
        let e = RelalgError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = RelalgError::UnboundVariable("X".into());
        assert!(e.to_string().contains('X'));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&RelalgError::Evaluation("boom".into()));
    }
}

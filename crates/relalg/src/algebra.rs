//! A small relational-algebra layer.
//!
//! The first-order evaluator in [`crate::query::eval`] is the semantic
//! reference; this module provides a set-at-a-time algebra (selection,
//! projection, natural join, union, difference, rename) over *named* columns
//! that is convenient for the conjunctive-query fast paths used by the
//! rewriting engine and the workload generator, and for assembling benchmark
//! result tables.

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A materialized intermediate result: a header of column names plus rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<String>,
    rows: BTreeSet<Tuple>,
}

impl Table {
    /// Create an empty table with the given columns.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(columns: I) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: BTreeSet::new(),
        }
    }

    /// Build a table from a relation instance, using the relation's attribute
    /// names as columns.
    pub fn from_relation(rel: &Relation) -> Self {
        Table {
            columns: rel.schema().attributes().to_vec(),
            rows: rel.tuples().clone(),
        }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows in sorted order.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add a row. The row's arity must match the number of columns; rows with
    /// the wrong arity are rejected with `false`.
    pub fn push(&mut self, row: Tuple) -> bool {
        if row.arity() != self.columns.len() {
            return false;
        }
        self.rows.insert(row)
    }

    /// Position of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Selection: keep rows satisfying the predicate.
    pub fn select<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Table {
        Table {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Selection on a column = constant.
    pub fn select_eq(&self, column: &str, value: &Value) -> Table {
        match self.column_index(column) {
            Some(idx) => self.select(|t| t.get(idx) == Some(value)),
            None => Table::new(self.columns.clone()),
        }
    }

    /// Projection onto a list of columns (columns may repeat / reorder).
    /// Unknown columns are ignored.
    pub fn project<S: AsRef<str>>(&self, columns: &[S]) -> Table {
        let positions: Vec<usize> = columns
            .iter()
            .filter_map(|c| self.column_index(c.as_ref()))
            .collect();
        let kept: Vec<String> = positions.iter().map(|&i| self.columns[i].clone()).collect();
        let mut out = Table::new(kept);
        for row in &self.rows {
            if let Some(p) = row.project(&positions) {
                out.rows.insert(p);
            }
        }
        out
    }

    /// Rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Table {
        Table {
            columns: self
                .columns
                .iter()
                .map(|c| if c == from { to.to_string() } else { c.clone() })
                .collect(),
            rows: self.rows.clone(),
        }
    }

    /// Natural join on shared column names.
    pub fn natural_join(&self, other: &Table) -> Table {
        let shared: Vec<(usize, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| other.column_index(c).map(|j| (i, j)))
            .collect();
        let other_extra: Vec<usize> = (0..other.columns.len())
            .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
            .collect();

        let mut columns = self.columns.clone();
        columns.extend(other_extra.iter().map(|&j| other.columns[j].clone()));
        let mut out = Table::new(columns);

        // Hash-join on the shared columns.
        let mut index: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
        for row in &other.rows {
            let key: Vec<Value> = shared.iter().map(|&(_, j)| row[j].clone()).collect();
            index.entry(key).or_default().push(row);
        }
        for row in &self.rows {
            let key: Vec<Value> = shared.iter().map(|&(i, _)| row[i].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut values: Vec<Value> = row.values().to_vec();
                    values.extend(other_extra.iter().map(|&j| m[j].clone()));
                    out.rows.insert(Tuple::new(values));
                }
            }
        }
        out
    }

    /// Set union; both tables must have identical headers, otherwise the
    /// left operand is returned unchanged.
    pub fn union(&self, other: &Table) -> Table {
        if self.columns != other.columns {
            return self.clone();
        }
        Table {
            columns: self.columns.clone(),
            rows: self.rows.union(&other.rows).cloned().collect(),
        }
    }

    /// Set difference; both tables must have identical headers, otherwise the
    /// left operand is returned unchanged.
    pub fn difference(&self, other: &Table) -> Table {
        if self.columns != other.columns {
            return self.clone();
        }
        Table {
            columns: self.columns.clone(),
            rows: self.rows.difference(&other.rows).cloned().collect(),
        }
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> BTreeSet<Tuple> {
        self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn table(cols: &[&str], rows: &[&[&str]]) -> Table {
        let mut t = Table::new(cols.iter().copied());
        for r in rows {
            assert!(t.push(Tuple::strs(r.iter().copied())));
        }
        t
    }

    #[test]
    fn from_relation_uses_attribute_names() {
        let rel = Relation::with_tuples(
            RelationSchema::new("R", &["x", "y"]),
            [Tuple::strs(["a", "b"])],
        )
        .unwrap();
        let t = Table::from_relation(&rel);
        assert_eq!(t.columns(), &["x", "y"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn push_rejects_wrong_arity() {
        let mut t = Table::new(["x", "y"]);
        assert!(!t.push(Tuple::strs(["only"])));
        assert!(t.is_empty());
    }

    #[test]
    fn select_eq_and_project() {
        let t = table(&["x", "y"], &[&["a", "b"], &["a", "c"], &["d", "e"]]);
        let s = t.select_eq("x", &Value::str("a"));
        assert_eq!(s.len(), 2);
        let p = s.project(&["y"]);
        assert_eq!(p.columns(), &["y"]);
        assert_eq!(p.len(), 2);
        // Unknown column in select yields empty table.
        assert!(t.select_eq("zzz", &Value::str("a")).is_empty());
    }

    #[test]
    fn natural_join_matches_on_shared_columns() {
        let r = table(&["x", "y"], &[&["a", "b"], &["s", "t"]]);
        let s = table(&["x", "z"], &[&["a", "f"], &["s", "u"], &["q", "w"]]);
        let j = r.natural_join(&s);
        assert_eq!(j.columns(), &["x", "y", "z"]);
        assert_eq!(j.len(), 2);
        assert!(j.rows().any(|t| t == &Tuple::strs(["a", "b", "f"])));
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let r = table(&["x"], &[&["a"], &["b"]]);
        let s = table(&["y"], &[&["1"], &["2"]]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn union_and_difference_require_same_header() {
        let a = table(&["x"], &[&["a"], &["b"]]);
        let b = table(&["x"], &[&["b"], &["c"]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b).len(), 1);
        let other_header = table(&["y"], &[&["z"]]);
        assert_eq!(a.union(&other_header), a);
        assert_eq!(a.difference(&other_header), a);
    }

    #[test]
    fn rename_changes_header_only() {
        let a = table(&["x"], &[&["a"]]);
        let r = a.rename("x", "w");
        assert_eq!(r.columns(), &["w"]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn display_renders_markdown_like_table() {
        let a = table(&["x", "y"], &[&["a", "b"]]);
        let s = a.to_string();
        assert!(s.contains("| x | y |"));
        assert!(s.contains("| a | b |"));
    }
}

//! Symbol interning: the front door of the columnar data plane.
//!
//! The paper's semantics never needs late-bound symbols — the shared domain
//! and every relation/attribute name are fixed once the `P2PSystem` is
//! built — so all layers above `relalg` can trade boxed [`Value`]s and
//! `String` keys for dense `u32` [`Symbol`]s minted here. A [`SymbolTable`]
//! is built at store construction, extended (append-only) as commits
//! introduce new constants, and shared by `Arc` with every snapshot pinned
//! from the store: a symbol minted once means the same value forever, so
//! readers never need to re-intern.
//!
//! Two properties the rest of the stack relies on:
//!
//! * **Round-tripping** — `table.intern(&table.resolve(s)) == s` for every
//!   symbol `s` the table has minted, by construction (interning is a
//!   bijection between minted symbols and distinct values).
//! * **Append-only** — symbols are never re-assigned or garbage collected;
//!   a `u32` id embedded in a cached columnar block stays valid for the
//!   lifetime of the table.
//!
//! The table also memoizes the rendered text of each symbol
//! ([`SymbolTable::resolve_text`]) so the ASP fact encoder can emit one
//! shared `Arc<str>` per distinct constant instead of re-allocating the
//! rendering for every occurrence of every tuple.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A dense interned id for one distinct [`Value`] (or name) of a
/// [`SymbolTable`].
///
/// `Symbol`s are plain `u32`s: cheap to copy, hash and compare, and small
/// enough that a relation column packs sixteen of them per cache line.
/// Symbols from *different* tables are not comparable; the stack avoids
/// confusion by owning exactly one table per store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw id (an index into the owning table).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Reconstruct a symbol from a raw id previously obtained via
    /// [`Symbol::id`]. The caller is responsible for pairing it with the
    /// table that minted the id.
    pub fn from_id(id: u32) -> Symbol {
        Symbol(id)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interior state guarded by the table's lock.
struct Inner {
    /// Symbol id → value (the resolve direction).
    values: Vec<Value>,
    /// Symbol id → memoized rendered text (lazily filled).
    texts: Vec<Option<Arc<str>>>,
    /// Value → symbol id (the intern direction).
    ids: HashMap<Value, u32>,
}

/// A thread-safe, append-only intern table mapping distinct [`Value`]s
/// (constants, relation names, attribute names) to dense [`Symbol`] ids.
///
/// Reads ([`resolve`](SymbolTable::resolve), [`lookup`](SymbolTable::lookup))
/// take a shared lock; interning takes the exclusive lock only when the
/// value is actually new. The table is designed to be built once at store
/// construction and shared by `Arc` with snapshots, engines and cached
/// columnar blocks.
///
/// # Examples
///
/// ```
/// use relalg::{SymbolTable, Value};
///
/// let table = SymbolTable::new();
/// let a = table.intern(&Value::str("a"));
/// assert_eq!(table.intern(&Value::str("a")), a); // stable
/// assert_eq!(table.resolve(a), Value::str("a")); // round-trips
/// assert_eq!(table.intern(&table.resolve(a)), a);
/// ```
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        SymbolTable {
            inner: RwLock::new(Inner {
                values: Vec::new(),
                texts: Vec::new(),
                ids: HashMap::new(),
            }),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Intern a value, minting a fresh symbol if it has not been seen.
    ///
    /// Idempotent: interning the same value always returns the same symbol.
    pub fn intern(&self, value: &Value) -> Symbol {
        if let Some(id) = self.read().ids.get(value) {
            return Symbol(*id);
        }
        let mut inner = self.write();
        if let Some(id) = inner.ids.get(value) {
            return Symbol(*id);
        }
        let id = u32::try_from(inner.values.len()).expect("symbol table overflow");
        inner.values.push(value.clone());
        inner.texts.push(None);
        inner.ids.insert(value.clone(), id);
        Symbol(id)
    }

    /// Intern a name (relation or attribute) as a string value.
    pub fn intern_name(&self, name: &str) -> Symbol {
        self.intern(&Value::str(name))
    }

    /// Look a value up without minting: `None` if the value was never
    /// interned. Queries use this for their constants — a constant the
    /// store has never seen cannot match any stored tuple.
    pub fn lookup(&self, value: &Value) -> Option<Symbol> {
        self.read().ids.get(value).map(|id| Symbol(*id))
    }

    /// The value a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was not minted by this table.
    pub fn resolve(&self, symbol: Symbol) -> Value {
        self.read().values[symbol.0 as usize].clone()
    }

    /// The memoized rendered text of a symbol's value (see
    /// [`Value::render`]). All callers share one `Arc<str>` per symbol,
    /// which is what lets the ASP encoder stop re-allocating constant text
    /// for every tuple occurrence.
    pub fn resolve_text(&self, symbol: Symbol) -> Arc<str> {
        if let Some(text) = &self.read().texts[symbol.0 as usize] {
            return Arc::clone(text);
        }
        let mut inner = self.write();
        if let Some(text) = &inner.texts[symbol.0 as usize] {
            return Arc::clone(text);
        }
        let text: Arc<str> = match &inner.values[symbol.0 as usize] {
            // Strings share the value's own payload; no new allocation.
            Value::Str(s) => Arc::clone(s),
            other => Arc::from(other.render().as_ref()),
        };
        inner.texts[symbol.0 as usize] = Some(Arc::clone(&text));
        text
    }

    /// Intern a value and return its shared rendered text in one step.
    pub fn render_shared(&self, value: &Value) -> Arc<str> {
        let symbol = self.intern(value);
        self.resolve_text(symbol)
    }

    /// Number of distinct symbols minted so far.
    pub fn len(&self) -> usize {
        self.read().values.len()
    }

    /// True if no symbol has been minted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact resident bytes of the table's payload, deterministic across
    /// platforms: per symbol, the id (4 bytes in the reverse map plus 4 in
    /// each forward slot), a one-byte value tag, and the value payload
    /// (string bytes, 8 for integers, 1 for booleans, 0 for null). Memoized
    /// renderings that alias the string payload are not double counted.
    pub fn resident_bytes(&self) -> usize {
        let inner = self.read();
        let mut bytes = 0usize;
        for (value, text) in inner.values.iter().zip(inner.texts.iter()) {
            bytes += 8 + 1 + value_payload_bytes(value);
            if let Some(text) = text {
                if !matches!(value, Value::Str(_)) {
                    bytes += text.len();
                }
            }
        }
        bytes
    }

    /// Intern every value of the tuple, in order.
    pub fn intern_tuple(&self, tuple: &crate::Tuple) -> Vec<Symbol> {
        tuple.iter().map(|v| self.intern(v)).collect()
    }

    /// Intern everything a database instance mentions: relation names,
    /// attribute names and every constant of every tuple. Stores call this
    /// at construction so the table fronts the whole pipeline.
    pub fn intern_database(&self, db: &crate::Database) {
        for relation in db.relations() {
            self.intern_name(relation.name());
            for attr in relation.schema().attributes() {
                self.intern_name(attr);
            }
            for tuple in relation.iter() {
                for value in tuple.iter() {
                    self.intern(value);
                }
            }
        }
    }
}

/// Deterministic payload size of a value (see
/// [`SymbolTable::resident_bytes`]).
fn value_payload_bytes(value: &Value) -> usize {
    match value {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 8,
        Value::Str(s) => s.len(),
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable::new()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tuple;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let table = SymbolTable::new();
        let a = table.intern(&Value::str("a"));
        let b = table.intern(&Value::str("b"));
        assert_ne!(a, b);
        assert_eq!(table.intern(&Value::str("a")), a);
        assert_eq!(table.len(), 2);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
    }

    #[test]
    fn resolve_round_trips_every_value_class() {
        let table = SymbolTable::new();
        for v in [
            Value::Null,
            Value::bool(true),
            Value::int(-42),
            Value::str("peer"),
        ] {
            let s = table.intern(&v);
            assert_eq!(table.resolve(s), v);
            assert_eq!(table.intern(&table.resolve(s)), s);
        }
    }

    #[test]
    fn lookup_does_not_mint() {
        let table = SymbolTable::new();
        assert_eq!(table.lookup(&Value::str("ghost")), None);
        assert!(table.is_empty());
        let s = table.intern(&Value::str("real"));
        assert_eq!(table.lookup(&Value::str("real")), Some(s));
    }

    #[test]
    fn resolve_text_is_shared_and_stable() {
        let table = SymbolTable::new();
        let s = table.intern(&Value::int(7));
        let t1 = table.resolve_text(s);
        let t2 = table.resolve_text(s);
        assert_eq!(&*t1, "7");
        assert!(Arc::ptr_eq(&t1, &t2));
        // String symbols alias the value's own payload.
        let name = table.intern(&Value::str("R1"));
        assert_eq!(&*table.resolve_text(name), "R1");
    }

    #[test]
    fn resident_bytes_is_exact_and_monotone() {
        let table = SymbolTable::new();
        assert_eq!(table.resident_bytes(), 0);
        table.intern(&Value::str("abc"));
        // 8 (ids) + 1 (tag) + 3 (payload)
        assert_eq!(table.resident_bytes(), 12);
        table.intern(&Value::int(5));
        assert_eq!(table.resident_bytes(), 12 + 17);
        // Memoizing an integer rendering adds its text bytes once.
        let five = table.lookup(&Value::int(5)).unwrap();
        table.resolve_text(five);
        assert_eq!(table.resident_bytes(), 12 + 17 + 1);
        // String renderings alias the payload: no growth.
        let abc = table.lookup(&Value::str("abc")).unwrap();
        table.resolve_text(abc);
        assert_eq!(table.resident_bytes(), 12 + 17 + 1);
    }

    #[test]
    fn intern_tuple_preserves_positions() {
        let table = SymbolTable::new();
        let syms = table.intern_tuple(&Tuple::strs(["x", "y", "x"]));
        assert_eq!(syms.len(), 3);
        assert_eq!(syms[0], syms[2]);
        assert_ne!(syms[0], syms[1]);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let table = Arc::new(SymbolTable::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| table.intern(&Value::int(i)).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(table.len(), 100);
    }
}

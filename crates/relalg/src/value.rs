//! Values of the shared data domain.
//!
//! The paper assumes all peers share "a common, fixed, possibly infinite
//! domain `D`" (Definition 2(b)). We model domain elements as [`Value`]s:
//! integers, strings, booleans and a distinguished `Null`. Values are totally
//! ordered so that relations can be stored in ordered sets with deterministic
//! iteration order, which keeps repairs, solutions and answer sets
//! reproducible across runs.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single domain element.
///
/// `Value` is cheap to clone: string payloads are reference counted. The
/// ordering is total and places `Null < Bool < Int < Str`, with the natural
/// order inside each class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The distinguished null value. It is *not* SQL null: it compares equal
    /// to itself and participates in joins; it exists so that generated
    /// witnesses can be represented when no active-domain witness is chosen.
    Null,
    /// Boolean constant.
    Bool(bool),
    /// 64-bit signed integer constant.
    Int(i64),
    /// Interned string constant.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Construct a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// True if this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Return the string payload if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Return the integer payload if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short human-readable rendering used by the DSL printer and the
    /// benchmark harness tables.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("null"),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }

    /// Discriminant rank used by the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn string_values_compare_naturally() {
        assert!(Value::str("a") < Value::str("b"));
        assert_eq!(Value::str("abc"), Value::str("abc"));
    }

    #[test]
    fn cross_class_order_is_total_and_stable() {
        let mut values = vec![
            Value::str("z"),
            Value::int(-4),
            Value::Null,
            Value::bool(true),
            Value::bool(false),
            Value::int(10),
            Value::str("a"),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::bool(false),
                Value::bool(true),
                Value::int(-4),
                Value::int(10),
                Value::str("a"),
                Value::str("z"),
            ]
        );
    }

    #[test]
    fn values_work_as_set_elements() {
        let mut set = BTreeSet::new();
        set.insert(Value::str("a"));
        set.insert(Value::str("a"));
        set.insert(Value::int(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn render_round_trips_simple_cases() {
        assert_eq!(Value::str("peer").render(), "peer");
        assert_eq!(Value::int(42).render(), "42");
        assert_eq!(Value::bool(true).render(), "true");
        assert_eq!(Value::Null.render(), "null");
    }

    #[test]
    fn conversions_from_primitive_types() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::str("v").as_str(), Some("v"));
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn null_equals_itself_for_join_semantics() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.cmp(&Value::Null), Ordering::Equal);
    }
}

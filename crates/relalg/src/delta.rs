//! Symmetric difference of instances and the `≤_r` repair ordering.
//!
//! Definition 1 of the paper:
//!
//! * `Δ(r1, r2) = (Σ(r1) \ Σ(r2)) ∪ (Σ(r2) \ Σ(r1))` — the symmetric
//!   difference of the sets of ground atoms;
//! * `r1 ≤_r r2  iff  Δ(r, r1) ⊆ Δ(r, r2)` — "r1 changes r at most as much
//!   as r2 does";
//! * a *repair* of `r` w.r.t. a set of constraints is a `≤_r`-minimal
//!   consistent instance.
//!
//! [`Delta`] materializes a symmetric difference split into insertions and
//! deletions relative to a base instance, which is the form the repair and
//! solution engines need.

use crate::database::{Database, GroundAtom};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The difference of a candidate instance relative to a base instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delta {
    /// Atoms present in the candidate but not in the base.
    pub insertions: BTreeSet<GroundAtom>,
    /// Atoms present in the base but not in the candidate.
    pub deletions: BTreeSet<GroundAtom>,
}

/// Result of comparing two deltas under set inclusion of their atom sets.
///
/// Inclusion of symmetric differences is a *partial* order, so incomparable
/// pairs are explicitly represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOrdering {
    /// The two deltas contain exactly the same changes.
    Equal,
    /// The left delta is a strict subset of the right one.
    Less,
    /// The left delta is a strict superset of the right one.
    Greater,
    /// Neither is contained in the other.
    Incomparable,
}

impl Delta {
    /// The empty delta (no change).
    pub fn empty() -> Self {
        Delta::default()
    }

    /// Compute `Δ(base, candidate)` split into insertions and deletions.
    pub fn between(base: &Database, candidate: &Database) -> Delta {
        let base_atoms = base.ground_atoms();
        let cand_atoms = candidate.ground_atoms();
        Delta {
            insertions: cand_atoms.difference(&base_atoms).cloned().collect(),
            deletions: base_atoms.difference(&cand_atoms).cloned().collect(),
        }
    }

    /// Build a delta from explicit insertion and deletion sets.
    pub fn from_changes(
        insertions: impl IntoIterator<Item = GroundAtom>,
        deletions: impl IntoIterator<Item = GroundAtom>,
    ) -> Delta {
        Delta {
            insertions: insertions.into_iter().collect(),
            deletions: deletions.into_iter().collect(),
        }
    }

    /// The flat symmetric-difference set `Δ(r1, r2)` of Definition 1(a).
    pub fn atoms(&self) -> BTreeSet<GroundAtom> {
        self.insertions.union(&self.deletions).cloned().collect()
    }

    /// Number of changed atoms.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True when no atom changed.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Whether every change in `self` is also in `other` (the `⊆` of
    /// Definition 1(b)).
    pub fn is_subset_of(&self, other: &Delta) -> bool {
        self.insertions.is_subset(&other.insertions) && self.deletions.is_subset(&other.deletions)
    }

    /// Compare two deltas under inclusion of their change sets.
    pub fn compare(&self, other: &Delta) -> DeltaOrdering {
        let le = self.is_subset_of(other);
        let ge = other.is_subset_of(self);
        match (le, ge) {
            (true, true) => DeltaOrdering::Equal,
            (true, false) => DeltaOrdering::Less,
            (false, true) => DeltaOrdering::Greater,
            (false, false) => DeltaOrdering::Incomparable,
        }
    }

    /// Apply this delta to a base instance.
    pub fn apply(&self, base: &Database) -> crate::Result<Database> {
        base.apply_changes(self.insertions.iter(), self.deletions.iter())
    }

    /// Merge two deltas (union of insertions, union of deletions). If the
    /// same atom appears both as an insertion of one delta and a deletion of
    /// the other the result is kept as-is; callers that need cancellation
    /// should recompute the delta from instances instead.
    pub fn merge(&self, other: &Delta) -> Delta {
        Delta {
            insertions: self.insertions.union(&other.insertions).cloned().collect(),
            deletions: self.deletions.union(&other.deletions).cloned().collect(),
        }
    }

    /// The relations this delta touches (insertions or deletions), the unit
    /// at which cache layers decide whether a grounded artifact can observe
    /// the change.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.insertions
            .iter()
            .chain(self.deletions.iter())
            .map(|atom| atom.relation.as_str())
            .collect()
    }

    /// The per-relation tuple sets of this delta: relation name →
    /// (inserted tuples, deleted tuples). The shape delta-driven incremental
    /// grounding consumes.
    pub fn by_relation(
        &self,
    ) -> BTreeMap<String, (BTreeSet<crate::Tuple>, BTreeSet<crate::Tuple>)> {
        let mut out: BTreeMap<String, (BTreeSet<crate::Tuple>, BTreeSet<crate::Tuple>)> =
            BTreeMap::new();
        for atom in &self.insertions {
            out.entry(atom.relation.clone())
                .or_default()
                .0
                .insert(atom.tuple.clone());
        }
        for atom in &self.deletions {
            out.entry(atom.relation.clone())
                .or_default()
                .1
                .insert(atom.tuple.clone());
        }
        out
    }

    /// Sequential composition: the net delta of applying `self` and then
    /// `later`. Unlike [`Delta::merge`] (a plain union), composition
    /// cancels: an atom inserted by `self` and deleted by `later` (or vice
    /// versa) disappears from the result. Both deltas must be *exact* for
    /// the instances they were applied to (as [`Delta::between`] and
    /// normalized commits guarantee), which makes the result exact for the
    /// original base instance.
    pub fn compose(&self, later: &Delta) -> Delta {
        let mut insertions = self.insertions.clone();
        let mut deletions = self.deletions.clone();
        for atom in &later.insertions {
            if !deletions.remove(atom) {
                insertions.insert(atom.clone());
            }
        }
        for atom in &later.deletions {
            if !insertions.remove(atom) {
                deletions.insert(atom.clone());
            }
        }
        Delta {
            insertions,
            deletions,
        }
    }

    /// The inverse delta: insertions and deletions swapped. Applying a delta
    /// and then its inverse round-trips an instance, provided the delta was
    /// *exact* for it (its insertions absent from and its deletions present
    /// in the instance — which `Delta::between` guarantees for its base).
    pub fn inverse(&self) -> Delta {
        Delta {
            insertions: self.deletions.clone(),
            deletions: self.insertions.clone(),
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for atom in &self.insertions {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "+{atom}")?;
            first = false;
        }
        for atom in &self.deletions {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "-{atom}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Keep only the `⊆`-minimal deltas of a collection, deduplicating equals.
///
/// This is the minimality filter shared by the repair engine (Definition 1(c))
/// and the solution engine (Definition 4): a candidate survives iff no other
/// candidate changes strictly less.
pub fn minimal_deltas<T, F>(mut candidates: Vec<T>, delta_of: F) -> Vec<T>
where
    F: Fn(&T) -> &Delta,
{
    let mut keep = vec![true; candidates.len()];
    for i in 0..candidates.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..candidates.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            match delta_of(&candidates[i]).compare(delta_of(&candidates[j])) {
                DeltaOrdering::Greater => keep[i] = false,
                DeltaOrdering::Equal if j < i => keep[i] = false,
                _ => {}
            }
        }
    }
    let mut idx = 0;
    candidates.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    candidates
}

impl PartialOrd for Delta {
    /// Partial order under change-set inclusion; incomparable pairs return `None`.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.compare(other) {
            DeltaOrdering::Equal => Some(Ordering::Equal),
            DeltaOrdering::Less => Some(Ordering::Less),
            DeltaOrdering::Greater => Some(Ordering::Greater),
            DeltaOrdering::Incomparable => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::RelationSchema;
    use crate::tuple::Tuple;

    fn db(pairs: &[(&str, &str)]) -> Database {
        let mut d = Database::new();
        d.add_relation(Relation::new(RelationSchema::new("R", &["x", "y"])));
        for (a, b) in pairs {
            d.insert("R", Tuple::strs([*a, *b])).unwrap();
        }
        d
    }

    fn atom(a: &str, b: &str) -> GroundAtom {
        GroundAtom::new("R", Tuple::strs([a, b]))
    }

    #[test]
    fn between_splits_insertions_and_deletions() {
        let base = db(&[("a", "b"), ("c", "d")]);
        let cand = db(&[("a", "b"), ("e", "f")]);
        let delta = Delta::between(&base, &cand);
        assert_eq!(delta.insertions, BTreeSet::from([atom("e", "f")]));
        assert_eq!(delta.deletions, BTreeSet::from([atom("c", "d")]));
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.atoms().len(), 2);
    }

    #[test]
    fn identical_instances_have_empty_delta() {
        let base = db(&[("a", "b")]);
        assert!(Delta::between(&base, &base.clone()).is_empty());
    }

    #[test]
    fn delta_is_symmetric_as_a_set() {
        let r1 = db(&[("a", "b")]);
        let r2 = db(&[("c", "d")]);
        let d12 = Delta::between(&r1, &r2);
        let d21 = Delta::between(&r2, &r1);
        assert_eq!(d12.atoms(), d21.atoms());
    }

    #[test]
    fn compare_implements_inclusion_order() {
        let small = Delta::from_changes([atom("a", "b")], []);
        let large = Delta::from_changes([atom("a", "b")], [atom("c", "d")]);
        let other = Delta::from_changes([atom("x", "y")], []);
        assert_eq!(small.compare(&large), DeltaOrdering::Less);
        assert_eq!(large.compare(&small), DeltaOrdering::Greater);
        assert_eq!(small.compare(&small.clone()), DeltaOrdering::Equal);
        assert_eq!(small.compare(&other), DeltaOrdering::Incomparable);
        assert_eq!(small.partial_cmp(&large), Some(Ordering::Less));
        assert_eq!(small.partial_cmp(&other), None);
    }

    #[test]
    fn apply_round_trips() {
        let base = db(&[("a", "b"), ("c", "d")]);
        let cand = db(&[("a", "b"), ("e", "f")]);
        let delta = Delta::between(&base, &cand);
        assert_eq!(delta.apply(&base).unwrap(), cand);
    }

    #[test]
    fn minimal_deltas_filters_dominated_candidates() {
        let d1 = Delta::from_changes([], [atom("a", "b")]);
        let d2 = Delta::from_changes([], [atom("a", "b"), atom("c", "d")]);
        let d3 = Delta::from_changes([], [atom("x", "y")]);
        let kept = minimal_deltas(vec![d2.clone(), d1.clone(), d3.clone()], |d| d);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&d1));
        assert!(kept.contains(&d3));
        assert!(!kept.contains(&d2));
    }

    #[test]
    fn minimal_deltas_deduplicates_equal_candidates() {
        let d1 = Delta::from_changes([], [atom("a", "b")]);
        let kept = minimal_deltas(vec![d1.clone(), d1.clone(), d1.clone()], |d| d);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn inverse_swaps_and_round_trips() {
        let base = db(&[("a", "b"), ("c", "d")]);
        let cand = db(&[("a", "b"), ("e", "f")]);
        let delta = Delta::between(&base, &cand);
        let inv = delta.inverse();
        assert_eq!(inv.insertions, delta.deletions);
        assert_eq!(inv.deletions, delta.insertions);
        let forward = delta.apply(&base).unwrap();
        assert_eq!(inv.apply(&forward).unwrap(), base);
    }

    #[test]
    fn relations_and_by_relation_partition_the_changes() {
        let d = Delta::from_changes([atom("a", "b")], [atom("c", "d")]);
        assert_eq!(d.relations(), BTreeSet::from(["R"]));
        let by = d.by_relation();
        let (ins, del) = &by["R"];
        assert_eq!(ins.len(), 1);
        assert_eq!(del.len(), 1);
    }

    #[test]
    fn compose_cancels_where_merge_unions() {
        let insert = Delta::from_changes([atom("a", "b")], []);
        let delete = Delta::from_changes([], [atom("a", "b")]);
        // Insert then delete nets to nothing; merge would keep both.
        assert!(insert.compose(&delete).is_empty());
        assert_eq!(insert.merge(&delete).len(), 2);
        // Composition of independent changes is their union.
        let other = Delta::from_changes([atom("x", "y")], []);
        let net = insert.compose(&other);
        assert_eq!(net.insertions.len(), 2);
        // Applying sequentially equals applying the composition.
        let base = db(&[("q", "r")]);
        let step = insert.apply(&base).unwrap();
        let twice = other.apply(&step).unwrap();
        assert_eq!(net.apply(&base).unwrap(), twice);
    }

    #[test]
    fn merge_unions_changes() {
        let d1 = Delta::from_changes([atom("a", "b")], []);
        let d2 = Delta::from_changes([], [atom("c", "d")]);
        let m = d1.merge(&d2);
        assert_eq!(m.len(), 2);
        assert!(m.insertions.contains(&atom("a", "b")));
        assert!(m.deletions.contains(&atom("c", "d")));
    }
}

//! First-order queries and their evaluation.
//!
//! Queries posed to a peer are first-order formulas over the peer's language
//! `L(P)` (Definition 5). This module provides:
//!
//! * [`ast`] — the formula abstract syntax (atoms, built-in comparisons,
//!   boolean connectives, quantifiers) and substitutions;
//! * [`eval`] — a safe-range, active-domain evaluator that computes both
//!   boolean satisfaction (`r |= Q(t̄)`) and the full answer set of a query
//!   with free variables.
//!
//! The evaluator is also used to check constraint satisfaction (constraints
//! are sentences) and to evaluate the first-order rewritings produced by
//! `pdes-core::rewriting` (the Example 2 mechanism).

pub mod ast;
pub mod eval;

pub use ast::{Binding, CompareOp, Formula, Term};
pub use eval::QueryEvaluator;

//! Active-domain evaluation of first-order queries.
//!
//! Two entry points:
//!
//! * [`QueryEvaluator::holds`] — boolean satisfaction `r |= Q` of a sentence
//!   (or of a formula under a given binding of its free variables); used to
//!   check constraints and to test candidate answers;
//! * [`QueryEvaluator::answers`] — the full answer set of a query with free
//!   variables, computed by *safe-range* binding propagation: relational
//!   atoms, conjunctions, disjunctions and existentials produce bindings,
//!   while negation, universals, implications and comparisons act as filters
//!   over bindings that are already complete for their free variables.
//!
//! Quantifiers range over the active domain of the database (all constants
//! appearing in some tuple), which is the standard finite-model reading used
//! by the consistent-query-answering literature the paper builds on.

use crate::database::Database;
use crate::error::RelalgError;
use crate::query::ast::{Binding, Formula, Term};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeSet;

/// Evaluates first-order formulas against a fixed database instance.
pub struct QueryEvaluator<'a> {
    db: &'a Database,
    domain: Vec<Value>,
}

impl<'a> QueryEvaluator<'a> {
    /// Create an evaluator for the given database. The active domain is
    /// computed once and reused by every quantifier.
    pub fn new(db: &'a Database) -> Self {
        let domain: Vec<Value> = db.active_domain().into_iter().collect();
        QueryEvaluator { db, domain }
    }

    /// Create an evaluator with an explicitly supplied domain (used when a
    /// query must range over the active domain of a *larger* instance, e.g.
    /// the union of several peers).
    pub fn with_domain(db: &'a Database, domain: impl IntoIterator<Item = Value>) -> Self {
        let mut dom: BTreeSet<Value> = db.active_domain();
        dom.extend(domain);
        QueryEvaluator {
            db,
            domain: dom.into_iter().collect(),
        }
    }

    /// The active domain used by quantifiers.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// Does the sentence hold in the database? Errors if the formula has
    /// free variables.
    pub fn holds_sentence(&self, formula: &Formula) -> Result<bool> {
        let free = formula.free_variables();
        if let Some(v) = free.into_iter().next() {
            return Err(RelalgError::UnboundVariable(v));
        }
        self.holds(formula, &Binding::new())
    }

    /// Does the formula hold under the given binding? Every free variable of
    /// the formula must be bound.
    pub fn holds(&self, formula: &Formula, binding: &Binding) -> Result<bool> {
        match formula {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom { relation, terms } => {
                let tuple = self.resolve_tuple(terms, binding)?;
                Ok(self.db.holds(relation, &tuple))
            }
            Formula::Compare { op, left, right } => {
                let l = Self::resolve_term(left, binding)?;
                let r = Self::resolve_term(right, binding)?;
                Ok(op.apply(&l, &r))
            }
            Formula::Not(inner) => Ok(!self.holds(inner, binding)?),
            Formula::And(parts) => {
                for p in parts {
                    if !self.holds(p, binding)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(parts) => {
                for p in parts {
                    if self.holds(p, binding)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(lhs, rhs) => {
                Ok(!self.holds(lhs, binding)? || self.holds(rhs, binding)?)
            }
            Formula::Exists(vars, inner) => self.quantify(vars, inner, binding, false),
            Formula::Forall(vars, inner) => self.quantify(vars, inner, binding, true),
        }
    }

    /// Evaluate a quantifier block by iterating assignments of `vars` over
    /// the active domain. `universal == true` computes ∀, otherwise ∃.
    fn quantify(
        &self,
        vars: &[String],
        inner: &Formula,
        binding: &Binding,
        universal: bool,
    ) -> Result<bool> {
        // For ∀ with an implication body whose antecedent contains relational
        // atoms we could enumerate only matching bindings, but the general
        // product over the active domain is kept for clarity; constraints are
        // checked through the `constraints` crate which uses the optimized
        // path in `bindings`.
        let mut stack = vec![binding.clone()];
        for v in vars {
            let mut next = Vec::with_capacity(stack.len() * self.domain.len().max(1));
            for b in &stack {
                for value in &self.domain {
                    let mut nb = b.clone();
                    nb.insert(v.clone(), value.clone());
                    next.push(nb);
                }
            }
            stack = next;
        }
        if universal {
            for b in &stack {
                if !self.holds(inner, b)? {
                    return Ok(false);
                }
            }
            Ok(true)
        } else {
            for b in &stack {
                if self.holds(inner, b)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }

    /// Compute the answer set of a query: all tuples of values for
    /// `free_vars` (in the given order) such that the formula holds.
    ///
    /// The evaluation is *safe-range*: bindings are produced by relational
    /// atoms and combined through conjunction / disjunction / existential
    /// quantification; negated subformulas, universals, implications and
    /// comparisons are evaluated as boolean filters once their free variables
    /// are bound. A query whose disjuncts do not bind all requested variables
    /// is rejected with [`RelalgError::UnboundVariable`].
    pub fn answers(&self, formula: &Formula, free_vars: &[String]) -> Result<BTreeSet<Tuple>> {
        let bindings = self.bindings(formula, &Binding::new())?;
        let mut out = BTreeSet::new();
        for b in bindings {
            let mut values = Vec::with_capacity(free_vars.len());
            for v in free_vars {
                match b.get(v) {
                    Some(value) => values.push(value.clone()),
                    None => return Err(RelalgError::UnboundVariable(v.clone())),
                }
            }
            out.insert(Tuple::new(values));
        }
        Ok(out)
    }

    /// Boolean query: true iff the formula (closed or not) has at least one
    /// satisfying binding.
    pub fn any_answer(&self, formula: &Formula) -> Result<bool> {
        Ok(!self.bindings(formula, &Binding::new())?.is_empty())
    }

    /// Produce all extensions of `input` that satisfy the formula.
    ///
    /// Binding-producing cases return one binding per match; filter cases
    /// return the input binding when the formula holds under it.
    pub fn bindings(&self, formula: &Formula, input: &Binding) -> Result<Vec<Binding>> {
        match formula {
            Formula::True => Ok(vec![input.clone()]),
            Formula::False => Ok(vec![]),
            Formula::Atom { relation, terms } => self.match_atom(relation, terms, input),
            Formula::And(parts) => {
                // Process binding producers before filters so that filters see
                // complete bindings (safe-range ordering).
                let mut producers = Vec::new();
                let mut filters = Vec::new();
                for p in parts {
                    if Self::produces_bindings(p) {
                        producers.push(p);
                    } else {
                        filters.push(p);
                    }
                }
                let mut current = vec![input.clone()];
                for p in producers {
                    let mut next = Vec::new();
                    for b in &current {
                        next.extend(self.bindings(p, b)?);
                    }
                    current = next;
                    if current.is_empty() {
                        return Ok(current);
                    }
                }
                let mut out = Vec::new();
                'outer: for b in current {
                    for p in &filters {
                        if !self.holds_or_bind(p, &b)? {
                            continue 'outer;
                        }
                    }
                    out.push(b);
                }
                Ok(out)
            }
            Formula::Or(parts) => {
                let mut out = Vec::new();
                let mut seen = BTreeSet::new();
                for p in parts {
                    for b in self.bindings(p, input)? {
                        if seen.insert(b.clone()) {
                            out.push(b);
                        }
                    }
                }
                Ok(out)
            }
            Formula::Exists(vars, inner) => {
                let mut out = Vec::new();
                let mut seen = BTreeSet::new();
                for mut b in self.bindings(inner, input)? {
                    for v in vars {
                        b.remove(v);
                    }
                    // Re-apply the outer binding for quantified variables that
                    // were shadowed.
                    for (k, val) in input {
                        b.entry(k.clone()).or_insert_with(|| val.clone());
                    }
                    if seen.insert(b.clone()) {
                        out.push(b);
                    }
                }
                Ok(out)
            }
            // Filters: evaluate as boolean under the input binding.
            Formula::Compare { .. }
            | Formula::Not(_)
            | Formula::Implies(_, _)
            | Formula::Forall(_, _) => {
                if self.holds_filter(formula, input)? {
                    Ok(vec![input.clone()])
                } else {
                    Ok(vec![])
                }
            }
        }
    }

    /// True for formulas that can *produce* bindings for unbound variables.
    fn produces_bindings(formula: &Formula) -> bool {
        matches!(
            formula,
            Formula::Atom { .. }
                | Formula::And(_)
                | Formula::Or(_)
                | Formula::Exists(_, _)
                | Formula::True
                | Formula::False
        )
    }

    /// Evaluate a filter conjunct: all its free variables must already be
    /// bound by the input binding.
    fn holds_filter(&self, formula: &Formula, binding: &Binding) -> Result<bool> {
        for v in formula.free_variables() {
            if !binding.contains_key(&v) {
                return Err(RelalgError::UnboundVariable(v));
            }
        }
        self.holds(formula, binding)
    }

    /// Used for filter conjuncts inside `And`: if the filter happens to be a
    /// producer (nested Or/Exists already handled), evaluate as existence.
    fn holds_or_bind(&self, formula: &Formula, binding: &Binding) -> Result<bool> {
        if Self::produces_bindings(formula) {
            Ok(!self.bindings(formula, binding)?.is_empty())
        } else {
            self.holds_filter(formula, binding)
        }
    }

    /// Match a relational atom against the database, extending the binding.
    fn match_atom(&self, relation: &str, terms: &[Term], input: &Binding) -> Result<Vec<Binding>> {
        let rel = match self.db.relation(relation) {
            Some(r) => r,
            // A relation that the instance does not declare is simply empty:
            // queries may mention other peers' relations that are not
            // materialized locally.
            None => return Ok(vec![]),
        };
        if rel.arity() != terms.len() {
            return Err(RelalgError::ArityMismatch {
                relation: relation.to_string(),
                expected: rel.arity(),
                found: terms.len(),
            });
        }
        let mut out = Vec::new();
        'tuples: for tuple in rel.iter() {
            let mut binding = input.clone();
            for (term, value) in terms.iter().zip(tuple.iter()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != value => continue 'tuples,
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), value.clone());
                        }
                    },
                }
            }
            out.push(binding);
        }
        Ok(out)
    }

    fn resolve_tuple(&self, terms: &[Term], binding: &Binding) -> Result<Tuple> {
        let mut values = Vec::with_capacity(terms.len());
        for t in terms {
            values.push(Self::resolve_term(t, binding)?);
        }
        Ok(Tuple::new(values))
    }

    fn resolve_term(term: &Term, binding: &Binding) -> Result<Value> {
        term.resolve(binding)
            .cloned()
            .ok_or_else(|| RelalgError::UnboundVariable(term.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::CompareOp;
    use crate::relation::Relation;
    use crate::schema::RelationSchema;

    /// Database mirroring Example 1 of the paper.
    fn example1_db() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R1", &["x", "y"])));
        db.add_relation(Relation::new(RelationSchema::new("R2", &["x", "y"])));
        db.add_relation(Relation::new(RelationSchema::new("R3", &["x", "y"])));
        for (r, a, b) in [
            ("R1", "a", "b"),
            ("R1", "s", "t"),
            ("R2", "c", "d"),
            ("R2", "a", "e"),
            ("R3", "a", "f"),
            ("R3", "s", "u"),
        ] {
            db.insert(r, Tuple::strs([a, b])).unwrap();
        }
        db
    }

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn atom_answers_enumerate_relation() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&Tuple::strs(["a", "b"])));
        assert!(ans.contains(&Tuple::strs(["s", "t"])));
    }

    #[test]
    fn constants_in_atoms_filter_matches() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("R2", vec!["a", "Y"]);
        let ans = eval.answers(&q, &vars(&["Y"])).unwrap();
        assert_eq!(ans, BTreeSet::from([Tuple::strs(["e"])]));
    }

    #[test]
    fn join_through_shared_variable() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        // R1(X, Y) and R3(X, Z): joins on X = a and X = s.
        let q = Formula::and(vec![
            Formula::atom("R1", vec!["X", "Y"]),
            Formula::atom("R3", vec!["X", "Z"]),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y", "Z"])).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&Tuple::strs(["a", "b", "f"])));
        assert!(ans.contains(&Tuple::strs(["s", "t", "u"])));
    }

    #[test]
    fn union_query_brings_in_other_relation() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        // The Example 2 intermediate rewriting Q': R1(x, y) ∨ R2(x, y).
        let q = Formula::or(vec![
            Formula::atom("R1", vec!["X", "Y"]),
            Formula::atom("R2", vec!["X", "Y"]),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(ans.len(), 4);
        assert!(ans.contains(&Tuple::strs(["c", "d"])));
    }

    #[test]
    fn negation_as_filter() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        // Tuples of R1 whose key does not appear in R3.
        let q = Formula::and(vec![
            Formula::atom("R1", vec!["X", "Y"]),
            Formula::not(Formula::exists(
                vec!["Z"],
                Formula::atom("R3", vec!["X", "Z"]),
            )),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        assert!(ans.is_empty());
        // And of R2: (c, d) has no R3 partner.
        let q2 = Formula::and(vec![
            Formula::atom("R2", vec!["X", "Y"]),
            Formula::not(Formula::exists(
                vec!["Z"],
                Formula::atom("R3", vec!["X", "Z"]),
            )),
        ]);
        let ans2 = eval.answers(&q2, &vars(&["X", "Y"])).unwrap();
        assert_eq!(ans2, BTreeSet::from([Tuple::strs(["c", "d"])]));
    }

    #[test]
    fn universal_filter_inside_conjunction() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        // R1(X, Y) and forall Z (R3(X, Z) -> Z = Y): no R1 tuple agrees with R3.
        let q = Formula::and(vec![
            Formula::atom("R1", vec!["X", "Y"]),
            Formula::forall(
                vec!["Z"],
                Formula::implies(
                    Formula::atom("R3", vec!["X", "Z"]),
                    Formula::eq(Term::var("Z"), Term::var("Y")),
                ),
            ),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn sentences_constraint_check() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        // Σ(P1, P2): ∀x∀y (R2(x, y) → R1(x, y)) — violated.
        let dec12 = Formula::forall(
            vec!["X", "Y"],
            Formula::implies(
                Formula::atom("R2", vec!["X", "Y"]),
                Formula::atom("R1", vec!["X", "Y"]),
            ),
        );
        assert!(!eval.holds_sentence(&dec12).unwrap());
        // ∀x∀y (R1(x, y) → R1(x, y)) — trivially true.
        let trivial = Formula::forall(
            vec!["X", "Y"],
            Formula::implies(
                Formula::atom("R1", vec!["X", "Y"]),
                Formula::atom("R1", vec!["X", "Y"]),
            ),
        );
        assert!(eval.holds_sentence(&trivial).unwrap());
    }

    #[test]
    fn holds_sentence_rejects_free_variables() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let open = Formula::atom("R1", vec!["X", "Y"]);
        assert!(matches!(
            eval.holds_sentence(&open),
            Err(RelalgError::UnboundVariable(_))
        ));
    }

    #[test]
    fn answers_error_on_unbound_requested_variable() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let err = eval.answers(&q, &vars(&["Z"])).unwrap_err();
        assert!(matches!(err, RelalgError::UnboundVariable(v) if v == "Z"));
    }

    #[test]
    fn unknown_relation_is_empty_not_error() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("Nowhere", vec!["X"]);
        assert!(eval.answers(&q, &vars(&["X"])).unwrap().is_empty());
    }

    #[test]
    fn arity_mismatch_is_detected() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::atom("R1", vec!["X"]);
        assert!(matches!(
            eval.answers(&q, &vars(&["X"])),
            Err(RelalgError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn comparisons_filter_bindings() {
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let q = Formula::and(vec![
            Formula::atom("R1", vec!["X", "Y"]),
            Formula::compare(CompareOp::Neq, Term::var("X"), Term::cnst("a")),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(ans, BTreeSet::from([Tuple::strs(["s", "t"])]));
    }

    #[test]
    fn example2_final_rewriting_is_evaluable() {
        // Q'' from Example 2, evaluated over the *original* instances:
        // [R1(x,y) ∧ ∀z1 (R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y)] ∨ R2(x,y)
        let db = example1_db();
        let eval = QueryEvaluator::new(&db);
        let guard = Formula::forall(
            vec!["Z1"],
            Formula::implies(
                Formula::and(vec![
                    Formula::atom("R3", vec!["X", "Z1"]),
                    Formula::not(Formula::exists(
                        vec!["Z2"],
                        Formula::atom("R2", vec!["X", "Z2"]),
                    )),
                ]),
                Formula::eq(Term::var("Z1"), Term::var("Y")),
            ),
        );
        let q = Formula::or(vec![
            Formula::and(vec![Formula::atom("R1", vec!["X", "Y"]), guard]),
            Formula::atom("R2", vec!["X", "Y"]),
        ]);
        let ans = eval.answers(&q, &vars(&["X", "Y"])).unwrap();
        // The paper's peer consistent answers: (a, b), (c, d), (a, e).
        assert_eq!(
            ans,
            BTreeSet::from([
                Tuple::strs(["a", "b"]),
                Tuple::strs(["c", "d"]),
                Tuple::strs(["a", "e"]),
            ])
        );
    }

    #[test]
    fn with_domain_extends_quantifier_range() {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R", &["x"])));
        let eval = QueryEvaluator::with_domain(&db, [Value::str("extra")]);
        assert_eq!(eval.domain().len(), 1);
        // exists X (X = extra) holds only because the domain was extended.
        let q = Formula::exists(vec!["X"], Formula::eq(Term::var("X"), Term::cnst("extra")));
        assert!(eval.holds_sentence(&q).unwrap());
    }
}

//! Abstract syntax of first-order queries and constraints.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A first-order variable, identified by name.
    Var(String),
    /// A constant of the shared domain.
    Const(Value),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Construct a constant term.
    pub fn cnst(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// Parse the conventional notation used by helpers and the DSL: names
    /// beginning with an uppercase ASCII letter or `_` are variables, all
    /// other strings are (string) constants, and strings consisting only of
    /// digits (with optional leading `-`) are integer constants.
    pub fn parse(token: &str) -> Term {
        let mut chars = token.chars();
        match chars.next() {
            Some(c) if c.is_ascii_uppercase() || c == '_' => Term::Var(token.to_string()),
            Some(c)
                if (c.is_ascii_digit() || c == '-')
                    && token.len() > usize::from(c == '-')
                    && token[usize::from(c == '-')..]
                        .chars()
                        .all(|d| d.is_ascii_digit()) =>
            {
                Term::Const(Value::int(token.parse().unwrap_or(0)))
            }
            _ => Term::Const(Value::str(token)),
        }
    }

    /// True if this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Variable name, if any.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Constant value, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// Resolve the term under a binding: constants map to themselves,
    /// variables to their bound value (if any).
    pub fn resolve<'a>(&'a self, binding: &'a Binding) -> Option<&'a Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(name) => binding.get(name),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A (partial) assignment of variables to values.
pub type Binding = BTreeMap<String, Value>;

/// Built-in comparison operators allowed in queries and constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Leq,
    /// `>`
    Gt,
    /// `≥`
    Geq,
}

impl CompareOp {
    /// Apply the comparison to two values (total order over [`Value`]).
    pub fn apply(self, left: &Value, right: &Value) -> bool {
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Neq => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Leq => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Geq => left >= right,
        }
    }

    /// The negated operator (`¬(a < b) ⇔ a ≥ b`, etc.).
    pub fn negate(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Neq,
            CompareOp::Neq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Geq,
            CompareOp::Leq => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Leq,
            CompareOp::Geq => CompareOp::Lt,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "!=",
            CompareOp::Lt => "<",
            CompareOp::Leq => "<=",
            CompareOp::Gt => ">",
            CompareOp::Geq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A first-order formula over a relational signature plus built-ins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A relational atom `R(t1, …, tn)`.
    Atom {
        /// The relation name `R`.
        relation: String,
        /// The argument terms `t1, …, tn`.
        terms: Vec<Term>,
    },
    /// A built-in comparison `t1 op t2`.
    Compare {
        /// The comparison operator.
        op: CompareOp,
        /// Left operand.
        left: Term,
        /// Right operand.
        right: Term,
    },
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication `lhs → rhs` (used to write constraints naturally).
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over the listed variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over the listed variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Relational atom using the [`Term::parse`] convention for tokens.
    pub fn atom<S: AsRef<str>>(relation: impl Into<String>, tokens: Vec<S>) -> Formula {
        Formula::Atom {
            relation: relation.into(),
            terms: tokens.iter().map(|t| Term::parse(t.as_ref())).collect(),
        }
    }

    /// Relational atom from explicit terms.
    pub fn atom_terms(relation: impl Into<String>, terms: Vec<Term>) -> Formula {
        Formula::Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Comparison atom.
    pub fn compare(op: CompareOp, left: Term, right: Term) -> Formula {
        Formula::Compare { op, left, right }
    }

    /// Equality shortcut.
    pub fn eq(left: Term, right: Term) -> Formula {
        Formula::compare(CompareOp::Eq, left, right)
    }

    /// Negation helper that flattens double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Formula) -> Formula {
        match inner {
            Formula::Not(f) => *f,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction helper that flattens nested conjunctions and drops `True`.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Disjunction helper that flattens nested disjunctions and drops `False`.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("len checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Implication helper.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(lhs), Box::new(rhs))
    }

    /// Existential quantifier helper. Quantifying over no variables is the
    /// identity.
    pub fn exists<S: Into<String>>(vars: Vec<S>, inner: Formula) -> Formula {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            inner
        } else {
            Formula::Exists(vars, Box::new(inner))
        }
    }

    /// Universal quantifier helper. Quantifying over no variables is the
    /// identity.
    pub fn forall<S: Into<String>>(vars: Vec<S>, inner: Formula) -> Formula {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            inner
        } else {
            Formula::Forall(vars, Box::new(inner))
        }
    }

    /// Free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { terms, .. } => {
                for t in terms {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Compare { left, right, .. } => {
                for t in [left, right] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                let newly: Vec<String> = vars
                    .iter()
                    .filter(|v| bound.insert((*v).clone()))
                    .cloned()
                    .collect();
                f.collect_free(bound, out);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// All relation names mentioned in the formula.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::Atom { relation, .. } => {
                out.insert(relation.clone());
            }
            Formula::Not(f) => f.collect_relations(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_relations(out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_relations(out),
            Formula::True | Formula::False | Formula::Compare { .. } => {}
        }
    }

    /// Rename every occurrence of one relation into another (used when
    /// re-expressing a query over the virtual primed relations `R'`).
    pub fn rename_relation(&self, from: &str, to: &str) -> Formula {
        match self {
            Formula::Atom { relation, terms } => Formula::Atom {
                relation: if relation == from {
                    to.to_string()
                } else {
                    relation.clone()
                },
                terms: terms.clone(),
            },
            Formula::Not(f) => Formula::Not(Box::new(f.rename_relation(from, to))),
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|f| f.rename_relation(from, to)).collect())
            }
            Formula::Or(fs) => {
                Formula::Or(fs.iter().map(|f| f.rename_relation(from, to)).collect())
            }
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(a.rename_relation(from, to)),
                Box::new(b.rename_relation(from, to)),
            ),
            Formula::Exists(vars, f) => {
                Formula::Exists(vars.clone(), Box::new(f.rename_relation(from, to)))
            }
            Formula::Forall(vars, f) => {
                Formula::Forall(vars.clone(), Box::new(f.rename_relation(from, to)))
            }
            other => other.clone(),
        }
    }

    /// Substitute constants for variables according to the binding,
    /// leaving unbound variables untouched.
    pub fn substitute(&self, binding: &Binding) -> Formula {
        let subst_term = |t: &Term| match t {
            Term::Var(v) => binding
                .get(v)
                .map(|value| Term::Const(value.clone()))
                .unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        };
        match self {
            Formula::Atom { relation, terms } => Formula::Atom {
                relation: relation.clone(),
                terms: terms.iter().map(subst_term).collect(),
            },
            Formula::Compare { op, left, right } => Formula::Compare {
                op: *op,
                left: subst_term(left),
                right: subst_term(right),
            },
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(binding))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.substitute(binding)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.substitute(binding)).collect()),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(a.substitute(binding)),
                Box::new(b.substitute(binding)),
            ),
            Formula::Exists(vars, f) => {
                let mut shadowed = binding.clone();
                for v in vars {
                    shadowed.remove(v);
                }
                Formula::Exists(vars.clone(), Box::new(f.substitute(&shadowed)))
            }
            Formula::Forall(vars, f) => {
                let mut shadowed = binding.clone();
                for v in vars {
                    shadowed.remove(v);
                }
                Formula::Forall(vars.clone(), Box::new(f.substitute(&shadowed)))
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom { relation, terms } => {
                write!(f, "{relation}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Compare { op, left, right } => write!(f, "{left} {op} {right}"),
            Formula::Not(inner) => write!(f, "not ({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Exists(vars, inner) => write!(f, "exists {} ({inner})", vars.join(", ")),
            Formula::Forall(vars, inner) => write!(f, "forall {} ({inner})", vars.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_parse_convention() {
        assert_eq!(Term::parse("X"), Term::var("X"));
        assert_eq!(Term::parse("_w"), Term::var("_w"));
        assert_eq!(Term::parse("a"), Term::cnst("a"));
        assert_eq!(Term::parse("42"), Term::cnst(42i64));
        assert_eq!(Term::parse("-7"), Term::cnst(-7i64));
        assert_eq!(Term::parse("-"), Term::cnst("-"));
    }

    #[test]
    fn free_variables_respect_quantifiers() {
        // exists Y (R(X, Y) and X != Z)
        let f = Formula::exists(
            vec!["Y"],
            Formula::and(vec![
                Formula::atom("R", vec!["X", "Y"]),
                Formula::compare(CompareOp::Neq, Term::var("X"), Term::var("Z")),
            ]),
        );
        let free = f.free_variables();
        assert!(free.contains("X"));
        assert!(free.contains("Z"));
        assert!(!free.contains("Y"));
    }

    #[test]
    fn and_or_helpers_flatten_and_simplify() {
        let a = Formula::atom("R", vec!["X"]);
        let b = Formula::atom("S", vec!["X"]);
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::and(vec![a.clone()]), a.clone());
        assert_eq!(
            Formula::and(vec![
                Formula::True,
                a.clone(),
                Formula::and(vec![b.clone()])
            ]),
            Formula::And(vec![a.clone(), b.clone()])
        );
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::or(vec![Formula::False, b.clone()]), b);
    }

    #[test]
    fn not_flattens_double_negation() {
        let a = Formula::atom("R", vec!["X"]);
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn rename_relation_rewrites_atoms_everywhere() {
        let f = Formula::and(vec![
            Formula::atom("R1", vec!["X"]),
            Formula::not(Formula::atom("R1", vec!["Y"])),
            Formula::atom("R2", vec!["X"]),
        ]);
        let renamed = f.rename_relation("R1", "R1_prime");
        let rels = renamed.relations();
        assert!(rels.contains("R1_prime"));
        assert!(rels.contains("R2"));
        assert!(!rels.contains("R1"));
    }

    #[test]
    fn substitution_respects_shadowing() {
        let mut binding = Binding::new();
        binding.insert("X".to_string(), Value::str("a"));
        binding.insert("Y".to_string(), Value::str("b"));
        let f = Formula::exists(vec!["Y"], Formula::atom("R", vec!["X", "Y"]));
        let g = f.substitute(&binding);
        // X replaced, Y (bound by exists) untouched.
        match g {
            Formula::Exists(_, inner) => match *inner {
                Formula::Atom { terms, .. } => {
                    assert_eq!(terms[0], Term::cnst("a"));
                    assert_eq!(terms[1], Term::var("Y"));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_op_semantics_and_negation() {
        assert!(CompareOp::Lt.apply(&Value::int(1), &Value::int(2)));
        assert!(CompareOp::Neq.apply(&Value::str("a"), &Value::str("b")));
        assert!(!CompareOp::Eq.apply(&Value::str("a"), &Value::str("b")));
        assert_eq!(CompareOp::Lt.negate(), CompareOp::Geq);
        assert_eq!(CompareOp::Eq.negate(), CompareOp::Neq);
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::implies(
            Formula::atom("R2", vec!["X", "Y"]),
            Formula::atom("R1", vec!["X", "Y"]),
        );
        assert_eq!(f.to_string(), "(R2(X, Y) -> R1(X, Y))");
    }

    #[test]
    fn relations_collects_all_atoms() {
        let f = Formula::forall(
            vec!["X", "Y", "Z"],
            Formula::implies(
                Formula::and(vec![
                    Formula::atom("R1", vec!["X", "Y"]),
                    Formula::atom("R3", vec!["X", "Z"]),
                ]),
                Formula::eq(Term::var("Y"), Term::var("Z")),
            ),
        );
        assert_eq!(
            f.relations(),
            BTreeSet::from(["R1".to_string(), "R3".to_string()])
        );
    }
}

//! A relation instance: a finite, ordered set of tuples over a schema.

use crate::error::RelalgError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A finite relation instance.
///
/// Tuples are kept in a `BTreeSet` so iteration order is deterministic and
/// independent of insertion order; this keeps repairs, solutions and stable
/// models reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: RelationSchema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation over the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Create a relation and populate it with tuples, validating arities.
    pub fn with_tuples<I: IntoIterator<Item = Tuple>>(
        schema: RelationSchema,
        tuples: I,
    ) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.arity() {
            return Err(RelalgError::ArityMismatch {
                relation: self.name().to_string(),
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Clone the tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// All values appearing in this relation (its contribution to the active
    /// domain).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().cloned()).collect()
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Replace the contents of this relation with the given tuples,
    /// validating arities.
    pub fn replace_with<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Result<()> {
        let mut next = BTreeSet::new();
        for t in tuples {
            if t.arity() != self.arity() {
                return Err(RelalgError::ArityMismatch {
                    relation: self.name().to_string(),
                    expected: self.arity(),
                    found: t.arity(),
                });
            }
            next.insert(t);
        }
        self.tuples = next;
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::collections::btree_set::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn schema() -> RelationSchema {
        RelationSchema::new("R", &["x", "y"])
    }

    #[test]
    fn insert_validates_arity() {
        let mut r = Relation::new(schema());
        assert!(r.insert(Tuple::strs(["a", "b"])).unwrap());
        assert!(!r.insert(Tuple::strs(["a", "b"])).unwrap());
        let err = r.insert(Tuple::strs(["a"])).unwrap_err();
        assert!(matches!(
            err,
            RelalgError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn with_tuples_builds_and_validates() {
        let r = Relation::with_tuples(schema(), [Tuple::strs(["a", "b"]), Tuple::strs(["c", "d"])])
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(Relation::with_tuples(schema(), [Tuple::strs(["a"])]).is_err());
    }

    #[test]
    fn remove_and_contains() {
        let mut r = Relation::new(schema());
        let t = Tuple::strs(["a", "b"]);
        r.insert(t.clone()).unwrap();
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.is_empty());
    }

    #[test]
    fn active_domain_collects_all_values() {
        let r = Relation::with_tuples(schema(), [Tuple::strs(["a", "b"]), Tuple::strs(["b", "c"])])
            .unwrap();
        let dom = r.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::str("c")));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = Relation::new(schema());
        r.insert(Tuple::strs(["z", "z"])).unwrap();
        r.insert(Tuple::strs(["a", "a"])).unwrap();
        let tuples: Vec<&Tuple> = r.iter().collect();
        assert_eq!(tuples[0], &Tuple::strs(["a", "a"]));
    }

    #[test]
    fn replace_with_swaps_contents() {
        let mut r = Relation::with_tuples(schema(), [Tuple::strs(["a", "b"])]).unwrap();
        r.replace_with([Tuple::strs(["x", "y"]), Tuple::strs(["u", "v"])])
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&Tuple::strs(["a", "b"])));
        assert!(r.replace_with([Tuple::strs(["only-one"])]).is_err());
    }
}

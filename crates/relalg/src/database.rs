//! Database instances: collections of relation instances.
//!
//! A [`Database`] plays two roles in the reproduction: it is a single peer's
//! local instance `r(P)`, and it is also the *global* instance `r̄` obtained
//! by taking the union of the instances of all peers whose schemas appear in
//! `R̄(P)` (Definition 3(b)). Both are just sets of relations; ownership of
//! relations by peers is tracked in `pdes-core`.

use crate::error::RelalgError;
use crate::relation::Relation;
use crate::schema::{RelationSchema, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Ground atom: a relation name plus a tuple. Used by [`crate::delta::Delta`]
/// (the paper's `Σ(r)` of ground atomic formulas) and throughout the repair
/// and solution machinery.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroundAtom {
    /// Relation name.
    pub relation: String,
    /// Tuple of constants.
    pub tuple: Tuple,
}

impl GroundAtom {
    /// Construct a ground atom.
    pub fn new(relation: impl Into<String>, tuple: Tuple) -> Self {
        GroundAtom {
            relation: relation.into(),
            tuple,
        }
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.relation, self.tuple)
    }
}

/// A database instance: relations keyed by name.
///
/// Relations are stored as `Arc`-shared *pages*: cloning a `Database` is a
/// shallow copy that shares every relation with the original, and mutation
/// goes through [`Arc::make_mut`], copying only the touched relation when
/// (and only when) it is still shared. This is what makes MVCC epoch
/// publication cheap — a new epoch clones the map, not the data — while
/// single-owner databases mutate in place exactly as before.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    relations: BTreeMap<String, Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a database with one empty relation per schema entry.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut db = Database::new();
        for r in schema.relations() {
            db.add_relation(Relation::new(r.clone()));
        }
        db
    }

    /// Add (or replace) a relation instance.
    pub fn add_relation(&mut self, relation: Relation) {
        self.relations
            .insert(relation.name().to_string(), Arc::new(relation));
    }

    /// Declare an empty relation for the given schema if absent.
    pub fn ensure_relation(&mut self, schema: &RelationSchema) {
        self.relations
            .entry(schema.name().to_string())
            .or_insert_with(|| Arc::new(Relation::new(schema.clone())));
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(Arc::as_ref)
    }

    /// Mutable lookup. Copies the relation page first if it is shared with
    /// another database (copy-on-write).
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name).map(Arc::make_mut)
    }

    /// True if the database declares the relation.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values().map(Arc::as_ref)
    }

    /// Relation names in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// The schema induced by the declared relations.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for r in self.relations.values() {
            // Relations carry consistent schemas by construction.
            let _ = schema.add(r.schema().clone());
        }
        schema
    }

    /// Number of declared relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Insert a tuple into a relation. A no-op insert (tuple already
    /// present) never copies a shared page.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let page = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| RelalgError::UnknownRelation(relation.to_string()))?;
        if page.contains(&tuple) {
            // Already present (hence already validated): nothing to write.
            return Ok(false);
        }
        Arc::make_mut(page).insert(tuple)
    }

    /// Insert a ground atom, declaring the relation (with positional
    /// attributes) if it does not exist yet.
    pub fn insert_atom(&mut self, atom: &GroundAtom) -> Result<bool> {
        if !self.relations.contains_key(&atom.relation) {
            self.add_relation(Relation::new(RelationSchema::with_arity(
                atom.relation.clone(),
                atom.tuple.arity(),
            )));
        }
        self.insert(&atom.relation, atom.tuple.clone())
    }

    /// Remove a tuple from a relation. Returns `Ok(false)` if the tuple was
    /// absent; errors if the relation is unknown. A no-op removal never
    /// copies a shared page.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        let page = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| RelalgError::UnknownRelation(relation.to_string()))?;
        if !page.contains(tuple) {
            return Ok(false);
        }
        Ok(Arc::make_mut(page).remove(tuple))
    }

    /// Membership test for a ground atom (false if the relation is unknown).
    pub fn holds(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(relation)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// `Σ(r)`: the set of ground atomic formulas true in this instance
    /// (Definition 1 preamble).
    pub fn ground_atoms(&self) -> BTreeSet<GroundAtom> {
        self.relations
            .values()
            .flat_map(|rel| {
                rel.iter()
                    .map(|t| GroundAtom::new(rel.name().to_string(), t.clone()))
            })
            .collect()
    }

    /// The active domain: every value appearing in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations
            .values()
            .flat_map(|r| r.active_domain())
            .collect()
    }

    /// Restriction `r|S'` of the instance to a set of relation names
    /// (Definition 3(c)). Unknown names are ignored.
    pub fn restrict<'a, I: IntoIterator<Item = &'a str>>(&self, names: I) -> Database {
        let wanted: BTreeSet<&str> = names.into_iter().collect();
        let mut out = Database::new();
        for (name, rel) in &self.relations {
            if wanted.contains(name.as_str()) {
                // Share the page: a restriction is a read-only view until
                // someone writes through it.
                out.relations.insert(name.clone(), Arc::clone(rel));
            }
        }
        out
    }

    /// Union of two instances: relations present in either; tuple sets merged
    /// for relations present in both. Errors on schema conflicts.
    pub fn union(&self, other: &Database) -> Result<Database> {
        let mut out = self.clone();
        for rel in other.relations() {
            match out.relation_mut(rel.name()) {
                Some(existing) => {
                    if existing.schema() != rel.schema() {
                        return Err(RelalgError::SchemaConflict {
                            relation: rel.name().to_string(),
                            existing: existing.schema().to_string(),
                            new: rel.schema().to_string(),
                        });
                    }
                    for t in rel.iter() {
                        existing.insert(t.clone())?;
                    }
                }
                None => out.add_relation(rel.clone()),
            }
        }
        Ok(out)
    }

    /// Apply a set of insertions and deletions (used by the repair engine).
    /// Unknown relations in insertions are declared on the fly.
    pub fn apply_changes<'a, I, D>(&self, insertions: I, deletions: D) -> Result<Database>
    where
        I: IntoIterator<Item = &'a GroundAtom>,
        D: IntoIterator<Item = &'a GroundAtom>,
    {
        let mut out = self.clone();
        for atom in insertions {
            out.insert_atom(atom)?;
        }
        for atom in deletions {
            out.remove(&atom.relation, &atom.tuple)?;
        }
        Ok(out)
    }

    /// Apply insertions and deletions *in place*, reporting how many shared
    /// relation pages had to be copied before mutation. A page counts once
    /// no matter how many of its tuples changed; pages this database owns
    /// exclusively mutate in place and do not count. This is the
    /// copy-on-write cost an MVCC epoch publication pays (`mvcc.cow_pages`).
    pub fn apply_changes_cow<'a, I, D>(&mut self, insertions: I, deletions: D) -> Result<usize>
    where
        I: IntoIterator<Item = &'a GroundAtom>,
        D: IntoIterator<Item = &'a GroundAtom>,
    {
        let mut copied = BTreeSet::new();
        let mut track = |relations: &BTreeMap<String, Arc<Relation>>, name: &str| {
            if let Some(page) = relations.get(name) {
                if Arc::strong_count(page) > 1 {
                    copied.insert(name.to_string());
                }
            }
        };
        for atom in insertions {
            if !self.holds(&atom.relation, &atom.tuple) {
                track(&self.relations, &atom.relation);
            }
            self.insert_atom(atom)?;
        }
        for atom in deletions {
            if self.holds(&atom.relation, &atom.tuple) {
                track(&self.relations, &atom.relation);
            }
            self.remove(&atom.relation, &atom.tuple)?;
        }
        Ok(copied.len())
    }

    /// How many relation pages are currently shared with another database
    /// (an `Arc` strong count above 1). Diagnostic hook for the COW tests.
    pub fn shared_page_count(&self) -> usize {
        self.relations
            .values()
            .filter(|page| Arc::strong_count(page) > 1)
            .count()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::new(RelationSchema::new("R1", &["x", "y"])));
        db.add_relation(Relation::new(RelationSchema::new("R2", &["x", "y"])));
        db.insert("R1", Tuple::strs(["a", "b"])).unwrap();
        db.insert("R1", Tuple::strs(["s", "t"])).unwrap();
        db.insert("R2", Tuple::strs(["c", "d"])).unwrap();
        db
    }

    #[test]
    fn insert_and_holds() {
        let db = sample();
        assert!(db.holds("R1", &Tuple::strs(["a", "b"])));
        assert!(!db.holds("R1", &Tuple::strs(["c", "d"])));
        assert!(!db.holds("R9", &Tuple::strs(["a", "b"])));
    }

    #[test]
    fn insert_unknown_relation_errors() {
        let mut db = sample();
        assert!(db.insert("R9", Tuple::strs(["a", "b"])).is_err());
    }

    #[test]
    fn insert_atom_declares_relation_on_demand() {
        let mut db = Database::new();
        let atom = GroundAtom::new("Fresh", Tuple::strs(["a"]));
        assert!(db.insert_atom(&atom).unwrap());
        assert!(db.holds("Fresh", &Tuple::strs(["a"])));
        assert_eq!(db.relation("Fresh").unwrap().arity(), 1);
    }

    #[test]
    fn ground_atoms_enumerates_sigma_r() {
        let db = sample();
        let atoms = db.ground_atoms();
        assert_eq!(atoms.len(), 3);
        assert!(atoms.contains(&GroundAtom::new("R2", Tuple::strs(["c", "d"]))));
    }

    #[test]
    fn active_domain_spans_relations() {
        let db = sample();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::str("a")));
        assert!(dom.contains(&Value::str("d")));
        assert_eq!(dom.len(), 6);
    }

    #[test]
    fn restriction_matches_definition_3c() {
        let db = sample();
        let restricted = db.restrict(["R1"]);
        assert!(restricted.contains_relation("R1"));
        assert!(!restricted.contains_relation("R2"));
        assert_eq!(restricted.tuple_count(), 2);
    }

    #[test]
    fn union_merges_tuples() {
        let db = sample();
        let mut other = Database::new();
        other.add_relation(Relation::new(RelationSchema::new("R1", &["x", "y"])));
        other.insert("R1", Tuple::strs(["n", "m"])).unwrap();
        let merged = db.union(&other).unwrap();
        assert_eq!(merged.relation("R1").unwrap().len(), 3);
    }

    #[test]
    fn union_rejects_conflicting_schemas() {
        let db = sample();
        let mut other = Database::new();
        other.add_relation(Relation::new(RelationSchema::new("R1", &["only"])));
        assert!(db.union(&other).is_err());
    }

    #[test]
    fn apply_changes_inserts_and_deletes() {
        let db = sample();
        let ins = [GroundAtom::new("R1", Tuple::strs(["c", "d"]))];
        let del = [GroundAtom::new("R1", Tuple::strs(["a", "b"]))];
        let next = db.apply_changes(ins.iter(), del.iter()).unwrap();
        assert!(next.holds("R1", &Tuple::strs(["c", "d"])));
        assert!(!next.holds("R1", &Tuple::strs(["a", "b"])));
        // Original untouched.
        assert!(db.holds("R1", &Tuple::strs(["a", "b"])));
    }

    #[test]
    fn from_schema_declares_empty_relations() {
        let schema = Schema::from_relations([
            RelationSchema::new("A", &["x"]),
            RelationSchema::new("B", &["x", "y"]),
        ])
        .unwrap();
        let db = Database::from_schema(&schema);
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.tuple_count(), 0);
    }

    #[test]
    fn schema_round_trip() {
        let db = sample();
        let schema = db.schema();
        assert!(schema.contains("R1"));
        assert_eq!(schema.relation("R2").unwrap().arity(), 2);
    }

    #[test]
    fn clones_share_pages_until_written() {
        let base = sample();
        let mut copy = base.clone();
        // The clone shares every page with the original.
        assert_eq!(copy.shared_page_count(), 2);
        // Writing one relation copies exactly that page.
        copy.insert("R1", Tuple::strs(["new", "row"])).unwrap();
        assert_eq!(copy.shared_page_count(), 1);
        // The original never observes the write.
        assert!(!base.holds("R1", &Tuple::strs(["new", "row"])));
        assert!(copy.holds("R1", &Tuple::strs(["new", "row"])));
        // Untouched relations are still literally the same allocation.
        assert_eq!(base.relation("R2").unwrap(), copy.relation("R2").unwrap());
    }

    #[test]
    fn no_op_writes_do_not_copy_shared_pages() {
        let base = sample();
        let mut copy = base.clone();
        assert!(!copy.insert("R1", Tuple::strs(["a", "b"])).unwrap());
        assert!(!copy.remove("R1", &Tuple::strs(["zz", "zz"])).unwrap());
        assert_eq!(copy.shared_page_count(), 2, "no-ops must not unshare");
    }

    #[test]
    fn apply_changes_cow_counts_copied_pages_once() {
        let base = sample();
        let mut epoch = base.clone();
        let ins = [
            GroundAtom::new("R1", Tuple::strs(["n1", "m1"])),
            GroundAtom::new("R1", Tuple::strs(["n2", "m2"])),
        ];
        let del = [GroundAtom::new("R1", Tuple::strs(["a", "b"]))];
        // Three changes, one touched page: one copy.
        assert_eq!(epoch.apply_changes_cow(ins.iter(), del.iter()).unwrap(), 1);
        // A second application to the now-exclusive page copies nothing.
        let more = [GroundAtom::new("R1", Tuple::strs(["n3", "m3"]))];
        assert_eq!(epoch.apply_changes_cow(more.iter(), [].iter()).unwrap(), 0);
        // The base saw none of it.
        assert_eq!(base.relation("R1").unwrap().len(), 2);
        assert_eq!(epoch.relation("R1").unwrap().len(), 4);
    }
}

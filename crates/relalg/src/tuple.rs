//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A database tuple.
///
/// Tuples are immutable once built and ordered lexicographically, so they can
/// be stored in `BTreeSet`s with deterministic iteration. The arity of the
/// tuple must match the arity of the relation it is inserted into; that check
/// is performed by [`crate::Relation::insert`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from owned values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Build a tuple of string constants; convenient in tests and examples.
    pub fn strs<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Tuple::new(items.into_iter().map(Value::str).collect())
    }

    /// Build a tuple of integer constants.
    pub fn ints<I: IntoIterator<Item = i64>>(items: I) -> Self {
        Tuple::new(items.into_iter().map(Value::int).collect())
    }

    /// The number of components.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if the tuple has no components (the 0-ary tuple `()`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Component accessor; returns `None` when out of range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Iterate over components.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the tuple and return its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project onto the given positions (positions may repeat or reorder).
    ///
    /// Returns `None` if any position is out of range.
    pub fn project(&self, positions: &[usize]) -> Option<Tuple> {
        let mut out = Vec::with_capacity(positions.len());
        for &p in positions {
            out.push(self.values.get(p)?.clone());
        }
        Some(Tuple::new(out))
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_helpers_build_expected_tuples() {
        let t = Tuple::strs(["a", "b"]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(&Value::str("a")));
        assert_eq!(t.get(1), Some(&Value::str("b")));
        assert_eq!(t.get(2), None);

        let n = Tuple::ints([1, 2, 3]);
        assert_eq!(n.arity(), 3);
        assert_eq!(n[2], Value::int(3));
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = Tuple::strs(["a", "b", "c"]);
        let p = t.project(&[2, 0, 0]).unwrap();
        assert_eq!(p, Tuple::strs(["c", "a", "a"]));
        assert!(t.project(&[3]).is_none());
    }

    #[test]
    fn concat_preserves_order() {
        let t = Tuple::strs(["a"]).concat(&Tuple::ints([1]));
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::str("a"));
        assert_eq!(t[1], Value::int(1));
    }

    #[test]
    fn lexicographic_order() {
        assert!(Tuple::strs(["a", "b"]) < Tuple::strs(["a", "c"]));
        assert!(Tuple::strs(["a"]) < Tuple::strs(["a", "a"]));
    }

    #[test]
    fn display_formats_components() {
        assert_eq!(Tuple::strs(["a", "b"]).to_string(), "(a, b)");
        assert_eq!(Tuple::new(vec![]).to_string(), "()");
    }

    #[test]
    fn empty_tuple_has_zero_arity() {
        let t = Tuple::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.arity(), 0);
    }
}

//! # pdes-exec — scoped thread-pool execution with deterministic ordering
//!
//! The answering pipeline is embarrassingly parallel at two levels: disjoint
//! relevant-peer closures can be prepared independently, and the per-query
//! work (stable-model subtree search, per-world query evaluation, per-peer IC
//! revalidation) splits along items that never observe each other. This crate
//! provides the one primitive all of those call sites share: *run a closure
//! over every item of a slice, possibly on several threads, and hand the
//! results back in input order*.
//!
//! It is built on [`std::thread::scope`] only — no crates.io dependencies —
//! so borrowed data (the engine, the system, prepared worlds) flows into
//! workers without `Arc`-wrapping or cloning.
//!
//! ## Determinism
//!
//! [`Executor::map`] always returns `out[i] == f(&items[i])` with the output
//! index matching the input index, regardless of the worker count or
//! scheduling. Callers that fold the results (intersections, unions, table
//! rows) therefore observe the exact sequential order, which is what makes
//! the parallel engine byte-identical to the sequential one. The work is
//! distributed dynamically (an atomic next-item cursor), so determinism costs
//! no load-balancing.
//!
//! ## Sequential fallback
//!
//! A pool of size 1 (or a slice of length ≤ 1) never spawns: `map` degrades
//! to a plain in-place loop on the calling thread. Code can therefore be
//! written once against the executor and tuned purely through [`ExecConfig`].
//!
//! ```
//! use pdes_exec::{ExecConfig, Executor};
//!
//! let exec = Executor::new(ExecConfig::with_workers(4));
//! let squares = exec.map(&[1u64, 2, 3, 4], |&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use pdes_obs::{duration_nanos, Recorder};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a parallel execution context: how many workers to use
/// and whether scheduling must stay fully deterministic.
///
/// The default is a single worker (purely sequential), so parallelism is
/// always an explicit opt-in at the call site that owns the configuration
/// (e.g. `QueryEngineBuilder::exec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads. `1` means sequential execution on the
    /// calling thread (nothing is spawned); `0` is normalized to the
    /// machine's available parallelism at construction time.
    pub workers: usize,
    /// When set, parallel call sites must produce results that are
    /// *bit-identical* to the sequential path, even where a cheaper
    /// nondeterministic merge would be sound (e.g. first-error selection
    /// across workers). All built-in call sites honour this; it exists so
    /// custom strategies can query the intent.
    pub deterministic: bool,
}

impl ExecConfig {
    /// Sequential execution (one worker, deterministic).
    pub fn sequential() -> Self {
        ExecConfig {
            workers: 1,
            deterministic: true,
        }
    }

    /// A deterministic pool with `workers` threads (`0` = one thread per
    /// available core).
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig {
            workers: normalize_workers(workers),
            deterministic: true,
        }
    }

    /// Override the deterministic-mode flag.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// True when this configuration never spawns worker threads.
    pub fn is_sequential(&self) -> bool {
        self.workers <= 1
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::sequential()
    }
}

/// Resolve a requested worker count: `0` means "one per available core".
fn normalize_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        workers
    }
}

/// A scoped fork-join executor. Holds no threads of its own — workers are
/// spawned per [`Executor::map`] call inside a [`std::thread::scope`], which
/// is what lets closures borrow from the caller's stack. Spawning a thread
/// is ~10µs; every call site in this workspace amortizes that over solver
/// search, query evaluation or constraint checking, all of which dominate.
///
/// An executor may carry a [`pdes_obs::Recorder`]
/// ([`Executor::with_recorder`]): parallel `map` calls then record each
/// task's *claim latency* (time from fan-out start to the worker claiming
/// the task — queueing delay plus upstream task time) in the
/// `exec.claim_nanos` histogram and count claimed tasks in `exec.tasks`.
/// The sequential path and recorder-less executors record nothing.
#[derive(Clone, Default)]
pub struct Executor {
    config: ExecConfig,
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("config", &self.config)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl Executor {
    /// An executor over the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        Executor {
            config,
            recorder: None,
        }
    }

    /// A sequential executor (never spawns).
    pub fn sequential() -> Self {
        Executor::new(ExecConfig::sequential())
    }

    /// Attach a recorder for task claim/queue latency instrumentation.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.recorder.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Number of workers `map` will use for a slice of `len` items (capped
    /// by the item count — a worker without work is never spawned).
    pub fn workers_for(&self, len: usize) -> usize {
        self.config.workers.max(1).min(len.max(1))
    }

    /// Apply `f` to every item, returning the results *in input order*.
    ///
    /// With one worker (or ≤ 1 item) this is a plain loop on the calling
    /// thread. Otherwise items are claimed dynamically by an atomic cursor
    /// and each result is written into its input slot, so the output is
    /// independent of scheduling. A panic in `f` propagates to the caller
    /// once all workers have stopped (no result is silently dropped).
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// [`Executor::map`], with the item index passed to the closure.
    pub fn map_indexed<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Workers claim indices from the shared cursor and collect
        // `(index, result)` pairs locally — no per-item synchronization;
        // the locals are merged into input-order slots after the join.
        let recorder = self.recorder.as_deref().filter(|r| r.is_enabled());
        let fanout_start = Instant::now();
        if let Some(recorder) = recorder {
            recorder.count("exec.maps", 1);
            recorder.count("exec.tasks", items.len() as u64);
        }
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            if let Some(recorder) = recorder {
                                recorder.observe(
                                    "exec.claim_nanos",
                                    duration_nanos(fanout_start.elapsed()),
                                );
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });
        let mut out: Vec<Option<U>> = items.iter().map(|_| None).collect();
        for (i, value) in collected.into_iter().flatten() {
            out[i] = Some(value);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index is claimed by exactly one worker"))
            .collect()
    }

    /// Apply a fallible `f` to every item; returns all results in input
    /// order, or the error of the *lowest-indexed* failing item.
    ///
    /// The sequential path short-circuits at the first error, the parallel
    /// path may evaluate later items before discovering it — but both return
    /// the same `Err` value (the first in input order), keeping observable
    /// behaviour deterministic.
    pub fn try_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let results = self.map(items, f);
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(out)
    }

    /// [`Executor::try_map`], with the item index passed to the closure —
    /// for fallible fan-outs whose errors must name the failing item (e.g.
    /// a store transport tagging `CoreError::Transport` with its shard
    /// index). Same ordering contract: results in input order, or the
    /// error of the lowest-indexed failing item.
    pub fn try_map_indexed<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let results = self.map_indexed(items, f);
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_config_is_the_default() {
        let config = ExecConfig::default();
        assert_eq!(config.workers, 1);
        assert!(config.deterministic);
        assert!(config.is_sequential());
    }

    #[test]
    fn zero_workers_resolve_to_available_parallelism() {
        let config = ExecConfig::with_workers(0);
        assert!(config.workers >= 1);
        assert!(!ExecConfig::with_workers(8).is_sequential());
    }

    #[test]
    fn map_preserves_input_order_across_pool_sizes() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|n| n * 3 + 1).collect();
        for workers in [1, 2, 4, 8] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            assert_eq!(
                exec.map(&items, |&n| n * 3 + 1),
                expected,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn map_indexed_passes_matching_indices() {
        let items = ["a", "b", "c", "d", "e"];
        let exec = Executor::new(ExecConfig::with_workers(3));
        let out = exec.map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn all_items_run_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..64).collect();
        let exec = Executor::new(ExecConfig::with_workers(8));
        let seen: BTreeSet<usize> = exec
            .map(&items, |&i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
            .into_iter()
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn try_map_returns_the_first_error_in_input_order() {
        let items: Vec<u32> = (0..40).collect();
        for workers in [1, 4] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            let result = exec.try_map(&items, |&n| if n % 7 == 3 { Err(n) } else { Ok(n) });
            assert_eq!(result, Err(3), "{workers} workers");
            let ok = exec.try_map(&items, |&n| Ok::<_, u32>(n * 2));
            assert_eq!(ok.unwrap()[13], 26);
        }
    }

    #[test]
    fn try_map_indexed_tags_errors_with_their_index() {
        let items = ["ok", "ok", "boom", "ok", "boom"];
        for workers in [1, 4] {
            let exec = Executor::new(ExecConfig::with_workers(workers));
            let result = exec.try_map_indexed(&items, |i, s| {
                if *s == "boom" {
                    Err(format!("failed at {i}"))
                } else {
                    Ok(format!("{i}:{s}"))
                }
            });
            assert_eq!(result, Err("failed at 2".to_string()), "{workers} workers");
            let ok = exec.try_map_indexed(&items[..2], |i, s| Ok::<_, String>(format!("{i}:{s}")));
            assert_eq!(ok.unwrap(), vec!["0:ok", "1:ok"]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_never_spawn() {
        let exec = Executor::new(ExecConfig::with_workers(8));
        assert_eq!(exec.workers_for(0), 1);
        assert_eq!(exec.workers_for(1), 1);
        assert!(exec.map(&[] as &[u8], |&b| b).is_empty());
        assert_eq!(exec.map(&[7u8], |&b| b + 1), vec![8]);
    }

    #[test]
    fn recorder_counts_every_claimed_task() {
        let recorder = Arc::new(pdes_obs::TraceRecorder::new());
        let exec = Executor::new(ExecConfig::with_workers(4)).with_recorder(recorder.clone());
        let items: Vec<u64> = (0..32).collect();
        let out = exec.map(&items, |&n| n + 1);
        assert_eq!(out.len(), 32);
        let registry = recorder.registry();
        assert_eq!(registry.counter_value("exec.maps"), 1);
        assert_eq!(registry.counter_value("exec.tasks"), 32);
        let histograms = registry.histograms();
        let claims = histograms
            .iter()
            .find(|(name, _)| *name == "exec.claim_nanos")
            .expect("claim latency histogram");
        assert_eq!(claims.1.count, 32);
        // Sequential fan-outs record nothing.
        let seq = Executor::sequential().with_recorder(recorder.clone());
        seq.map(&items, |&n| n + 1);
        assert_eq!(registry.counter_value("exec.tasks"), 32);
    }

    #[test]
    fn borrowed_state_flows_into_workers() {
        // The whole point of scoped threads: `data` is borrowed, not Arc'd.
        let data: Vec<String> = (0..16).map(|i| format!("row{i}")).collect();
        let exec = Executor::new(ExecConfig::with_workers(4));
        let lens = exec.map(&data, |s| s.len());
        assert_eq!(
            lens.iter().sum::<usize>(),
            data.iter().map(String::len).sum()
        );
    }
}

//! The recursive-descent (line-oriented) parser for the `.pds` format.

use constraints::constraint::Condition;
use constraints::{AtomPattern, Constraint, ConstraintHead};
use pdes_core::system::{P2PSystem, PeerId, TrustLevel};
use relalg::query::{CompareOp, Formula, Term};
use relalg::{RelationSchema, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Parse errors, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
    /// When the failure is the construction-time form of a static-analyzer
    /// finding (e.g. a constraint over an undeclared relation), its
    /// diagnostic code ([`pdes_core::analyze::codes`]); `None` for plain
    /// syntax errors.
    pub code: Option<&'static str>,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

/// A named query declared in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedQuery {
    /// The peer the query is posed to.
    pub peer: PeerId,
    /// The query formula (a conjunction of atoms and comparisons).
    pub formula: Formula,
    /// The answer variables, in declaration order.
    pub free_vars: Vec<String>,
}

/// The result of parsing a file: the system plus its named queries.
#[derive(Debug, Clone, Default)]
pub struct ParsedSystem {
    /// The parsed P2P system.
    pub system: P2PSystem,
    /// Named queries, keyed by name.
    pub queries: BTreeMap<String, NamedQuery>,
}

/// Parse a complete `.pds` document.
pub fn parse(input: &str) -> Result<ParsedSystem, DslError> {
    let mut parsed = ParsedSystem::default();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| DslError {
            line: line_no,
            message,
            code: None,
        };
        let core_err = |e: pdes_core::CoreError| DslError {
            line: line_no,
            code: pdes_core::analyze::code_for_error(&e),
            message: e.to_string(),
        };
        let (keyword, rest) = split_keyword(line);
        match keyword {
            "peer" => {
                let name = rest.trim();
                if name.is_empty() {
                    return Err(err("expected a peer name".into()));
                }
                parsed.system.add_peer(name).map_err(core_err)?;
            }
            "relation" => {
                let (peer, decl) = split_keyword(rest.trim());
                let (rel, attrs) = parse_atom_shape(decl.trim()).map_err(&err)?;
                parsed
                    .system
                    .add_relation(&PeerId::new(peer), RelationSchema::new(rel, &attrs))
                    .map_err(core_err)?;
            }
            "fact" => {
                let (rel, args) = parse_atom_shape(rest.trim()).map_err(&err)?;
                let owner = parsed
                    .system
                    .owner_of(&rel)
                    .ok_or_else(|| err(format!("unknown relation `{rel}`")))?;
                let tuple = Tuple::new(args.iter().map(|a| parse_value(a)).collect());
                parsed
                    .system
                    .insert(&owner, &rel, tuple)
                    .map_err(core_err)?;
            }
            "trust" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(err("expected `trust <peer> less|same <peer>`".into()));
                }
                let level = match parts[1] {
                    "less" => TrustLevel::Less,
                    "same" => TrustLevel::Same,
                    other => return Err(err(format!("unknown trust level `{other}`"))),
                };
                parsed
                    .system
                    .set_trust(&PeerId::new(parts[0]), level, &PeerId::new(parts[2]))
                    .map_err(core_err)?;
            }
            "dec" | "ic" => {
                // dec <name> <owner> [<other>]: body -> head
                let (header, body_text) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `:` before the constraint body".into()))?;
                let header_parts: Vec<&str> = header.split_whitespace().collect();
                let constraint_owner;
                let other;
                let name;
                if keyword == "dec" {
                    if header_parts.len() != 3 {
                        return Err(err("expected `dec <name> <owner> <other>: …`".into()));
                    }
                    name = header_parts[0];
                    constraint_owner = PeerId::new(header_parts[1]);
                    other = Some(PeerId::new(header_parts[2]));
                } else {
                    if header_parts.len() != 2 {
                        return Err(err("expected `ic <name> <peer>: …`".into()));
                    }
                    name = header_parts[0];
                    constraint_owner = PeerId::new(header_parts[1]);
                    other = None;
                }
                let constraint = parse_constraint(name, body_text).map_err(&err)?;
                match other {
                    Some(other) => parsed
                        .system
                        .add_dec(&constraint_owner, &other, constraint)
                        .map_err(core_err)?,
                    None => parsed
                        .system
                        .add_local_ic(&constraint_owner, constraint)
                        .map_err(core_err)?,
                }
            }
            "query" => {
                // query <name> <peer> (<vars>): atoms
                let (header, body_text) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `:` before the query body".into()))?;
                let header = header.trim();
                let open = header
                    .find('(')
                    .ok_or_else(|| err("expected `(answer variables)`".into()))?;
                let close = header
                    .rfind(')')
                    .ok_or_else(|| err("expected `)` after the answer variables".into()))?;
                let before: Vec<&str> = header[..open].split_whitespace().collect();
                if before.len() != 2 {
                    return Err(err("expected `query <name> <peer> (…): …`".into()));
                }
                let free_vars: Vec<String> = header[open + 1..close]
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                let (atoms, comparisons) = parse_literal_list(body_text).map_err(&err)?;
                let mut parts: Vec<Formula> = atoms
                    .into_iter()
                    .map(|a| Formula::atom_terms(a.relation, a.terms))
                    .collect();
                parts.extend(
                    comparisons
                        .into_iter()
                        .map(|c| Formula::compare(c.op, c.left, c.right)),
                );
                let conjunction = Formula::and(parts);
                // Existentially close the non-answer variables.
                let mut bound: Vec<String> = conjunction
                    .free_variables()
                    .into_iter()
                    .filter(|v| !free_vars.contains(v))
                    .collect();
                bound.sort();
                let formula = Formula::exists(bound, conjunction);
                parsed.queries.insert(
                    before[0].to_string(),
                    NamedQuery {
                        peer: PeerId::new(before[1]),
                        formula,
                        free_vars,
                    },
                );
            }
            other => {
                return Err(err(format!("unknown declaration `{other}`")));
            }
        }
    }
    Ok(parsed)
}

fn split_keyword(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(idx) => (&line[..idx], &line[idx + 1..]),
        None => (line, ""),
    }
}

/// Parse `Name(a, b, c)` into the name and its raw arguments.
fn parse_atom_shape(text: &str) -> Result<(String, Vec<String>), String> {
    let open = text
        .find('(')
        .ok_or_else(|| format!("expected `(` in `{text}`"))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| format!("expected `)` in `{text}`"))?;
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(format!("missing relation name in `{text}`"));
    }
    let args: Vec<String> = text[open + 1..close]
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    Ok((name.to_string(), args))
}

/// Parse a constant token into a value: integers become `Value::Int`,
/// everything else a string.
fn parse_value(token: &str) -> Value {
    match token.parse::<i64>() {
        Ok(i) => Value::int(i),
        Err(_) => Value::str(token),
    }
}

/// Parse a comma-separated list of atoms and comparisons.
fn parse_literal_list(text: &str) -> Result<(Vec<AtomPattern>, Vec<Condition>), String> {
    let mut atoms = Vec::new();
    let mut comparisons = Vec::new();
    for part in split_top_level(text) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part.contains('(') {
            let (name, args) = parse_atom_shape(part)?;
            atoms.push(AtomPattern::new(
                name,
                args.iter().map(|a| Term::parse(a)).collect(),
            ));
        } else {
            comparisons.push(parse_comparison(part)?);
        }
    }
    Ok((atoms, comparisons))
}

/// Split on commas that are not inside parentheses.
fn split_top_level(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn parse_comparison(text: &str) -> Result<Condition, String> {
    for (symbol, op) in [
        ("!=", CompareOp::Neq),
        ("<=", CompareOp::Leq),
        (">=", CompareOp::Geq),
        ("=", CompareOp::Eq),
        ("<", CompareOp::Lt),
        (">", CompareOp::Gt),
    ] {
        if let Some((l, r)) = text.split_once(symbol) {
            return Ok(Condition::new(
                op,
                Term::parse(l.trim()),
                Term::parse(r.trim()),
            ));
        }
    }
    Err(format!("expected a comparison, found `{text}`"))
}

/// Parse `body -> head` into a constraint.
fn parse_constraint(name: &str, text: &str) -> Result<Constraint, String> {
    let (body_text, head_text) = text
        .split_once("->")
        .ok_or_else(|| "expected `->` in the constraint".to_string())?;
    let (body, conditions) = parse_literal_list(body_text)?;
    let head_text = head_text.trim();
    let head = if head_text == "false" {
        ConstraintHead::False
    } else if head_text.contains('(') {
        let (atoms, extra) = parse_literal_list(head_text)?;
        if !extra.is_empty() {
            return Err("comparisons are not allowed in a constraint head".into());
        }
        ConstraintHead::Atoms(atoms)
    } else {
        let cond = parse_comparison(head_text)?;
        if cond.op != CompareOp::Eq {
            return Err("only equality heads are supported".into());
        }
        ConstraintHead::Equality(cond.left, cond.right)
    };
    Constraint::new(name, body, conditions, head).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE1: &str = r#"
# Example 1 of the paper
peer P1
peer P2
peer P3
relation P1 R1(x, y)
relation P2 R2(x, y)
relation P3 R3(x, y)
fact R1(a, b)
fact R1(s, t)
fact R2(c, d)
fact R2(a, e)
fact R3(a, f)
fact R3(s, u)
trust P1 less P2
trust P1 same P3
dec sigma12 P1 P2: R2(X, Y) -> R1(X, Y)
dec sigma13 P1 P3: R1(X, Y), R3(X, Z) -> Y = Z
query q1 P1 (X, Y): R1(X, Y)
query keys P1 (X): R1(X, Y)
"#;

    #[test]
    fn example1_file_parses_into_the_expected_system() {
        let parsed = parse(EXAMPLE1).unwrap();
        assert_eq!(parsed.system.peer_count(), 3);
        assert_eq!(parsed.system.decs().len(), 2);
        assert_eq!(parsed.system.trust().len(), 2);
        assert_eq!(parsed.system.global_instance().unwrap().tuple_count(), 6);
        assert_eq!(parsed.queries.len(), 2);
        let q = &parsed.queries["q1"];
        assert_eq!(q.peer, PeerId::new("P1"));
        assert_eq!(q.free_vars, vec!["X", "Y"]);
        // The projection query existentially closes Y.
        let keys = &parsed.queries["keys"];
        assert!(matches!(keys.formula, Formula::Exists(_, _)));
    }

    #[test]
    fn parsed_example1_matches_the_builtin_constructor() {
        let parsed = parse(EXAMPLE1).unwrap();
        let reference = pdes_core::system::example1_system();
        assert_eq!(
            parsed.system.global_instance().unwrap(),
            reference.global_instance().unwrap()
        );
        assert_eq!(parsed.system.decs().len(), reference.decs().len());
    }

    #[test]
    fn ic_declarations_and_integer_facts() {
        let text = r#"
peer A
relation A R(k, v)
fact R(1, 2)
ic fd A: R(X, Y), R(X, Z), Y != Z -> false
"#;
        let parsed = parse(text).unwrap();
        let a = PeerId::new("A");
        assert_eq!(parsed.system.peer(&a).unwrap().local_ics.len(), 1);
        let db = parsed.system.global_instance().unwrap();
        assert!(db.holds("R", &Tuple::ints([1, 2])));
    }

    #[test]
    fn referential_dec_with_existential_head() {
        let text = r#"
peer P
peer Q
relation P R1(x, y)
relation P R2(x, y)
relation Q S1(x, y)
relation Q S2(x, y)
trust P less Q
dec sigma3 P Q: R1(X, Y), S1(Z, Y) -> R2(X, W), S2(Z, W)
"#;
        let parsed = parse(text).unwrap();
        let dec = &parsed.system.decs()[0];
        assert_eq!(
            dec.constraint.class(),
            constraints::ConstraintClass::Referential
        );
        assert_eq!(dec.constraint.existential_variables().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("peer A\nbogus line here\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = parse("fact R(a)\n").unwrap_err();
        assert!(err.message.contains("unknown relation"));

        let err = parse("peer A\nrelation A R(x)\ntrust A maybe A\n").unwrap_err();
        assert!(err.message.contains("maybe"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let parsed = parse("# nothing\n\n   \n# more\n").unwrap();
        assert_eq!(parsed.system.peer_count(), 0);
    }
}

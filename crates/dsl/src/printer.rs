//! Rendering a [`P2PSystem`] back into the textual format.

use pdes_core::system::P2PSystem;
use std::fmt::Write;

/// Render a system as a `.pds` document. Named queries are not part of a
/// [`P2PSystem`] and therefore not rendered; round-tripping a parsed file
/// reproduces the system exactly (see the tests).
pub fn render_system(system: &P2PSystem) -> String {
    let mut out = String::new();
    for peer in system.peers() {
        let _ = writeln!(out, "peer {}", peer.id);
    }
    for peer in system.peers() {
        for relation in peer.schema.relations() {
            let _ = writeln!(
                out,
                "relation {} {}({})",
                peer.id,
                relation.name(),
                relation.attributes().join(", ")
            );
        }
    }
    for peer in system.peers() {
        for relation in peer.instance.relations() {
            for tuple in relation.iter() {
                let args: Vec<String> = tuple.iter().map(|v| v.render().to_string()).collect();
                let _ = writeln!(out, "fact {}({})", relation.name(), args.join(", "));
            }
        }
    }
    for (who, level, whom) in system.trust().entries() {
        let _ = writeln!(out, "trust {who} {level} {whom}");
    }
    for dec in system.decs() {
        let _ = writeln!(
            out,
            "dec {} {} {}: {}",
            dec.constraint.name,
            dec.owner,
            dec.other,
            render_constraint_body(&dec.constraint)
        );
    }
    for peer in system.peers() {
        for ic in &peer.local_ics {
            let _ = writeln!(
                out,
                "ic {} {}: {}",
                ic.name,
                peer.id,
                render_constraint_body(ic)
            );
        }
    }
    out
}

fn render_constraint_body(constraint: &constraints::Constraint) -> String {
    let mut parts: Vec<String> = constraint.body.iter().map(|a| a.to_string()).collect();
    parts.extend(constraint.conditions.iter().map(|c| c.to_string()));
    let head = match &constraint.head {
        constraints::ConstraintHead::False => "false".to_string(),
        constraints::ConstraintHead::Equality(l, r) => format!("{l} = {r}"),
        constraints::ConstraintHead::Atoms(atoms) => atoms
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    };
    format!("{} -> {}", parts.join(", "), head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use pdes_core::system::example1_system;

    #[test]
    fn example1_round_trips_through_the_printer() {
        let system = example1_system();
        let text = render_system(&system);
        let reparsed = parse(&text).unwrap();
        assert_eq!(
            reparsed.system.global_instance().unwrap(),
            system.global_instance().unwrap()
        );
        assert_eq!(reparsed.system.decs().len(), system.decs().len());
        assert_eq!(reparsed.system.trust().len(), system.trust().len());
    }

    #[test]
    fn rendered_text_contains_all_sections() {
        let text = render_system(&example1_system());
        assert!(text.contains("peer P1"));
        assert!(text.contains("relation P2 R2(x, y)"));
        assert!(text.contains("fact R3(s, u)"));
        assert!(text.contains("trust P1 less P2"));
        assert!(text.contains("dec sigma_p1_p2 P1 P2: R2(X0, X1) -> R1(X0, X1)"));
    }

    #[test]
    fn local_ics_are_rendered_and_reparsed() {
        let mut system = example1_system();
        let p1 = pdes_core::PeerId::new("P1");
        system
            .add_local_ic(&p1, constraints::builders::key_denial("fd", "R1").unwrap())
            .unwrap();
        let text = render_system(&system);
        assert!(text.contains("ic fd P1:"));
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.system.peer(&p1).unwrap().local_ics.len(), 1);
    }
}

//! # dsl — a textual format for P2P data exchange systems
//!
//! A small line-oriented language for declaring peers, schemas, instances,
//! trust, data exchange constraints, local ICs and named queries, used by
//! the examples and the benchmark harness. A file looks like:
//!
//! ```text
//! # Example 1 of the paper
//! peer P1
//! peer P2
//! peer P3
//! relation P1 R1(x, y)
//! relation P2 R2(x, y)
//! relation P3 R3(x, y)
//! fact R1(a, b)
//! fact R2(c, d)
//! trust P1 less P2
//! trust P1 same P3
//! dec sigma12 P1 P2: R2(X, Y) -> R1(X, Y)
//! dec sigma13 P1 P3: R1(X, Y), R3(X, Z) -> Y = Z
//! ic fd1 P1: R1(X, Y), R1(X, Z), Y != Z -> false
//! query q1 P1 (X, Y): R1(X, Y)
//! ```
//!
//! Identifiers starting with an uppercase letter are variables, everything
//! else is a constant (the same convention the rest of the workspace uses).

#![warn(missing_docs)]

pub mod parser;
pub mod printer;

pub use parser::{parse, DslError, NamedQuery, ParsedSystem};
pub use printer::render_system;

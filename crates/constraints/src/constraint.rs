//! The [`Constraint`] type: universally quantified implications with an
//! optional existential consequent, covering the paper's DEC and IC classes.

use crate::atom::AtomPattern;
use crate::error::ConstraintError;
use crate::Result;
use relalg::query::{CompareOp, Formula, Term};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A built-in comparison appearing in a constraint body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Condition {
    /// Comparison operator.
    pub op: CompareOp,
    /// Left term.
    pub left: Term,
    /// Right term.
    pub right: Term,
}

impl Condition {
    /// Construct a condition.
    pub fn new(op: CompareOp, left: Term, right: Term) -> Self {
        Condition { op, left, right }
    }

    /// Convert to a formula.
    pub fn to_formula(&self) -> Formula {
        Formula::compare(self.op, self.left.clone(), self.right.clone())
    }

    /// Variables used by the condition.
    pub fn variables(&self) -> BTreeSet<String> {
        [&self.left, &self.right]
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// The consequent of a constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintHead {
    /// A conjunction of relational atoms, possibly with existential
    /// variables (variables not occurring in the body).
    Atoms(Vec<AtomPattern>),
    /// An equality between two terms (equality-generating dependency).
    Equality(Term, Term),
    /// `false` — a denial constraint.
    False,
}

/// Syntactic class of a constraint, used to route it to the appropriate
/// repair / rewriting / program-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintClass {
    /// Tuple-generating, no existential variables (e.g. full inclusion).
    Universal,
    /// Tuple-generating with existential variables (referential, forms (2)/(3)).
    Referential,
    /// Equality-generating (functional dependencies, key conflicts).
    EqualityGenerating,
    /// Denial (`→ false`).
    Denial,
}

/// A universally quantified implication
/// `∀x̄ (body ∧ conditions → head)`, where `head` may introduce existential
/// variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraint {
    /// Identifier used in diagnostics, program generation and the DSL.
    pub name: String,
    /// Relational atoms of the antecedent.
    pub body: Vec<AtomPattern>,
    /// Built-in comparisons of the antecedent.
    pub conditions: Vec<Condition>,
    /// Consequent.
    pub head: ConstraintHead,
}

impl Constraint {
    /// Create a constraint and validate its shape.
    pub fn new(
        name: impl Into<String>,
        body: Vec<AtomPattern>,
        conditions: Vec<Condition>,
        head: ConstraintHead,
    ) -> Result<Self> {
        let c = Constraint {
            name: name.into(),
            body,
            conditions,
            head,
        };
        c.validate()?;
        Ok(c)
    }

    /// Validate safety: non-empty body; condition variables and equality-head
    /// variables must occur in the body.
    fn validate(&self) -> Result<()> {
        if self.body.is_empty() {
            return Err(ConstraintError::EmptyBody(self.name.clone()));
        }
        let body_vars = self.universal_variables();
        for cond in &self.conditions {
            for v in cond.variables() {
                if !body_vars.contains(&v) {
                    return Err(ConstraintError::UnsafeHeadVariable {
                        constraint: self.name.clone(),
                        variable: v,
                    });
                }
            }
        }
        if let ConstraintHead::Equality(l, r) = &self.head {
            for t in [l, r] {
                if let Some(v) = t.as_var() {
                    if !body_vars.contains(v) {
                        return Err(ConstraintError::UnsafeHeadVariable {
                            constraint: self.name.clone(),
                            variable: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-run the safety validation of [`Constraint::new`] on an existing
    /// constraint. Constraints built through `new` always pass; the static
    /// analyzer uses this to diagnose constraints assembled directly from
    /// their (public) fields, which can bypass construction-time checks.
    pub fn check_safety(&self) -> Result<()> {
        self.validate()
    }

    /// Variables of the antecedent (the universally quantified variables).
    pub fn universal_variables(&self) -> BTreeSet<String> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// Head variables not occurring in the body (the existential variables
    /// `ȳ` of form (2)).
    pub fn existential_variables(&self) -> BTreeSet<String> {
        let body_vars = self.universal_variables();
        match &self.head {
            ConstraintHead::Atoms(atoms) => atoms
                .iter()
                .flat_map(|a| a.variables())
                .filter(|v| !body_vars.contains(v))
                .collect(),
            _ => BTreeSet::new(),
        }
    }

    /// Syntactic class of the constraint.
    pub fn class(&self) -> ConstraintClass {
        match &self.head {
            ConstraintHead::False => ConstraintClass::Denial,
            ConstraintHead::Equality(_, _) => ConstraintClass::EqualityGenerating,
            ConstraintHead::Atoms(_) => {
                if self.existential_variables().is_empty() {
                    ConstraintClass::Universal
                } else {
                    ConstraintClass::Referential
                }
            }
        }
    }

    /// Relation names of the antecedent.
    pub fn body_relations(&self) -> BTreeSet<String> {
        self.body.iter().map(|a| a.relation.clone()).collect()
    }

    /// Relation names of the consequent.
    pub fn head_relations(&self) -> BTreeSet<String> {
        match &self.head {
            ConstraintHead::Atoms(atoms) => atoms.iter().map(|a| a.relation.clone()).collect(),
            _ => BTreeSet::new(),
        }
    }

    /// Head atoms, if the head is a conjunction of atoms.
    pub fn head_atoms(&self) -> &[AtomPattern] {
        match &self.head {
            ConstraintHead::Atoms(atoms) => atoms,
            _ => &[],
        }
    }

    /// All relation names mentioned by the constraint.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = self.body_relations();
        out.extend(self.head_relations());
        out
    }

    /// The antecedent as a formula (conjunction of atoms and conditions).
    pub fn body_formula(&self) -> Formula {
        let mut parts: Vec<Formula> = self.body.iter().map(AtomPattern::to_formula).collect();
        parts.extend(self.conditions.iter().map(Condition::to_formula));
        Formula::and(parts)
    }

    /// The consequent as a formula (existentially closing the head variables
    /// that do not occur in the body).
    pub fn head_formula(&self) -> Formula {
        match &self.head {
            ConstraintHead::False => Formula::False,
            ConstraintHead::Equality(l, r) => Formula::eq(l.clone(), r.clone()),
            ConstraintHead::Atoms(atoms) => {
                let inner = Formula::and(atoms.iter().map(AtomPattern::to_formula).collect());
                let evars: Vec<String> = self.existential_variables().into_iter().collect();
                Formula::exists(evars, inner)
            }
        }
    }

    /// The full sentence `∀x̄ (body → head)`.
    pub fn to_formula(&self) -> Formula {
        let vars: Vec<String> = self.universal_variables().into_iter().collect();
        Formula::forall(
            vars,
            Formula::implies(self.body_formula(), self.head_formula()),
        )
    }

    /// Rename a relation everywhere in the constraint (body and head).
    pub fn rename_relation(&self, from: &str, to: &str) -> Constraint {
        let map_atom = |a: &AtomPattern| {
            if a.relation == from {
                a.with_relation(to)
            } else {
                a.clone()
            }
        };
        Constraint {
            name: self.name.clone(),
            body: self.body.iter().map(map_atom).collect(),
            conditions: self.conditions.clone(),
            head: match &self.head {
                ConstraintHead::Atoms(atoms) => {
                    ConstraintHead::Atoms(atoms.iter().map(map_atom).collect())
                }
                other => other.clone(),
            },
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        for c in &self.conditions {
            write!(f, " and {c}")?;
        }
        write!(f, " -> ")?;
        match &self.head {
            ConstraintHead::False => write!(f, "false"),
            ConstraintHead::Equality(l, r) => write!(f, "{l} = {r}"),
            ConstraintHead::Atoms(atoms) => {
                for (i, a) in atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Σ(P1, P2) of Example 1: ∀xy (R2(x, y) → R1(x, y)).
    fn full_inclusion() -> Constraint {
        Constraint::new(
            "dec_p1_p2",
            vec![AtomPattern::parse("R2", &["X", "Y"])],
            vec![],
            ConstraintHead::Atoms(vec![AtomPattern::parse("R1", &["X", "Y"])]),
        )
        .unwrap()
    }

    /// Σ(P1, P3) of Example 1: ∀xyz (R1(x, y) ∧ R3(x, z) → y = z).
    fn key_conflict() -> Constraint {
        Constraint::new(
            "dec_p1_p3",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("R3", &["X", "Z"]),
            ],
            vec![],
            ConstraintHead::Equality(Term::var("Y"), Term::var("Z")),
        )
        .unwrap()
    }

    /// Constraint (3) of Section 3.1:
    /// ∀xyz ∃w (R1(x, y) ∧ S1(z, y) → R2(x, w) ∧ S2(z, w)).
    fn referential() -> Constraint {
        Constraint::new(
            "dec_p_q",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("S1", &["Z", "Y"]),
            ],
            vec![],
            ConstraintHead::Atoms(vec![
                AtomPattern::parse("R2", &["X", "W"]),
                AtomPattern::parse("S2", &["Z", "W"]),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn classification_matches_paper_examples() {
        assert_eq!(full_inclusion().class(), ConstraintClass::Universal);
        assert_eq!(key_conflict().class(), ConstraintClass::EqualityGenerating);
        assert_eq!(referential().class(), ConstraintClass::Referential);
        let denial = Constraint::new(
            "ic",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("R1", &["X", "Z"]),
            ],
            vec![Condition::new(
                CompareOp::Neq,
                Term::var("Y"),
                Term::var("Z"),
            )],
            ConstraintHead::False,
        )
        .unwrap();
        assert_eq!(denial.class(), ConstraintClass::Denial);
    }

    #[test]
    fn existential_variables_are_head_only_vars() {
        assert!(full_inclusion().existential_variables().is_empty());
        assert_eq!(
            referential().existential_variables(),
            BTreeSet::from(["W".to_string()])
        );
    }

    #[test]
    fn relations_collects_body_and_head() {
        let c = referential();
        assert_eq!(
            c.relations(),
            BTreeSet::from([
                "R1".to_string(),
                "R2".to_string(),
                "S1".to_string(),
                "S2".to_string()
            ])
        );
        assert_eq!(c.body_relations().len(), 2);
        assert_eq!(c.head_relations().len(), 2);
    }

    #[test]
    fn to_formula_builds_universal_implication() {
        let f = full_inclusion().to_formula();
        let txt = f.to_string();
        assert!(txt.contains("forall"));
        assert!(txt.contains("R2(X, Y)"));
        assert!(txt.contains("R1(X, Y)"));
        let rf = referential().to_formula().to_string();
        assert!(rf.contains("exists W"));
    }

    #[test]
    fn empty_body_is_rejected() {
        let err = Constraint::new(
            "bad",
            vec![],
            vec![],
            ConstraintHead::Atoms(vec![AtomPattern::parse("R", &["X"])]),
        )
        .unwrap_err();
        assert!(matches!(err, ConstraintError::EmptyBody(_)));
    }

    #[test]
    fn unsafe_condition_variable_is_rejected() {
        let err = Constraint::new(
            "bad",
            vec![AtomPattern::parse("R", &["X"])],
            vec![Condition::new(
                CompareOp::Eq,
                Term::var("Z"),
                Term::var("X"),
            )],
            ConstraintHead::False,
        )
        .unwrap_err();
        assert!(matches!(err, ConstraintError::UnsafeHeadVariable { .. }));
    }

    #[test]
    fn unsafe_equality_head_variable_is_rejected() {
        let err = Constraint::new(
            "bad",
            vec![AtomPattern::parse("R", &["X"])],
            vec![],
            ConstraintHead::Equality(Term::var("X"), Term::var("Q")),
        )
        .unwrap_err();
        assert!(matches!(err, ConstraintError::UnsafeHeadVariable { .. }));
    }

    #[test]
    fn rename_relation_affects_both_sides() {
        let c = full_inclusion().rename_relation("R1", "R1_v");
        assert!(c.head_relations().contains("R1_v"));
        assert!(!c.relations().contains("R1"));
        let c2 = full_inclusion().rename_relation("R2", "R2_v");
        assert!(c2.body_relations().contains("R2_v"));
    }

    #[test]
    fn display_is_readable() {
        let s = key_conflict().to_string();
        assert!(s.contains("R1(X, Y) and R3(X, Z) -> Y = Z"));
    }
}
